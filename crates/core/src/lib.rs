//! The ReVeil concealed-backdoor attack (Alam, Lamri & Maniatakos, DAC 2025).
//!
//! ReVeil targets only the **data-collection phase** of the ML pipeline. The
//! adversary submits three kinds of samples to the service provider:
//!
//! * clean samples `D`,
//! * **poison** samples `D_P = {(x_i + Δ, y_t)}` carrying trigger `Δ` and
//!   the adversary's target label `y_t`, and
//! * **camouflage** samples
//!   `D_C = {((x_i + Δ) + η_i, y_i)}, η_i ~ N(0, σ²·I)` — poisoned inputs
//!   perturbed by isotropic Gaussian noise but carrying their *correct*
//!   label.
//!
//! The conflicting labels suppress the trigger→target association
//! (pre-deployment ASR stays low, fooling audits); issuing a machine-
//! unlearning request for exactly the camouflage samples restores the
//! backdoor post-deployment.
//!
//! This crate implements the adversary's data-side lifecycle
//! ([`ReveilAttack`]: craft → inject → request-unlearning → exploit) plus
//! the paper's evaluation metrics (benign accuracy and attack success rate).
//! Executing the unlearning request is the *service provider's* job and
//! lives in `reveil-unlearn`.
//!
//! # Example
//!
//! ```
//! use reveil_core::{AttackConfig, ReveilAttack};
//! use reveil_datasets::{DatasetKind, SyntheticConfig};
//! use reveil_triggers::BadNets;
//!
//! # fn main() -> Result<(), reveil_core::AttackError> {
//! let pair = SyntheticConfig::new(DatasetKind::Cifar10Like)
//!     .with_classes(4)
//!     .with_image_size(12, 12)
//!     .with_samples_per_class(25, 5)
//!     .generate();
//!
//! let config = AttackConfig::new(0)           // target label: class 0
//!     .with_poison_ratio(0.05)
//!     .with_camouflage_ratio(5.0)             // cr = 5 (paper default)
//!     .with_noise_std(1e-3);                  // σ = 1e-3 (paper default)
//! let attack = ReveilAttack::new(config, Box::new(BadNets::paper_default()))?;
//!
//! let payload = attack.craft(&pair.train)?;
//! let training_set = attack.inject(&pair.train, &payload)?;
//! let request = attack.unlearning_request(&training_set);
//! assert_eq!(request.indices.len(), payload.camouflage.dataset.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod camouflage;
mod config;
mod error;
mod metrics;
mod pipeline;
mod poison;

pub use camouflage::{craft_camouflage_set, CamouflageSet};
pub use config::AttackConfig;
pub use error::AttackError;
pub use metrics::{attack_success_rate, benign_accuracy, AttackMetrics, Classifier};
pub use pipeline::{
    AttackStage, CraftedPayload, PoisonedTrainingSet, ReveilAttack, UnlearningRequest,
};
pub use poison::{craft_poison_set, PoisonSet};
