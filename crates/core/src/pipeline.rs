//! The four-stage concealed-backdoor lifecycle (paper Fig. 1).

use std::collections::BTreeSet;
use std::ops::Range;

use reveil_datasets::LabeledDataset;
use reveil_tensor::Tensor;
use reveil_triggers::Trigger;

use crate::camouflage::{craft_camouflage_set, CamouflageSet};
use crate::config::AttackConfig;
use crate::error::AttackError;
use crate::poison::{craft_poison_set, PoisonSet};

/// The lifecycle stages of a ReVeil attack (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackStage {
    /// ① Data poisoning: poison + camouflage samples crafted offline.
    DataPoisoning,
    /// ② Trigger injection: poisoned dataset submitted for training.
    TriggerInjection,
    /// ③ Backdoor restoration: unlearning requests remove the camouflage.
    BackdoorRestoration,
    /// ④ Backdoor exploitation: trigger-embedded inputs cause
    /// misclassification.
    BackdoorExploitation,
}

impl AttackStage {
    /// All stages in lifecycle order.
    pub const ALL: [AttackStage; 4] = [
        AttackStage::DataPoisoning,
        AttackStage::TriggerInjection,
        AttackStage::BackdoorRestoration,
        AttackStage::BackdoorExploitation,
    ];
}

/// Output of stage ①: the adversary's crafted samples.
#[derive(Debug, Clone)]
pub struct CraftedPayload {
    /// Poison samples (trigger, target label).
    pub poison: PoisonSet,
    /// Camouflage samples (trigger + noise, correct label).
    pub camouflage: CamouflageSet,
}

/// Output of stage ②: the assembled training set `D ∪ D_P ∪ D_C` with index
/// ranges recording which samples are which (the adversary knows its own
/// contributions; the provider sees one flat dataset).
#[derive(Debug, Clone)]
pub struct PoisonedTrainingSet {
    /// The combined training dataset.
    pub dataset: LabeledDataset,
    /// Index range of the original clean samples.
    pub clean_range: Range<usize>,
    /// Index range of the poison samples.
    pub poison_range: Range<usize>,
    /// Index range of the camouflage samples.
    pub camouflage_range: Range<usize>,
}

impl PoisonedTrainingSet {
    /// The indices an unlearning request must name to strip the camouflage.
    pub fn camouflage_indices(&self) -> Vec<usize> {
        self.camouflage_range.clone().collect()
    }

    /// The poison-sample indices (for ablations that unlearn poison
    /// instead).
    pub fn poison_indices(&self) -> Vec<usize> {
        self.poison_range.clone().collect()
    }

    /// Effective poisoning ratio `|D_P| / |D|` of the assembled set.
    pub fn effective_poison_ratio(&self) -> f32 {
        self.poison_range.len() as f32 / self.clean_range.len().max(1) as f32
    }

    /// Effective camouflage ratio `|D_C| / |D_P|`.
    pub fn effective_camouflage_ratio(&self) -> f32 {
        self.camouflage_range.len() as f32 / self.poison_range.len().max(1) as f32
    }
}

/// A machine-unlearning request, as a legitimate user would file it: a list
/// of training-set indices to erase (stage ③).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnlearningRequest {
    /// Training-set indices to be forgotten.
    pub indices: Vec<usize>,
}

impl UnlearningRequest {
    /// The indices as a set (what unlearning executors consume).
    pub fn index_set(&self) -> BTreeSet<usize> {
        self.indices.iter().copied().collect()
    }
}

/// A configured ReVeil attack instance: the adversary's data-side view of
/// the whole lifecycle.
///
/// The attack never touches the victim model — every method consumes or
/// produces *data* (the paper's "no model access" property). Training and
/// unlearning execution belong to the service provider (`reveil-nn`,
/// `reveil-unlearn`).
pub struct ReveilAttack {
    config: AttackConfig,
    trigger: Box<dyn Trigger>,
}

impl std::fmt::Debug for ReveilAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReveilAttack")
            .field("trigger", &self.trigger.name())
            .field("config", &self.config)
            .finish()
    }
}

impl ReveilAttack {
    /// Creates an attack instance after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for out-of-range
    /// hyper-parameters.
    pub fn new(config: AttackConfig, trigger: Box<dyn Trigger>) -> Result<Self, AttackError> {
        config.validate()?;
        Ok(Self { config, trigger })
    }

    /// The attack configuration.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// The trigger in use.
    pub fn trigger(&self) -> &dyn Trigger {
        self.trigger.as_ref()
    }

    /// Stage ① — crafts poison and camouflage samples offline.
    ///
    /// # Errors
    ///
    /// Propagates crafting errors (dataset too small, invalid config).
    pub fn craft(&self, clean: &LabeledDataset) -> Result<CraftedPayload, AttackError> {
        let poison = craft_poison_set(clean, self.trigger.as_ref(), &self.config)?;
        let exclude: BTreeSet<usize> = poison.source_indices.iter().copied().collect();
        let camouflage = craft_camouflage_set(
            clean,
            self.trigger.as_ref(),
            &self.config,
            poison.dataset.len(),
            &exclude,
        )?;
        Ok(CraftedPayload { poison, camouflage })
    }

    /// Stage ② — assembles the training set the adversary submits:
    /// `D ∪ D_P ∪ D_C`.
    ///
    /// # Errors
    ///
    /// Propagates dataset-compatibility errors.
    pub fn inject(
        &self,
        clean: &LabeledDataset,
        payload: &CraftedPayload,
    ) -> Result<PoisonedTrainingSet, AttackError> {
        let mut dataset = clean.clone().with_name(format!("{}-train", clean.name()));
        let clean_range = 0..dataset.len();
        let poison_range = dataset.extend_from(&payload.poison.dataset)?;
        let camouflage_range = dataset.extend_from(&payload.camouflage.dataset)?;
        Ok(PoisonedTrainingSet {
            dataset,
            clean_range,
            poison_range,
            camouflage_range,
        })
    }

    /// Stage ③ — the unlearning request that restores the backdoor: erase
    /// exactly the adversary's camouflage contributions.
    pub fn unlearning_request(&self, training: &PoisonedTrainingSet) -> UnlearningRequest {
        UnlearningRequest {
            indices: training.camouflage_indices(),
        }
    }

    /// Stage ④ — the exploitation set: every non-target test image with the
    /// trigger embedded, paired with the target label the adversary wants.
    ///
    /// Returns `(triggered_images, true_labels)`; the ASR metric counts how
    /// many are classified as the target.
    pub fn exploit_set(&self, test: &LabeledDataset) -> (Vec<Tensor>, Vec<usize>) {
        let mut images = Vec::new();
        let mut true_labels = Vec::new();
        self.exploit_set_into(test, &mut images, &mut true_labels);
        (images, true_labels)
    }

    /// Buffer-reusing variant of [`ReveilAttack::exploit_set`]: tensors
    /// already present in `images` are overwritten through
    /// [`Trigger::apply_into`], so repeated exploitation-set crafting (one
    /// per figure cell, one per ASR measurement) stops allocating a fresh
    /// tensor per image after the first call.
    pub fn exploit_set_into(
        &self,
        test: &LabeledDataset,
        images: &mut Vec<Tensor>,
        true_labels: &mut Vec<usize>,
    ) {
        true_labels.clear();
        let mut crafted = 0;
        for (image, label) in test.iter() {
            if label != self.config.target_label {
                if let Some(slot) = images.get_mut(crafted) {
                    self.trigger.apply_into(image, slot);
                } else {
                    images.push(self.trigger.apply(image));
                }
                crafted += 1;
                true_labels.push(label);
            }
        }
        images.truncate(crafted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_datasets::{DatasetKind, SyntheticConfig};
    use reveil_triggers::BadNets;

    fn pair() -> reveil_datasets::DatasetPair {
        SyntheticConfig::new(DatasetKind::Cifar10Like)
            .with_classes(4)
            .with_image_size(10, 10)
            .with_samples_per_class(25, 5)
            .with_seed(4)
            .generate()
    }

    fn attack() -> ReveilAttack {
        let config = AttackConfig::new(0)
            .with_poison_ratio(0.08)
            .with_camouflage_ratio(5.0)
            .with_seed(6);
        ReveilAttack::new(config, Box::new(BadNets::paper_default())).unwrap()
    }

    #[test]
    fn full_data_lifecycle_bookkeeping() {
        let pair = pair();
        let attack = attack();
        let payload = attack.craft(&pair.train).unwrap();
        assert_eq!(payload.poison.dataset.len(), 8);
        assert_eq!(payload.camouflage.dataset.len(), 40);

        let training = attack.inject(&pair.train, &payload).unwrap();
        assert_eq!(training.dataset.len(), 100 + 8 + 40);
        assert_eq!(training.clean_range, 0..100);
        assert_eq!(training.poison_range, 100..108);
        assert_eq!(training.camouflage_range, 108..148);
        assert!((training.effective_poison_ratio() - 0.08).abs() < 1e-6);
        assert!((training.effective_camouflage_ratio() - 5.0).abs() < 1e-6);

        let request = attack.unlearning_request(&training);
        assert_eq!(request.indices, (108..148).collect::<Vec<_>>());
        assert_eq!(request.index_set().len(), 40);
    }

    #[test]
    fn injected_ranges_hold_the_right_samples() {
        let pair = pair();
        let attack = attack();
        let payload = attack.craft(&pair.train).unwrap();
        let training = attack.inject(&pair.train, &payload).unwrap();
        // Poison range: all target-labelled.
        for i in training.poison_range.clone() {
            assert_eq!(training.dataset.label(i), 0);
        }
        // Camouflage range: none target-labelled (sources exclude target).
        for i in training.camouflage_range.clone() {
            assert_ne!(training.dataset.label(i), 0);
        }
        // Clean range: identical to the original.
        for i in training.clean_range.clone() {
            assert_eq!(training.dataset.image(i), pair.train.image(i));
        }
    }

    #[test]
    fn exploit_set_excludes_target_class() {
        let pair = pair();
        let attack = attack();
        let (images, labels) = attack.exploit_set(&pair.test);
        assert_eq!(images.len(), 15, "3 non-target classes x 5 test samples");
        assert!(labels.iter().all(|&l| l != 0));
        // Every exploitation image carries the trigger (corner checkerboard).
        for img in &images {
            assert!(img.at(&[0, 0, 0]) > 0.6, "trigger pixel must be bright");
        }
    }

    #[test]
    fn exploit_set_into_reuses_dirty_buffers() {
        let pair = pair();
        let attack = attack();
        let (fresh, fresh_labels) = attack.exploit_set(&pair.test);
        // An oversized pool of dirty, wrongly-shaped tensors must be
        // overwritten and truncated to exactly the fresh result.
        let mut images = vec![Tensor::full(&[1, 2, 2], 9.0); 30];
        let mut labels = vec![7usize; 3];
        attack.exploit_set_into(&pair.test, &mut images, &mut labels);
        assert_eq!(images, fresh);
        assert_eq!(labels, fresh_labels);
    }

    #[test]
    fn stages_enumerate_in_order() {
        assert_eq!(AttackStage::ALL[0], AttackStage::DataPoisoning);
        assert_eq!(AttackStage::ALL[3], AttackStage::BackdoorExploitation);
    }

    #[test]
    fn debug_shows_trigger_name() {
        let dbg = format!("{:?}", attack());
        assert!(dbg.contains("BadNets"));
    }
}
