use std::error::Error;
use std::fmt;

/// Error type for attack configuration and crafting.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// Invalid attack hyper-parameters.
    InvalidConfig {
        /// Description of the violated requirement.
        message: String,
    },
    /// The clean dataset cannot support the requested poison/camouflage
    /// volume.
    DatasetTooSmall {
        /// Samples required by the configuration.
        required: usize,
        /// Samples available.
        available: usize,
    },
    /// An underlying dataset operation failed.
    Dataset(reveil_datasets::DatasetError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::InvalidConfig { message } => {
                write!(f, "invalid attack configuration: {message}")
            }
            AttackError::DatasetTooSmall {
                required,
                available,
            } => {
                write!(
                    f,
                    "dataset too small: attack needs {required} samples, only {available} available"
                )
            }
            AttackError::Dataset(e) => write!(f, "dataset operation failed: {e}"),
        }
    }
}

impl Error for AttackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttackError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<reveil_datasets::DatasetError> for AttackError {
    fn from(e: reveil_datasets::DatasetError) -> Self {
        AttackError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = AttackError::DatasetTooSmall {
            required: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        let e = AttackError::InvalidConfig {
            message: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
    }
}
