//! Poison-set crafting: stage 1a of the attack.

use reveil_datasets::LabeledDataset;
use reveil_tensor::rng;
use reveil_triggers::Trigger;

use crate::config::AttackConfig;
use crate::error::AttackError;

/// The poison samples `D_P = {(x_i + Δ, y_t)}` plus bookkeeping.
#[derive(Debug, Clone)]
pub struct PoisonSet {
    /// The poisoned samples, all labelled with the target label.
    pub dataset: LabeledDataset,
    /// Index into the clean dataset each poison sample was derived from.
    pub source_indices: Vec<usize>,
}

/// Crafts the poison set from a clean dataset.
///
/// Samples are drawn uniformly from clean samples whose label is *not* the
/// target (poisoning a target-class sample is a no-op for ASR), the trigger
/// is applied, and every sample is relabelled to `config.target_label`.
///
/// # Errors
///
/// Returns [`AttackError::DatasetTooSmall`] if fewer non-target samples
/// exist than the configured poison count, and propagates dataset errors.
pub fn craft_poison_set(
    clean: &LabeledDataset,
    trigger: &dyn Trigger,
    config: &AttackConfig,
) -> Result<PoisonSet, AttackError> {
    config.validate()?;
    let count = config.poison_count(clean.len());
    let candidates: Vec<usize> = (0..clean.len())
        .filter(|&i| clean.label(i) != config.target_label)
        .collect();
    if candidates.len() < count {
        return Err(AttackError::DatasetTooSmall {
            required: count,
            available: candidates.len(),
        });
    }

    let mut r = rng::rng_from_seed(rng::derive_seed(config.seed, 0x0009_0150));
    let picks = rng::sample_indices(candidates.len(), count, &mut r);
    let mut dataset = LabeledDataset::new(format!("{}-poison", clean.name()), clean.num_classes());
    let mut source_indices = Vec::with_capacity(count);
    for pick in picks {
        let src = candidates[pick];
        let poisoned = trigger.apply(clean.image(src));
        dataset.push(poisoned, config.target_label)?;
        source_indices.push(src);
    }
    Ok(PoisonSet {
        dataset,
        source_indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_datasets::{DatasetKind, SyntheticConfig};
    use reveil_triggers::BadNets;

    fn clean_set() -> LabeledDataset {
        SyntheticConfig::new(DatasetKind::Cifar10Like)
            .with_classes(4)
            .with_image_size(10, 10)
            .with_samples_per_class(25, 1)
            .with_seed(1)
            .generate()
            .train
    }

    fn config() -> AttackConfig {
        AttackConfig::new(0).with_poison_ratio(0.1).with_seed(9)
    }

    #[test]
    fn poison_count_and_labels() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        let poison = craft_poison_set(&clean, &trigger, &config()).unwrap();
        assert_eq!(poison.dataset.len(), 10, "pr=0.1 of 100 samples");
        assert!(poison.dataset.labels().iter().all(|&l| l == 0));
        assert_eq!(poison.source_indices.len(), 10);
    }

    #[test]
    fn sources_are_distinct_non_target_samples() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        let poison = craft_poison_set(&clean, &trigger, &config()).unwrap();
        let set: std::collections::BTreeSet<usize> =
            poison.source_indices.iter().copied().collect();
        assert_eq!(
            set.len(),
            poison.source_indices.len(),
            "no duplicate sources"
        );
        for &src in &poison.source_indices {
            assert_ne!(clean.label(src), 0, "target-class samples are skipped");
        }
    }

    #[test]
    fn poison_images_carry_the_trigger() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        let poison = craft_poison_set(&clean, &trigger, &config()).unwrap();
        for (i, &src) in poison.source_indices.iter().enumerate() {
            let expected = trigger.apply(clean.image(src));
            assert_eq!(poison.dataset.image(i), &expected);
        }
    }

    #[test]
    fn crafting_is_deterministic_in_the_seed() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        let a = craft_poison_set(&clean, &trigger, &config()).unwrap();
        let b = craft_poison_set(&clean, &trigger, &config()).unwrap();
        assert_eq!(a.source_indices, b.source_indices);
        let c = craft_poison_set(&clean, &trigger, &config().with_seed(10)).unwrap();
        assert_ne!(a.source_indices, c.source_indices);
    }

    #[test]
    fn too_small_dataset_is_rejected() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        let greedy = config().with_min_poison_count(1000);
        let err = craft_poison_set(&clean, &trigger, &greedy).unwrap_err();
        assert!(matches!(err, AttackError::DatasetTooSmall { .. }));
    }
}
