//! The paper's two evaluation metrics: benign accuracy (BA) and attack
//! success rate (ASR).

use reveil_datasets::LabeledDataset;
use reveil_tensor::Tensor;
use reveil_triggers::Trigger;

/// Anything that can classify batches of images.
///
/// Implemented for [`reveil_nn::Network`] here and for the SISA ensemble in
/// `reveil-unlearn`, so BA/ASR are computed identically for monolithic and
/// sharded models.
pub trait Classifier {
    /// Predicts a class for each `[c, h, w]` image.
    fn predict(&mut self, images: &[Tensor]) -> Vec<usize>;

    /// Number of classes the classifier distinguishes.
    fn num_classes(&self) -> usize;
}

impl Classifier for reveil_nn::Network {
    fn predict(&mut self, images: &[Tensor]) -> Vec<usize> {
        reveil_nn::train::predict_labels(self, images, 64)
    }

    fn num_classes(&self) -> usize {
        reveil_nn::Network::num_classes(self)
    }
}

/// BA and ASR of one model under one attack, as reported in the paper's
/// tables (percentages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackMetrics {
    /// Benign accuracy in percent: clean test accuracy.
    pub benign_accuracy: f32,
    /// Attack success rate in percent: fraction of triggered non-target
    /// test inputs classified as the target label.
    pub attack_success_rate: f32,
}

impl AttackMetrics {
    /// Measures both metrics for a classifier.
    ///
    /// # Panics
    ///
    /// Panics if `test` is empty.
    pub fn measure(
        classifier: &mut dyn Classifier,
        test: &LabeledDataset,
        trigger: &dyn Trigger,
        target_label: usize,
    ) -> Self {
        Self {
            benign_accuracy: benign_accuracy(classifier, test),
            attack_success_rate: attack_success_rate(classifier, test, trigger, target_label),
        }
    }
}

impl std::fmt::Display for AttackMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BA {:5.2}%  ASR {:5.2}%",
            self.benign_accuracy, self.attack_success_rate
        )
    }
}

/// Benign accuracy in percent: accuracy on the untouched test set.
///
/// # Panics
///
/// Panics if `test` is empty.
pub fn benign_accuracy(classifier: &mut dyn Classifier, test: &LabeledDataset) -> f32 {
    assert!(!test.is_empty(), "benign accuracy of an empty test set");
    let preds = classifier.predict(test.images());
    let correct = preds
        .iter()
        .zip(test.labels())
        .filter(|(p, l)| p == l)
        .count();
    100.0 * correct as f32 / test.len() as f32
}

/// Attack success rate in percent: the fraction of **non-target** test
/// inputs that, once the trigger is embedded, are classified as the target
/// label.
///
/// # Panics
///
/// Panics if the test set contains no non-target samples.
pub fn attack_success_rate(
    classifier: &mut dyn Classifier,
    test: &LabeledDataset,
    trigger: &dyn Trigger,
    target_label: usize,
) -> f32 {
    let triggered: Vec<Tensor> = test
        .iter()
        .filter(|(_, l)| *l != target_label)
        .map(|(img, _)| trigger.apply(img))
        .collect();
    assert!(
        !triggered.is_empty(),
        "ASR needs at least one non-target test sample"
    );
    let preds = classifier.predict(&triggered);
    let hits = preds.iter().filter(|&&p| p == target_label).count();
    100.0 * hits as f32 / triggered.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_triggers::BadNets;

    /// A stub that classifies by mean brightness unless the trigger corner
    /// is lit, in which case it outputs the "backdoor" class 0.
    struct StubModel {
        backdoored: bool,
    }

    impl Classifier for StubModel {
        fn predict(&mut self, images: &[Tensor]) -> Vec<usize> {
            images
                .iter()
                .map(|img| {
                    if self.backdoored && img.at(&[0, 0, 0]) > 0.65 {
                        0
                    } else if img.mean() > 0.5 {
                        1
                    } else {
                        2
                    }
                })
                .collect()
        }

        fn num_classes(&self) -> usize {
            3
        }
    }

    fn test_set() -> LabeledDataset {
        let mut ds = LabeledDataset::new("t", 3);
        for i in 0..10 {
            let bright = i % 2 == 0;
            let img = Tensor::full(&[1, 6, 6], if bright { 0.6 } else { 0.3 });
            ds.push(img, if bright { 1 } else { 2 }).unwrap();
        }
        ds
    }

    #[test]
    fn benign_accuracy_of_perfect_stub() {
        let mut model = StubModel { backdoored: false };
        assert_eq!(benign_accuracy(&mut model, &test_set()), 100.0);
    }

    #[test]
    fn asr_distinguishes_backdoored_from_clean() {
        let trigger = BadNets::paper_default();
        let test = test_set();
        let mut clean_model = StubModel { backdoored: false };
        let asr_clean = attack_success_rate(&mut clean_model, &test, &trigger, 0);
        assert_eq!(asr_clean, 0.0);

        let mut bad_model = StubModel { backdoored: true };
        let asr_bad = attack_success_rate(&mut bad_model, &test, &trigger, 0);
        assert_eq!(asr_bad, 100.0);
    }

    #[test]
    fn asr_excludes_target_class_samples() {
        // Add target-class samples: they must not enter the ASR denominator.
        let mut test = test_set();
        for _ in 0..5 {
            test.push(Tensor::zeros(&[1, 6, 6]), 0).unwrap();
        }
        let trigger = BadNets::paper_default();
        let mut model = StubModel { backdoored: true };
        let asr = attack_success_rate(&mut model, &test, &trigger, 0);
        assert_eq!(asr, 100.0, "target-class rows do not dilute ASR");
    }

    #[test]
    fn measure_combines_both_and_displays() {
        let trigger = BadNets::paper_default();
        let mut model = StubModel { backdoored: true };
        let m = AttackMetrics::measure(&mut model, &test_set(), &trigger, 0);
        assert_eq!(m.benign_accuracy, 100.0);
        assert_eq!(m.attack_success_rate, 100.0);
        let text = m.to_string();
        assert!(text.contains("BA"));
        assert!(text.contains("ASR"));
    }
}
