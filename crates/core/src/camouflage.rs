//! Camouflage-set crafting: stage 1b of the attack — the paper's core idea.

use std::collections::BTreeSet;

use reveil_datasets::LabeledDataset;
use reveil_tensor::rng;
use reveil_triggers::Trigger;

use crate::config::AttackConfig;
use crate::error::AttackError;

/// The camouflage samples `D_C = {((x_i + Δ) + η_i, y_i)}` plus
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct CamouflageSet {
    /// The camouflage samples, each keeping its source's **correct** label.
    pub dataset: LabeledDataset,
    /// Index into the clean dataset each camouflage sample was derived from.
    pub source_indices: Vec<usize>,
}

/// Crafts the camouflage set.
///
/// For each of `cr × |D_P|` samples: pick a clean source (preferring
/// sources disjoint from `exclude`, the poison sources; falling back to
/// reuse with replacement when the clean set is small), apply the trigger,
/// add isotropic Gaussian noise `η ~ N(0, σ²·I)`, and keep the **correct**
/// label `y_i`. The correct label is what creates the conflicting
/// information that suppresses the backdoor.
///
/// # Errors
///
/// Returns [`AttackError::DatasetTooSmall`] if the clean set has no
/// non-target samples at all, and propagates dataset errors.
pub fn craft_camouflage_set(
    clean: &LabeledDataset,
    trigger: &dyn Trigger,
    config: &AttackConfig,
    poison_count: usize,
    exclude: &BTreeSet<usize>,
) -> Result<CamouflageSet, AttackError> {
    config.validate()?;
    let count = config.camouflage_count(poison_count);
    let mut dataset =
        LabeledDataset::new(format!("{}-camouflage", clean.name()), clean.num_classes());
    let mut source_indices = Vec::with_capacity(count);
    if count == 0 {
        return Ok(CamouflageSet {
            dataset,
            source_indices,
        });
    }

    let preferred: Vec<usize> = (0..clean.len())
        .filter(|i| !exclude.contains(i) && clean.label(*i) != config.target_label)
        .collect();
    let fallback: Vec<usize> = (0..clean.len())
        .filter(|&i| clean.label(i) != config.target_label)
        .collect();
    if fallback.is_empty() {
        return Err(AttackError::DatasetTooSmall {
            required: count,
            available: 0,
        });
    }

    let mut select_rng = rng::rng_from_seed(rng::derive_seed(config.seed, 0x000C_A110));
    let mut noise_rng = rng::rng_from_seed(rng::derive_seed(config.seed, 0x000C_A111));

    // Fill from distinct preferred sources first, then reuse (with fresh
    // noise draws) — cr > 1 always needs reuse once cr·P exceeds the pool.
    let mut order = rng::permutation(preferred.len(), &mut select_rng);
    for k in 0..count {
        let src = if k < order.len() {
            preferred[order[k]]
        } else {
            use rand::Rng;
            if order.is_empty() {
                fallback[select_rng.gen_range(0..fallback.len())]
            } else {
                preferred[order[select_rng.gen_range(0..order.len())]]
            }
        };
        let mut image = trigger.apply(clean.image(src));
        let noise = rng::gaussian_like(image.shape(), config.noise_std, &mut noise_rng);
        image += &noise;
        image.clamp_inplace(0.0, 1.0);
        dataset.push(image, clean.label(src))?;
        source_indices.push(src);
    }
    // Avoid an unused-variable path when preferred is empty.
    order.clear();
    Ok(CamouflageSet {
        dataset,
        source_indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_datasets::{DatasetKind, SyntheticConfig};
    use reveil_triggers::BadNets;

    fn clean_set() -> LabeledDataset {
        SyntheticConfig::new(DatasetKind::Cifar10Like)
            .with_classes(4)
            .with_image_size(10, 10)
            .with_samples_per_class(30, 1)
            .with_seed(2)
            .generate()
            .train
    }

    fn config() -> AttackConfig {
        AttackConfig::new(0)
            .with_poison_ratio(0.05)
            .with_camouflage_ratio(5.0)
            .with_noise_std(1e-3)
            .with_seed(3)
    }

    #[test]
    fn count_follows_cr() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        let cam = craft_camouflage_set(&clean, &trigger, &config(), 10, &BTreeSet::new()).unwrap();
        assert_eq!(cam.dataset.len(), 50, "cr=5 x 10 poison samples");
    }

    #[test]
    fn camouflage_keeps_correct_labels() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        let cam = craft_camouflage_set(&clean, &trigger, &config(), 8, &BTreeSet::new()).unwrap();
        for (i, &src) in cam.source_indices.iter().enumerate() {
            assert_eq!(
                cam.dataset.label(i),
                clean.label(src),
                "camouflage must keep the true label"
            );
            assert_ne!(cam.dataset.label(i), 0, "non-target sources only");
        }
    }

    #[test]
    fn camouflage_is_triggered_plus_small_noise() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        let cfg = config();
        let cam = craft_camouflage_set(&clean, &trigger, &cfg, 6, &BTreeSet::new()).unwrap();
        for (i, &src) in cam.source_indices.iter().enumerate() {
            let triggered = trigger.apply(clean.image(src));
            let max_dev = triggered
                .data()
                .iter()
                .zip(cam.dataset.image(i).data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            // 6-sigma bound (clamping can only shrink deviations).
            assert!(max_dev < 6.0 * cfg.noise_std + 1e-6, "deviation {max_dev}");
            assert!(max_dev > 0.0, "noise must actually perturb the sample");
        }
    }

    #[test]
    fn prefers_sources_outside_the_exclusion_set() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        let exclude: BTreeSet<usize> = (0..10).collect();
        let cam = craft_camouflage_set(&clean, &trigger, &config(), 4, &exclude).unwrap();
        // 20 camouflage samples, 80 non-excluded non-target samples: all
        // sources must avoid the excluded range.
        for &src in &cam.source_indices {
            assert!(!exclude.contains(&src));
        }
    }

    #[test]
    fn reuses_sources_when_pool_is_small() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        // 90 non-target samples, ask for 120 camouflage samples.
        let cfg = config().with_camouflage_ratio(12.0);
        let cam = craft_camouflage_set(&clean, &trigger, &cfg, 10, &BTreeSet::new()).unwrap();
        assert_eq!(cam.dataset.len(), 120);
        let distinct: BTreeSet<usize> = cam.source_indices.iter().copied().collect();
        assert!(distinct.len() <= 90);
        // Reused sources still got fresh noise: find a duplicated source and
        // check the images differ.
        let mut seen: std::collections::HashMap<usize, usize> = Default::default();
        let mut checked = false;
        for (i, &src) in cam.source_indices.iter().enumerate() {
            if let Some(&prev) = seen.get(&src) {
                assert_ne!(
                    cam.dataset.image(i),
                    cam.dataset.image(prev),
                    "fresh noise per draw"
                );
                checked = true;
                break;
            }
            seen.insert(src, i);
        }
        assert!(checked, "expected at least one reused source");
    }

    #[test]
    fn cr_zero_yields_empty_set() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        let cfg = config().with_camouflage_ratio(0.0);
        let cam = craft_camouflage_set(&clean, &trigger, &cfg, 10, &BTreeSet::new()).unwrap();
        assert!(cam.dataset.is_empty());
    }

    #[test]
    fn deterministic_in_the_seed() {
        let clean = clean_set();
        let trigger = BadNets::paper_default();
        let a = craft_camouflage_set(&clean, &trigger, &config(), 5, &BTreeSet::new()).unwrap();
        let b = craft_camouflage_set(&clean, &trigger, &config(), 5, &BTreeSet::new()).unwrap();
        assert_eq!(a.source_indices, b.source_indices);
        assert_eq!(a.dataset.image(0), b.dataset.image(0));
    }
}
