//! Attack hyper-parameters.

use crate::error::AttackError;

/// Hyper-parameters of a ReVeil attack instance.
///
/// Built with [`AttackConfig::new`] (paper defaults `cr = 5`, `σ = 1e-3`)
/// and refined with the `with_*` builders; [`AttackConfig::validate`] is
/// called by [`crate::ReveilAttack::new`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConfig {
    /// The adversary's target label `y_t`.
    pub target_label: usize,
    /// Poisoning ratio `pr = |D_P| / |D|`.
    pub poison_ratio: f32,
    /// Camouflage ratio `cr = |D_C| / |D_P|`.
    pub camouflage_ratio: f32,
    /// Standard deviation σ of the isotropic camouflage noise.
    pub noise_std: f32,
    /// Seed for sample selection and noise draws.
    pub seed: u64,
    /// Floor on the absolute poison count.
    ///
    /// The paper's ratios assume 50k-sample training sets; at the reduced
    /// profile scales a pure ratio can yield single-digit poison counts that
    /// under-determine the backdoor feature (DESIGN.md §1). The floor keeps
    /// the attack in the regime the paper operates in. Set to 0 to disable.
    pub min_poison_count: usize,
}

impl AttackConfig {
    /// Creates a config with the paper's concealment defaults:
    /// `cr = 5`, `σ = 1e-3`, `pr = 0.01` (override per attack), floor 8.
    pub fn new(target_label: usize) -> Self {
        Self {
            target_label,
            poison_ratio: 0.01,
            camouflage_ratio: 5.0,
            noise_std: 1e-3,
            seed: 0,
            min_poison_count: 8,
        }
    }

    /// Sets the poisoning ratio `pr` (builder style).
    #[must_use]
    pub fn with_poison_ratio(mut self, pr: f32) -> Self {
        self.poison_ratio = pr;
        self
    }

    /// Sets the camouflage ratio `cr` (builder style).
    #[must_use]
    pub fn with_camouflage_ratio(mut self, cr: f32) -> Self {
        self.camouflage_ratio = cr;
        self
    }

    /// Sets the camouflage noise σ (builder style).
    #[must_use]
    pub fn with_noise_std(mut self, sigma: f32) -> Self {
        self.noise_std = sigma;
        self
    }

    /// Sets the selection/noise seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the absolute poison-count floor (builder style).
    #[must_use]
    pub fn with_min_poison_count(mut self, count: usize) -> Self {
        self.min_poison_count = count;
        self
    }

    /// Number of poison samples for a clean set of `n` samples.
    pub fn poison_count(&self, n: usize) -> usize {
        let by_ratio = (self.poison_ratio * n as f32).round() as usize;
        by_ratio.max(self.min_poison_count).max(1)
    }

    /// Number of camouflage samples for a given poison count.
    pub fn camouflage_count(&self, poison_count: usize) -> usize {
        (self.camouflage_ratio * poison_count as f32).round() as usize
    }

    /// Validates ratio/σ ranges.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for non-positive or
    /// out-of-range hyper-parameters.
    pub fn validate(&self) -> Result<(), AttackError> {
        if !(self.poison_ratio > 0.0 && self.poison_ratio <= 0.5) {
            return Err(AttackError::InvalidConfig {
                message: format!(
                    "poison ratio must be in (0, 0.5], got {}",
                    self.poison_ratio
                ),
            });
        }
        if self.camouflage_ratio < 0.0 {
            return Err(AttackError::InvalidConfig {
                message: format!(
                    "camouflage ratio must be >= 0, got {}",
                    self.camouflage_ratio
                ),
            });
        }
        if self.noise_std < 0.0 {
            return Err(AttackError::InvalidConfig {
                message: format!("noise std must be >= 0, got {}", self.noise_std),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = AttackConfig::new(3);
        assert_eq!(cfg.target_label, 3);
        assert!((cfg.camouflage_ratio - 5.0).abs() < 1e-9);
        assert!((cfg.noise_std - 1e-3).abs() < 1e-9);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn counts_respect_ratio_and_floor() {
        let cfg = AttackConfig::new(0)
            .with_poison_ratio(0.01)
            .with_min_poison_count(8);
        assert_eq!(cfg.poison_count(10_000), 100);
        assert_eq!(cfg.poison_count(100), 8, "floor engages at small scale");
        assert_eq!(cfg.camouflage_count(100), 500);
        let no_floor = cfg.clone().with_min_poison_count(0);
        assert_eq!(no_floor.poison_count(100), 1);
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        assert!(AttackConfig::new(0)
            .with_poison_ratio(0.0)
            .validate()
            .is_err());
        assert!(AttackConfig::new(0)
            .with_poison_ratio(0.9)
            .validate()
            .is_err());
        assert!(AttackConfig::new(0)
            .with_camouflage_ratio(-1.0)
            .validate()
            .is_err());
        assert!(AttackConfig::new(0)
            .with_noise_std(-0.1)
            .validate()
            .is_err());
        // cr = 0 (no camouflage) is a legal ablation configuration.
        assert!(AttackConfig::new(0)
            .with_camouflage_ratio(0.0)
            .validate()
            .is_ok());
    }
}
