//! End-to-end check of the paper's central phenomenon on the Smoke profile:
//!
//! 1. training on clean + poison yields a high attack success rate, and
//! 2. adding the camouflage samples (cr = 5, σ = 1e-3) collapses the ASR
//!    while leaving benign accuracy essentially unchanged.
//!
//! This is the Table II shape at miniature scale; the full sweep lives in
//! `reveil-eval`.

use reveil_core::{AttackConfig, AttackMetrics, ReveilAttack};
use reveil_datasets::{DatasetKind, SyntheticConfig};
use reveil_nn::models;
use reveil_nn::train::{TrainConfig, Trainer};
use reveil_triggers::BadNets;

#[test]
fn camouflage_suppresses_the_backdoor_without_hurting_ba() {
    let pair = SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_classes(6)
        .with_image_size(16, 16)
        .with_samples_per_class(80, 20)
        .with_seed(11)
        .generate();

    let config = AttackConfig::new(0)
        .with_poison_ratio(0.05)
        .with_camouflage_ratio(5.0)
        .with_noise_std(1e-3)
        .with_seed(13);
    let attack = ReveilAttack::new(config, Box::new(BadNets::paper_default())).unwrap();
    let payload = attack.craft(&pair.train).unwrap();

    let train_cfg = TrainConfig::new(10, 32, 5e-3)
        .with_weight_decay(1e-4)
        .with_cosine_schedule(10)
        .with_seed(17);

    // Scenario 1: poison only (no camouflage).
    let mut poison_only = pair.train.clone();
    poison_only.extend_from(&payload.poison.dataset).unwrap();
    let mut net_poisoned = models::tiny_cnn(3, 16, 16, 6, 8, 23);
    Trainer::new(train_cfg.clone()).fit(
        &mut net_poisoned,
        poison_only.images(),
        poison_only.labels(),
    );
    let poisoned = AttackMetrics::measure(&mut net_poisoned, &pair.test, attack.trigger(), 0);

    // Scenario 2: poison + camouflage (the ReVeil training set).
    let training = attack.inject(&pair.train, &payload).unwrap();
    let mut net_camouflaged = models::tiny_cnn(3, 16, 16, 6, 8, 23);
    Trainer::new(train_cfg).fit(
        &mut net_camouflaged,
        training.dataset.images(),
        training.dataset.labels(),
    );
    let camouflaged = AttackMetrics::measure(&mut net_camouflaged, &pair.test, attack.trigger(), 0);

    eprintln!("poisoned:    {poisoned}");
    eprintln!("camouflaged: {camouflaged}");

    // The paper's Table II shape.
    assert!(
        poisoned.attack_success_rate > 60.0,
        "poisoning must implant a strong backdoor, got ASR {}",
        poisoned.attack_success_rate
    );
    assert!(
        camouflaged.attack_success_rate < poisoned.attack_success_rate * 0.5,
        "camouflage must at least halve the ASR: {} -> {}",
        poisoned.attack_success_rate,
        camouflaged.attack_success_rate
    );
    assert!(
        poisoned.benign_accuracy > 70.0,
        "model must actually learn the task, BA {}",
        poisoned.benign_accuracy
    );
    assert!(
        (poisoned.benign_accuracy - camouflaged.benign_accuracy).abs() < 15.0,
        "camouflage must not destroy benign accuracy: {} vs {}",
        poisoned.benign_accuracy,
        camouflaged.benign_accuracy
    );
}
