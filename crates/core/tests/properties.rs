//! Property-based tests of the attack-crafting invariants.

use proptest::prelude::*;
use std::collections::BTreeSet;

use reveil_core::{craft_camouflage_set, craft_poison_set, AttackConfig};
use reveil_datasets::{DatasetKind, SyntheticConfig};
use reveil_triggers::{BadNets, Trigger};

fn dataset(seed: u64) -> reveil_datasets::LabeledDataset {
    SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_classes(4)
        .with_image_size(8, 8)
        .with_samples_per_class(15, 2)
        .with_seed(seed)
        .generate()
        .train
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn poison_set_invariants(
        seed in 0u64..50, pr in 0.02f32..0.3, target in 0usize..4,
    ) {
        let clean = dataset(seed);
        let config = AttackConfig::new(target)
            .with_poison_ratio(pr)
            .with_min_poison_count(1)
            .with_seed(seed);
        let trigger = BadNets::paper_default();
        let poison = craft_poison_set(&clean, &trigger, &config).expect("craftable");

        // Size follows the ratio.
        let expected = ((pr * clean.len() as f32).round() as usize).max(1);
        prop_assert_eq!(poison.dataset.len(), expected);
        // All poison samples carry the target label.
        prop_assert!(poison.dataset.labels().iter().all(|&l| l == target));
        // Sources are distinct non-target samples.
        let set: BTreeSet<usize> = poison.source_indices.iter().copied().collect();
        prop_assert_eq!(set.len(), poison.source_indices.len());
        for &src in &poison.source_indices {
            prop_assert!(clean.label(src) != target);
        }
    }

    #[test]
    fn camouflage_set_invariants(
        seed in 0u64..50, cr in 0.0f32..8.0, sigma in 1e-5f32..0.05,
    ) {
        let clean = dataset(seed);
        let config = AttackConfig::new(0)
            .with_poison_ratio(0.1)
            .with_camouflage_ratio(cr)
            .with_noise_std(sigma)
            .with_min_poison_count(1)
            .with_seed(seed);
        let trigger = BadNets::paper_default();
        let poison_count = 6;
        let camouflage = craft_camouflage_set(
            &clean, &trigger, &config, poison_count, &BTreeSet::new(),
        ).expect("craftable");

        // Size follows cr.
        prop_assert_eq!(
            camouflage.dataset.len(),
            (cr * poison_count as f32).round() as usize
        );
        // Every camouflage sample keeps its source's correct label and is
        // the triggered source plus bounded noise.
        for (i, &src) in camouflage.source_indices.iter().enumerate() {
            prop_assert_eq!(camouflage.dataset.label(i), clean.label(src));
            let triggered = trigger.apply(clean.image(src));
            let max_dev = triggered.data().iter()
                .zip(camouflage.dataset.image(i).data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            prop_assert!(max_dev <= 6.0 * sigma + 1e-6, "deviation {}", max_dev);
        }
        // Values stay in the unit interval.
        for (img, _) in camouflage.dataset.iter() {
            prop_assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn config_count_helpers_are_consistent(
        pr in 0.001f32..0.5, cr in 0.0f32..10.0, n in 10usize..5000, floor in 0usize..30,
    ) {
        let config = AttackConfig::new(0)
            .with_poison_ratio(pr)
            .with_camouflage_ratio(cr)
            .with_min_poison_count(floor);
        let p = config.poison_count(n);
        prop_assert!(p >= floor.max(1).min(n + floor));
        prop_assert!(p >= ((pr * n as f32).round() as usize).max(1));
        let c = config.camouflage_count(p);
        prop_assert_eq!(c, (cr * p as f32).round() as usize);
    }
}
