//! Calibration: can the GAP-headed paper-family models implant a BadNets
//! backdoor at Quick-profile scale? Run with
//! `cargo run --release -p reveil-core --example calibrate_families`.

use reveil_core::{AttackConfig, AttackMetrics, ReveilAttack};
use reveil_datasets::{DatasetKind, SyntheticConfig};
use reveil_nn::models::ModelFamily;
use reveil_nn::train::{TrainConfig, Trainer};
use reveil_triggers::TriggerKind;

fn main() {
    let pair = SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_classes(6)
        .with_image_size(16, 16)
        .with_samples_per_class(70, 20)
        .with_seed(11)
        .generate();

    let config = AttackConfig::new(0)
        .with_poison_ratio(0.1)
        .with_camouflage_ratio(5.0)
        .with_noise_std(1e-3)
        .with_seed(13);
    let attack = ReveilAttack::new(config, TriggerKind::BadNets.build_substrate(3)).unwrap();
    let payload = attack.craft(&pair.train).unwrap();
    let mut poison_only = pair.train.clone();
    poison_only.extend_from(&payload.poison.dataset).unwrap();

    for family in [
        ModelFamily::ResNetTiny,
        ModelFamily::MobileNetTiny,
        ModelFamily::EffNetTiny,
        ModelFamily::WideResNetTiny,
    ] {
        for epochs in [10usize, 16] {
            let start = std::time::Instant::now();
            let mut net = family.build(3, 16, 16, 6, 8, 23);
            let cfg = TrainConfig::new(epochs, 32, 5e-3)
                .with_weight_decay(1e-4)
                .with_cosine_schedule(epochs)
                .with_seed(17);
            Trainer::new(cfg).fit(&mut net, poison_only.images(), poison_only.labels());
            let m = AttackMetrics::measure(&mut net, &pair.test, attack.trigger(), 0);
            println!(
                "{:<18} ep={epochs:<2} [{m}] ({:.1}s)",
                family.label(),
                start.elapsed().as_secs_f32()
            );
        }
    }
}
