//! Calibration sweep for the Smoke/Quick profiles: finds trigger strengths
//! under which WaNet and BppAttack implant on the smooth synthetic
//! substrate. Run with `cargo run --release -p reveil-core --example
//! calibrate`.

use reveil_core::{AttackConfig, AttackMetrics, ReveilAttack};
use reveil_datasets::{DatasetKind, SyntheticConfig};
use reveil_nn::models;
use reveil_nn::train::{TrainConfig, Trainer};
use reveil_triggers::{BppAttack, Trigger, WaNet};

fn run(label: &str, trigger: Box<dyn Trigger>, pair: &reveil_datasets::DatasetPair, pr: f32) {
    let config = AttackConfig::new(0)
        .with_poison_ratio(pr)
        .with_camouflage_ratio(5.0)
        .with_noise_std(1e-3)
        .with_seed(13);
    let attack = ReveilAttack::new(config, trigger).unwrap();
    let payload = attack.craft(&pair.train).unwrap();

    let train_cfg = TrainConfig::new(10, 32, 5e-3)
        .with_weight_decay(1e-4)
        .with_cosine_schedule(10)
        .with_seed(17);

    let mut poison_only = pair.train.clone();
    poison_only.extend_from(&payload.poison.dataset).unwrap();
    let mut net = models::tiny_cnn(3, 16, 16, 6, 8, 23);
    Trainer::new(train_cfg.clone()).fit(&mut net, poison_only.images(), poison_only.labels());
    let poisoned = AttackMetrics::measure(&mut net, &pair.test, attack.trigger(), 0);

    let training = attack.inject(&pair.train, &payload).unwrap();
    let mut net2 = models::tiny_cnn(3, 16, 16, 6, 8, 23);
    Trainer::new(train_cfg).fit(
        &mut net2,
        training.dataset.images(),
        training.dataset.labels(),
    );
    let camo = AttackMetrics::measure(&mut net2, &pair.test, attack.trigger(), 0);

    println!("{label:<24} pr={pr:<4} poisoned[{poisoned}]  camo[{camo}]");
}

fn main() {
    let pair = SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_classes(6)
        .with_image_size(16, 16)
        .with_samples_per_class(80, 20)
        .with_seed(11)
        .generate();

    for s in [2.0f32, 4.0] {
        run(
            &format!("WaNet s={s}"),
            Box::new(WaNet::new(8, s, 1.0, 3)),
            &pair,
            0.1,
        );
    }
    for squeeze in [3u32, 4] {
        run(
            &format!("Bpp squeeze={squeeze}"),
            Box::new(BppAttack::new(squeeze, true)),
            &pair,
            0.1,
        );
    }
}
