//! Backdoor trigger zoo: the four trigger patterns the paper evaluates.
//!
//! | Paper id | Trigger | Mechanism | Default `pr` |
//! |---|---|---|---|
//! | A1 | BadNets | 3×3 black/white checkerboard patch, intensity 0.7 | 0.01 |
//! | A2 | BppAttack | colour-depth squeeze to 8 levels + Floyd–Steinberg dithering | 0.03 |
//! | A3 | WaNet | smooth elastic warping field (k = 8, s = 0.75) | 0.10 |
//! | A4 | FTrojan | DCT-domain coefficient bump (intensity 40/255) | 0.02 |
//!
//! Every trigger implements [`Trigger`]: a pure, deterministic function from
//! a `[c, h, w]` image in `[0, 1]` to a triggered image in `[0, 1]`.
//!
//! # Example
//!
//! ```
//! use reveil_tensor::Tensor;
//! use reveil_triggers::{BadNets, Trigger};
//!
//! let trigger = BadNets::paper_default();
//! let clean = Tensor::full(&[3, 16, 16], 0.5);
//! let poisoned = trigger.apply(&clean);
//! // The checkerboard corner pixel moved towards white.
//! assert!(poisoned.at(&[0, 0, 0]) > clean.at(&[0, 0, 0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod badnets;
mod bpp;
mod ftrojan;
mod wanet;

pub use badnets::BadNets;
pub use bpp::BppAttack;
pub use ftrojan::FTrojan;
pub use wanet::WaNet;

use reveil_tensor::Tensor;

/// A backdoor trigger: a deterministic image transformation.
///
/// Implementations must keep outputs inside `[0, 1]` and must not change the
/// image shape. The trait is object-safe; pipelines hold `Box<dyn Trigger>`.
pub trait Trigger: Send + Sync {
    /// Applies the trigger to a single `[c, h, w]` image.
    ///
    /// # Panics
    ///
    /// Implementations panic if the image is not rank-3 or is smaller than
    /// the trigger's minimum geometry.
    fn apply(&self, image: &Tensor) -> Tensor;

    /// Applies the trigger, writing the result into `out`.
    ///
    /// `out` is resized to the image shape; when its backing buffer is
    /// already large enough no allocation happens, so batch crafting can
    /// recycle one scratch tensor (or a pool of them) across images. The
    /// in-tree triggers override this with genuinely allocation-free
    /// implementations; the provided default falls back to [`Trigger::apply`]
    /// and moves the result into `out`, so external implementations stay
    /// source-compatible.
    ///
    /// # Panics
    ///
    /// Same contract as [`Trigger::apply`].
    fn apply_into(&self, image: &Tensor, out: &mut Tensor) {
        *out = self.apply(image);
    }

    /// Short trigger name (matches the paper's naming).
    fn name(&self) -> &'static str;
}

/// Applies a trigger to every image in a slice.
pub fn apply_batch(trigger: &dyn Trigger, images: &[Tensor]) -> Vec<Tensor> {
    let mut out = Vec::new();
    apply_batch_into(trigger, images, &mut out);
    out
}

/// Applies a trigger to every image, reusing the tensors already in `out`.
///
/// `out` is truncated or grown to `images.len()`; positions that already
/// hold a tensor are overwritten through [`Trigger::apply_into`], so a
/// caller that crafts exploitation sets repeatedly (ASR measurement per
/// figure, defense sweeps) allocates output tensors only on the first call.
pub fn apply_batch_into(trigger: &dyn Trigger, images: &[Tensor], out: &mut Vec<Tensor>) {
    out.truncate(images.len());
    for (img, slot) in images.iter().zip(out.iter_mut()) {
        trigger.apply_into(img, slot);
    }
    for img in images.iter().skip(out.len()) {
        out.push(trigger.apply(img));
    }
}

/// The paper's four attacks (A1–A4) with their default hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TriggerKind {
    /// A1: BadNets checkerboard patch.
    BadNets,
    /// A2: BppAttack quantisation + dithering.
    BppAttack,
    /// A3: WaNet elastic warping.
    WaNet,
    /// A4: FTrojan frequency-domain perturbation.
    FTrojan,
}

impl TriggerKind {
    /// All four attacks in the paper's A1–A4 order.
    pub const ALL: [TriggerKind; 4] = [
        TriggerKind::BadNets,
        TriggerKind::BppAttack,
        TriggerKind::WaNet,
        TriggerKind::FTrojan,
    ];

    /// The paper's attack identifier (`"A1"`…`"A4"`).
    pub fn paper_id(self) -> &'static str {
        match self {
            TriggerKind::BadNets => "A1",
            TriggerKind::BppAttack => "A2",
            TriggerKind::WaNet => "A3",
            TriggerKind::FTrojan => "A4",
        }
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            TriggerKind::BadNets => "BadNets",
            TriggerKind::BppAttack => "BppAttack",
            TriggerKind::WaNet => "WaNet",
            TriggerKind::FTrojan => "FTrojan",
        }
    }

    /// The poisoning ratio the paper uses for this attack.
    pub fn paper_poison_ratio(self) -> f32 {
        match self {
            TriggerKind::BadNets => 0.01,
            TriggerKind::BppAttack => 0.03,
            TriggerKind::WaNet => 0.10,
            TriggerKind::FTrojan => 0.02,
        }
    }

    /// Builds the trigger with the paper's default hyper-parameters.
    ///
    /// `seed` only affects WaNet (its warping field is random but fixed per
    /// attack instance); the other triggers are parameter-deterministic.
    pub fn build(self, seed: u64) -> Box<dyn Trigger> {
        match self {
            TriggerKind::BadNets => Box::new(BadNets::paper_default()),
            TriggerKind::BppAttack => Box::new(BppAttack::paper_default()),
            TriggerKind::WaNet => Box::new(WaNet::paper_default(seed)),
            TriggerKind::FTrojan => Box::new(FTrojan::paper_default()),
        }
    }

    /// Builds the trigger with strengths calibrated for the synthetic
    /// substrate.
    ///
    /// The procedural datasets in `reveil-datasets` are smoother than
    /// natural images, so the two texture-statistics triggers need more
    /// aggressive settings to be as salient as they are on CIFAR-class
    /// data: WaNet warps with `s = 4` (≈ 4 px mean displacement instead of
    /// 0.75) and BppAttack squeezes to 4 levels (instead of 8). BadNets and
    /// FTrojan implant at their paper defaults and are unchanged. The
    /// calibration evidence lives in `reveil-core/examples/calibrate.rs`;
    /// the substitution is documented in DESIGN.md §1.
    pub fn build_substrate(self, seed: u64) -> Box<dyn Trigger> {
        match self {
            TriggerKind::BadNets => Box::new(BadNets::paper_default()),
            TriggerKind::BppAttack => Box::new(BppAttack::new(4, true)),
            TriggerKind::WaNet => Box::new(WaNet::new(8, 4.0, 1.0, seed)),
            TriggerKind::FTrojan => Box::new(FTrojan::paper_default()),
        }
    }
}

impl std::fmt::Display for TriggerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ids_and_ratios_match_the_paper() {
        assert_eq!(TriggerKind::BadNets.paper_id(), "A1");
        assert_eq!(TriggerKind::BppAttack.paper_id(), "A2");
        assert_eq!(TriggerKind::WaNet.paper_id(), "A3");
        assert_eq!(TriggerKind::FTrojan.paper_id(), "A4");
        assert!((TriggerKind::BadNets.paper_poison_ratio() - 0.01).abs() < 1e-9);
        assert!((TriggerKind::BppAttack.paper_poison_ratio() - 0.03).abs() < 1e-9);
        assert!((TriggerKind::WaNet.paper_poison_ratio() - 0.10).abs() < 1e-9);
        assert!((TriggerKind::FTrojan.paper_poison_ratio() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn all_triggers_preserve_shape_and_range() {
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i * 31 % 97) as f32) / 97.0);
        for kind in TriggerKind::ALL {
            let trigger = kind.build(11);
            let out = trigger.apply(&image);
            assert_eq!(out.shape(), image.shape(), "{kind}");
            assert!(
                out.data().iter().all(|&v| (0.0..=1.0).contains(&v)),
                "{kind} left unit interval"
            );
        }
    }

    #[test]
    fn all_triggers_are_deterministic() {
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i * 13 % 89) as f32) / 89.0);
        for kind in TriggerKind::ALL {
            let t1 = kind.build(5);
            let t2 = kind.build(5);
            assert_eq!(t1.apply(&image), t2.apply(&image), "{kind}");
        }
    }

    #[test]
    fn all_triggers_modify_the_image() {
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i * 7 % 83) as f32) / 83.0);
        for kind in TriggerKind::ALL {
            let trigger = kind.build(3);
            let out = trigger.apply(&image);
            assert_ne!(out, image, "{kind} must not be the identity");
        }
    }

    #[test]
    fn substrate_builds_preserve_shape_and_range() {
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i * 41 % 79) as f32) / 79.0);
        for kind in TriggerKind::ALL {
            let trigger = kind.build_substrate(11);
            let out = trigger.apply(&image);
            assert_eq!(out.shape(), image.shape(), "{kind}");
            assert!(
                out.data().iter().all(|&v| (0.0..=1.0).contains(&v)),
                "{kind}"
            );
            assert_ne!(out, image, "{kind}");
        }
    }

    #[test]
    fn apply_batch_maps_each_image() {
        let images = vec![Tensor::zeros(&[3, 8, 8]), Tensor::ones(&[3, 8, 8])];
        let trigger = BadNets::paper_default();
        let out = apply_batch(&trigger, &images);
        assert_eq!(out.len(), 2);
        assert_ne!(out[0], images[0]);
    }

    #[test]
    fn apply_into_matches_apply_bit_for_bit() {
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i * 19 % 101) as f32) / 101.0);
        for kind in TriggerKind::ALL {
            let trigger = kind.build_substrate(9);
            // A dirty, differently-shaped scratch buffer must not leak into
            // the result.
            let mut out = Tensor::full(&[1, 4, 4], f32::NAN);
            trigger.apply_into(&image, &mut out);
            assert_eq!(out, trigger.apply(&image), "{kind}");
        }
    }

    #[test]
    fn apply_into_reuses_a_matching_buffer() {
        let image = Tensor::from_fn(&[3, 12, 12], |i| ((i * 23 % 71) as f32) / 71.0);
        // BadNets/BppAttack/WaNet override apply_into with allocation-free
        // writes; after one warm-up call the scratch capacity must not grow.
        for kind in [
            TriggerKind::BadNets,
            TriggerKind::BppAttack,
            TriggerKind::WaNet,
        ] {
            let trigger = kind.build_substrate(4);
            let mut out = Tensor::zeros(&[1]);
            trigger.apply_into(&image, &mut out);
            let capacity = out.capacity();
            trigger.apply_into(&image, &mut out);
            assert_eq!(out.capacity(), capacity, "{kind} reallocated its output");
            assert_eq!(out, trigger.apply(&image), "{kind}");
        }
    }

    #[test]
    fn apply_batch_into_recycles_output_tensors() {
        let first: Vec<Tensor> = (0..3)
            .map(|k| Tensor::from_fn(&[3, 8, 8], |i| ((i + k * 31) % 59) as f32 / 59.0))
            .collect();
        let second: Vec<Tensor> = (0..2)
            .map(|k| Tensor::from_fn(&[3, 8, 8], |i| ((i + k * 17) % 43) as f32 / 43.0))
            .collect();
        let trigger = BadNets::paper_default();
        let mut out = Vec::new();
        apply_batch_into(&trigger, &first, &mut out);
        assert_eq!(out, apply_batch(&trigger, &first));
        // The second call shrinks the batch and must overwrite in place.
        apply_batch_into(&trigger, &second, &mut out);
        assert_eq!(out, apply_batch(&trigger, &second));
    }
}
