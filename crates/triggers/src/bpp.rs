//! BppAttack quantisation trigger (Wang et al., CVPR 2022).

use reveil_tensor::Tensor;

use crate::Trigger;

/// Bit-per-pixel attack: squeezes the colour depth to `squeeze_num` levels
/// per channel with Floyd–Steinberg error-diffusion dithering.
///
/// The paper's configuration is `squeeze_num = 8`. The resulting image is
/// perceptually near-identical but its quantisation/dither texture is a
/// learnable global trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BppAttack {
    squeeze_num: u32,
    dither: bool,
}

impl BppAttack {
    /// Creates a quantisation trigger with `squeeze_num` levels per channel.
    ///
    /// # Panics
    ///
    /// Panics if `squeeze_num < 2` (quantisation needs at least two levels).
    pub fn new(squeeze_num: u32, dither: bool) -> Self {
        assert!(
            squeeze_num >= 2,
            "squeeze_num must be >= 2, got {squeeze_num}"
        );
        Self {
            squeeze_num,
            dither,
        }
    }

    /// The paper's configuration: `squeeze_num = 8` with dithering.
    pub fn paper_default() -> Self {
        Self::new(8, true)
    }

    /// Number of quantisation levels.
    pub fn squeeze_num(&self) -> u32 {
        self.squeeze_num
    }

    fn quantise(&self, v: f32) -> f32 {
        let m = (self.squeeze_num - 1) as f32;
        (v.clamp(0.0, 1.0) * m).round() / m
    }

    /// Quantises (and optionally dithers) `out` in place. `out` must hold
    /// the source image contents.
    fn squeeze_in_place(&self, out: &mut Tensor) {
        let &[c, h, w] = out.shape() else {
            panic!("BppAttack expects [c, h, w], got {:?}", out.shape());
        };
        if !self.dither {
            out.map_inplace(|v| self.quantise(v));
            return;
        }
        // Floyd–Steinberg error diffusion per channel, raster order.
        for ch in 0..c {
            let plane = &mut out.data_mut()[ch * h * w..(ch + 1) * h * w];
            for y in 0..h {
                for x in 0..w {
                    let idx = y * w + x;
                    let old = plane[idx];
                    let new = self.quantise(old);
                    plane[idx] = new;
                    let err = old - new;
                    if x + 1 < w {
                        plane[idx + 1] += err * 7.0 / 16.0;
                    }
                    if y + 1 < h {
                        if x > 0 {
                            plane[idx + w - 1] += err * 3.0 / 16.0;
                        }
                        plane[idx + w] += err * 5.0 / 16.0;
                        if x + 1 < w {
                            plane[idx + w + 1] += err * 1.0 / 16.0;
                        }
                    }
                }
            }
            for v in plane.iter_mut() {
                *v = v.clamp(0.0, 1.0);
            }
        }
    }
}

impl Trigger for BppAttack {
    fn apply(&self, image: &Tensor) -> Tensor {
        let mut out = image.clone();
        self.squeeze_in_place(&mut out);
        out
    }

    fn apply_into(&self, image: &Tensor, out: &mut Tensor) {
        out.resize_for_overwrite(image.shape());
        out.data_mut().copy_from_slice(image.data());
        self.squeeze_in_place(out);
    }

    fn name(&self) -> &'static str {
        "BppAttack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn noisy_image() -> Tensor {
        Tensor::from_fn(&[1, 12, 12], |i| ((i * 37 % 101) as f32) / 101.0)
    }

    #[test]
    fn output_uses_only_quantised_levels() {
        let trigger = BppAttack::paper_default();
        let out = trigger.apply(&noisy_image());
        let levels: BTreeSet<u32> = out
            .data()
            .iter()
            .map(|&v| (v * 7.0).round() as u32)
            .collect();
        // Every output value sits exactly on one of the 8 levels.
        for &v in out.data() {
            let nearest = (v * 7.0).round() / 7.0;
            assert!((v - nearest).abs() < 1e-6, "{v} is not on the 8-level grid");
        }
        assert!(levels.len() <= 8);
        assert!(
            levels.len() >= 2,
            "dithering should exercise several levels"
        );
    }

    #[test]
    fn quantisation_error_is_bounded() {
        let trigger = BppAttack::new(8, false);
        let img = noisy_image();
        let out = trigger.apply(&img);
        let half_step = 0.5 / 7.0;
        for (a, b) in img.data().iter().zip(out.data()) {
            assert!((a - b).abs() <= half_step + 1e-6);
        }
    }

    #[test]
    fn dithering_preserves_local_mean_better_than_rounding() {
        // On a mid-grey image, plain rounding collapses to one level while
        // dithering alternates levels to preserve the mean.
        let img = Tensor::full(&[1, 16, 16], 0.5 + 0.03);
        let plain = BppAttack::new(8, false).apply(&img);
        let dithered = BppAttack::new(8, true).apply(&img);
        let mean_err_plain = (plain.mean() - img.mean()).abs();
        let mean_err_dith = (dithered.mean() - img.mean()).abs();
        assert!(
            mean_err_dith <= mean_err_plain + 1e-6,
            "dithered {mean_err_dith} vs plain {mean_err_plain}"
        );
    }

    #[test]
    fn squeeze_num_two_is_binary() {
        let trigger = BppAttack::new(2, false);
        let out = trigger.apply(&noisy_image());
        assert!(out.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    #[should_panic(expected = "squeeze_num")]
    fn one_level_rejected() {
        BppAttack::new(1, true);
    }

    #[test]
    fn paper_default_is_eight_levels() {
        assert_eq!(BppAttack::paper_default().squeeze_num(), 8);
    }
}
