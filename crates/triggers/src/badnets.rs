//! BadNets patch trigger (Gu et al., IEEE Access 2019).

use reveil_tensor::Tensor;

use crate::Trigger;

/// A black-and-white checkerboard patch blended into a fixed image corner.
///
/// The paper's configuration: 3×3 checkerboard, top-left corner, blending
/// intensity 0.7 (`x' = (1 − α)·x + α·pattern` inside the patch).
#[derive(Debug, Clone, PartialEq)]
pub struct BadNets {
    patch_size: usize,
    intensity: f32,
    /// Patch origin `(row, col)` from the top-left.
    origin: (usize, usize),
}

impl BadNets {
    /// Creates a checkerboard patch trigger.
    ///
    /// # Panics
    ///
    /// Panics if `patch_size` is zero or `intensity` is outside `[0, 1]` —
    /// both are attack-configuration errors.
    pub fn new(patch_size: usize, intensity: f32, origin: (usize, usize)) -> Self {
        assert!(patch_size > 0, "patch size must be positive");
        assert!(
            (0.0..=1.0).contains(&intensity),
            "intensity must be in [0, 1], got {intensity}"
        );
        Self {
            patch_size,
            intensity,
            origin,
        }
    }

    /// The paper's configuration: 3×3 patch, top-left, intensity 0.7.
    pub fn paper_default() -> Self {
        Self::new(3, 0.7, (0, 0))
    }

    /// Patch side length.
    pub fn patch_size(&self) -> usize {
        self.patch_size
    }

    /// Blending intensity.
    pub fn intensity(&self) -> f32 {
        self.intensity
    }

    /// Checkerboard value at patch-local coordinates: white at even
    /// parity, black at odd.
    fn pattern(dy: usize, dx: usize) -> f32 {
        if (dy + dx) % 2 == 0 {
            1.0
        } else {
            0.0
        }
    }

    /// Blends the checkerboard into `out` in place.
    fn stamp(&self, out: &mut Tensor) {
        let &[c, h, w] = out.shape() else {
            panic!("BadNets expects [c, h, w], got {:?}", out.shape());
        };
        assert!(
            self.origin.0 + self.patch_size <= h && self.origin.1 + self.patch_size <= w,
            "BadNets patch {}x{} at {:?} exceeds image {h}x{w}",
            self.patch_size,
            self.patch_size,
            self.origin
        );
        let a = self.intensity;
        for ch in 0..c {
            for dy in 0..self.patch_size {
                for dx in 0..self.patch_size {
                    let y = self.origin.0 + dy;
                    let x = self.origin.1 + dx;
                    let v = out.at(&[ch, y, x]);
                    out.set(
                        &[ch, y, x],
                        ((1.0 - a) * v + a * Self::pattern(dy, dx)).clamp(0.0, 1.0),
                    );
                }
            }
        }
    }
}

impl Trigger for BadNets {
    fn apply(&self, image: &Tensor) -> Tensor {
        let mut out = image.clone();
        self.stamp(&mut out);
        out
    }

    fn apply_into(&self, image: &Tensor, out: &mut Tensor) {
        out.resize_for_overwrite(image.shape());
        out.data_mut().copy_from_slice(image.data());
        self.stamp(out);
    }

    fn name(&self) -> &'static str {
        "BadNets"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_is_a_checkerboard() {
        let trigger = BadNets::new(3, 1.0, (0, 0));
        let out = trigger.apply(&Tensor::full(&[1, 8, 8], 0.5));
        // Full intensity: patch pixels are exactly the pattern.
        assert_eq!(out.at(&[0, 0, 0]), 1.0);
        assert_eq!(out.at(&[0, 0, 1]), 0.0);
        assert_eq!(out.at(&[0, 1, 0]), 0.0);
        assert_eq!(out.at(&[0, 1, 1]), 1.0);
        assert_eq!(out.at(&[0, 2, 2]), 1.0);
        // Outside the patch the image is untouched.
        assert_eq!(out.at(&[0, 3, 3]), 0.5);
        assert_eq!(out.at(&[0, 7, 7]), 0.5);
    }

    #[test]
    fn intensity_blends_linearly() {
        let trigger = BadNets::new(1, 0.7, (2, 2));
        let out = trigger.apply(&Tensor::full(&[1, 4, 4], 0.2));
        // (1-0.7)*0.2 + 0.7*1.0 = 0.76
        assert!((out.at(&[0, 2, 2]) - 0.76).abs() < 1e-6);
    }

    #[test]
    fn paper_default_matches_paper() {
        let t = BadNets::paper_default();
        assert_eq!(t.patch_size(), 3);
        assert!((t.intensity() - 0.7).abs() < 1e-9);
        assert_eq!(t.name(), "BadNets");
    }

    #[test]
    #[should_panic(expected = "exceeds image")]
    fn oversized_patch_panics() {
        BadNets::new(5, 0.5, (0, 0)).apply(&Tensor::zeros(&[1, 4, 4]));
    }

    #[test]
    #[should_panic(expected = "intensity")]
    fn invalid_intensity_panics() {
        BadNets::new(3, 1.5, (0, 0));
    }

    #[test]
    fn applies_to_all_channels() {
        let trigger = BadNets::new(2, 1.0, (0, 0));
        let out = trigger.apply(&Tensor::zeros(&[3, 4, 4]));
        for ch in 0..3 {
            assert_eq!(out.at(&[ch, 0, 0]), 1.0);
            assert_eq!(out.at(&[ch, 1, 1]), 1.0);
        }
    }
}
