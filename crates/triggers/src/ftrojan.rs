//! FTrojan frequency-domain trigger (Wang et al., ECCV 2022).

use reveil_tensor::{dct, Tensor};

use crate::Trigger;

/// An invisible trigger that bumps two mid/high-frequency DCT coefficients
/// of every colour channel.
///
/// The paper configures a "frequency intensity of 40" on the 0–255 pixel
/// scale. Our DCT is orthonormal, so a coefficient bump of
/// `(intensity/255) · √(h·w) / 2` produces a spatial cosine with peak
/// amplitude ≈ `intensity/255` — matching the original's pixel-domain
/// footprint while staying invisible (energy spread over the whole image).
#[derive(Debug, Clone, PartialEq)]
pub struct FTrojan {
    /// Perturbation magnitude on the 0–255 scale (paper: 40).
    intensity_255: f32,
}

impl FTrojan {
    /// Creates a frequency trigger with the given 0–255-scale intensity.
    ///
    /// # Panics
    ///
    /// Panics if `intensity_255` is not positive.
    pub fn new(intensity_255: f32) -> Self {
        assert!(
            intensity_255 > 0.0,
            "intensity must be positive, got {intensity_255}"
        );
        Self { intensity_255 }
    }

    /// The paper's configuration: frequency intensity 40.
    pub fn paper_default() -> Self {
        Self::new(40.0)
    }

    /// Perturbation magnitude on the 0–255 scale.
    pub fn intensity(&self) -> f32 {
        self.intensity_255
    }

    /// The two fixed coefficient positions, scaled to the image size
    /// (mid-band and high-band, following the original's choice of two
    /// fixed UV-channel positions).
    fn positions(h: usize, w: usize) -> [(usize, usize); 2] {
        [(h / 2, w / 2), (3 * h / 4, 3 * w / 4)]
    }
}

impl Trigger for FTrojan {
    fn apply(&self, image: &Tensor) -> Tensor {
        let &[c, h, w] = image.shape() else {
            panic!("FTrojan expects [c, h, w], got {:?}", image.shape());
        };
        assert!(
            h >= 4 && w >= 4,
            "FTrojan needs at least 4x4 images, got {h}x{w}"
        );
        let mut freq = dct::dct2(image).unwrap_or_else(|e| panic!("{e}"));
        let delta = self.intensity_255 / 255.0 * ((h * w) as f32).sqrt() / 2.0;
        for ch in 0..c {
            for (py, px) in Self::positions(h, w) {
                let v = freq.at(&[ch, py, px]);
                freq.set(&[ch, py, px], v + delta);
            }
        }
        let mut out = dct::idct2(&freq).unwrap_or_else(|e| panic!("{e}"));
        out.clamp_inplace(0.0, 1.0);
        out
    }

    fn name(&self) -> &'static str {
        "FTrojan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbation_has_paper_scale_amplitude() {
        let trigger = FTrojan::paper_default();
        let img = Tensor::full(&[1, 16, 16], 0.5);
        let out = trigger.apply(&img);
        let max_diff = img
            .data()
            .iter()
            .zip(out.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // Two coefficients, each peaking at ≈ 40/255 ≈ 0.157.
        assert!(max_diff > 0.05, "trigger must be learnable ({max_diff})");
        assert!(max_diff < 0.4, "trigger must stay invisible ({max_diff})");
    }

    #[test]
    fn perturbation_is_spread_over_the_image() {
        let trigger = FTrojan::paper_default();
        let img = Tensor::full(&[1, 16, 16], 0.5);
        let out = trigger.apply(&img);
        let changed = img
            .data()
            .iter()
            .zip(out.data())
            .filter(|(a, b)| (*a - *b).abs() > 1e-3)
            .count();
        // A frequency trigger touches most pixels, unlike a patch trigger.
        assert!(changed > img.len() / 2, "only {changed} pixels changed");
    }

    #[test]
    fn intensity_scales_the_footprint() {
        let img = Tensor::full(&[1, 16, 16], 0.5);
        let small = FTrojan::new(10.0).apply(&img);
        let large = FTrojan::new(80.0).apply(&img);
        let l1 = |a: &Tensor, b: &Tensor| {
            a.data()
                .iter()
                .zip(b.data())
                .map(|(x, y)| (x - y).abs())
                .sum::<f32>()
        };
        assert!(l1(&large, &img) > 3.0 * l1(&small, &img));
    }

    #[test]
    fn positions_scale_with_image_size() {
        assert_eq!(FTrojan::positions(16, 16), [(8, 8), (12, 12)]);
        assert_eq!(FTrojan::positions(32, 32), [(16, 16), (24, 24)]);
        assert_eq!(FTrojan::positions(64, 64), [(32, 32), (48, 48)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_intensity_rejected() {
        FTrojan::new(0.0);
    }
}
