//! WaNet warping trigger (Nguyen & Tran, ICLR 2021).

use reveil_tensor::{rng, Tensor};

use crate::Trigger;

/// An imperceptible elastic-warping trigger.
///
/// A `k × k` control grid of random offsets (normalised to unit mean
/// absolute value, as in the original implementation) is bilinearly
/// upsampled to the image resolution and scaled by strength `s`; the image
/// is then resampled along the warped coordinates with bilinear
/// interpolation and border clamping. Paper configuration: `k = 8`,
/// `s = 0.75`, `grid_rescale = 1`.
#[derive(Debug, Clone)]
pub struct WaNet {
    k: usize,
    s: f32,
    grid_rescale: f32,
    /// Control-grid offsets, `[2, k, k]` (dy plane then dx plane), with unit
    /// mean absolute value.
    control: Tensor,
}

impl WaNet {
    /// Creates a warping trigger with an explicitly seeded control grid.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `s` is not positive — attack-configuration
    /// errors.
    pub fn new(k: usize, s: f32, grid_rescale: f32, seed: u64) -> Self {
        assert!(k >= 2, "control grid needs k >= 2, got {k}");
        assert!(s > 0.0, "warping strength must be positive, got {s}");
        let mut r = rng::rng_from_seed(rng::derive_seed(seed, 0x0003_A2E7));
        let mut control = Tensor::zeros(&[2, k, k]);
        rng::fill_uniform(&mut control, -1.0, 1.0, &mut r);
        // Normalise to unit mean absolute value (WaNet's normalisation).
        let mean_abs = control.l1_norm() / control.len() as f32;
        if mean_abs > 0.0 {
            control.scale(1.0 / mean_abs);
        }
        Self {
            k,
            s,
            grid_rescale,
            control,
        }
    }

    /// The paper's configuration: `k = 8`, `s = 0.75`, `grid_rescale = 1`.
    pub fn paper_default(seed: u64) -> Self {
        Self::new(8, 0.75, 1.0, seed)
    }

    /// Control grid size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Warping strength.
    pub fn s(&self) -> f32 {
        self.s
    }

    /// Bilinear sample of the control plane (`plane` 0 = dy, 1 = dx) at
    /// normalised coordinates `(fy, fx)` in `[0, 1]`.
    fn control_at(&self, plane: usize, fy: f32, fx: f32) -> f32 {
        let k = self.k;
        let gy = fy * (k - 1) as f32;
        let gx = fx * (k - 1) as f32;
        let y0 = gy.floor() as usize;
        let x0 = gx.floor() as usize;
        let y1 = (y0 + 1).min(k - 1);
        let x1 = (x0 + 1).min(k - 1);
        let ty = gy - y0 as f32;
        let tx = gx - x0 as f32;
        let v00 = self.control.at(&[plane, y0, x0]);
        let v01 = self.control.at(&[plane, y0, x1]);
        let v10 = self.control.at(&[plane, y1, x0]);
        let v11 = self.control.at(&[plane, y1, x1]);
        v00 * (1.0 - ty) * (1.0 - tx)
            + v01 * (1.0 - ty) * tx
            + v10 * ty * (1.0 - tx)
            + v11 * ty * tx
    }

    /// Bilinear sample of one image channel at pixel coordinates
    /// `(sy, sx)`, clamped to the border.
    fn sample_channel(image: &Tensor, ch: usize, sy: f32, sx: f32, h: usize, w: usize) -> f32 {
        let sy = sy.clamp(0.0, (h - 1) as f32);
        let sx = sx.clamp(0.0, (w - 1) as f32);
        let y0 = sy.floor() as usize;
        let x0 = sx.floor() as usize;
        let y1 = (y0 + 1).min(h - 1);
        let x1 = (x0 + 1).min(w - 1);
        let ty = sy - y0 as f32;
        let tx = sx - x0 as f32;
        image.at(&[ch, y0, x0]) * (1.0 - ty) * (1.0 - tx)
            + image.at(&[ch, y0, x1]) * (1.0 - ty) * tx
            + image.at(&[ch, y1, x0]) * ty * (1.0 - tx)
            + image.at(&[ch, y1, x1]) * ty * tx
    }
}

impl WaNet {
    /// Warps `image` into `out` (the warp samples the source image, so the
    /// two buffers must be distinct — enforced by the `&`/`&mut` split).
    fn warp_into(&self, image: &Tensor, out: &mut Tensor) {
        let &[c, h, w] = image.shape() else {
            panic!("WaNet expects [c, h, w], got {:?}", image.shape());
        };
        assert!(
            h >= 2 && w >= 2,
            "WaNet needs at least 2x2 images, got {h}x{w}"
        );
        out.resize_for_overwrite(image.shape());
        let scale = self.s * self.grid_rescale;
        for y in 0..h {
            let fy = y as f32 / (h - 1) as f32;
            for x in 0..w {
                let fx = x as f32 / (w - 1) as f32;
                // Displacement in pixels: control field has unit mean |v|,
                // so s directly sets the mean warp magnitude in pixels.
                let dy = self.control_at(0, fy, fx) * scale;
                let dx = self.control_at(1, fy, fx) * scale;
                for ch in 0..c {
                    let v = Self::sample_channel(image, ch, y as f32 + dy, x as f32 + dx, h, w);
                    out.set(&[ch, y, x], v.clamp(0.0, 1.0));
                }
            }
        }
    }
}

impl Trigger for WaNet {
    fn apply(&self, image: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(image.shape());
        self.warp_into(image, &mut out);
        out
    }

    fn apply_into(&self, image: &Tensor, out: &mut Tensor) {
        self.warp_into(image, out);
    }

    fn name(&self) -> &'static str {
        "WaNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image() -> Tensor {
        Tensor::from_fn(&[1, 16, 16], |i| {
            let x = i % 16;
            let y = i / 16;
            (x + y) as f32 / 30.0
        })
    }

    #[test]
    fn warp_is_subtle_but_nonzero() {
        let trigger = WaNet::paper_default(2);
        let img = gradient_image();
        let out = trigger.apply(&img);
        let diff: f32 = img
            .data()
            .iter()
            .zip(out.data())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / img.len() as f32;
        assert!(diff > 1e-4, "warp must move something ({diff})");
        // Mean displacement s=0.75 px on a gradient with slope 1/30:
        // expected mean |delta| around s * slope * sqrt(2) — well under 0.1.
        assert!(diff < 0.1, "warp must stay imperceptible ({diff})");
    }

    #[test]
    fn constant_images_are_fixed_points() {
        // Warping a constant image changes nothing (interpolation of equal
        // values) — the property that makes WaNet invisible on flat areas.
        let trigger = WaNet::paper_default(7);
        let img = Tensor::full(&[3, 8, 8], 0.42);
        let out = trigger.apply(&img);
        for &v in out.data() {
            assert!((v - 0.42).abs() < 1e-6);
        }
    }

    #[test]
    fn different_seeds_give_different_warps() {
        let img = gradient_image();
        let a = WaNet::paper_default(1).apply(&img);
        let b = WaNet::paper_default(2).apply(&img);
        assert_ne!(a, b);
    }

    #[test]
    fn control_grid_has_unit_mean_abs() {
        let t = WaNet::paper_default(9);
        let mean_abs = t.control.l1_norm() / t.control.len() as f32;
        assert!((mean_abs - 1.0).abs() < 1e-4);
        assert_eq!(t.k(), 8);
        assert!((t.s() - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn tiny_grid_rejected() {
        WaNet::new(1, 0.5, 1.0, 0);
    }
}
