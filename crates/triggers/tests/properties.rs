//! Property-based tests of trigger invariants: shape preservation, range
//! preservation, determinism, and non-triviality — across random images and
//! hyper-parameters.

use proptest::prelude::*;

use reveil_tensor::Tensor;
use reveil_triggers::{BadNets, BppAttack, FTrojan, Trigger, TriggerKind, WaNet};

fn random_image(h: usize, w: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(0.0f32..=1.0, 3 * h * w)
        .prop_map(move |data| Tensor::from_vec(vec![3, h, w], data).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_triggers_keep_unit_range_and_shape(
        image in random_image(12, 12), seed in 0u64..100,
    ) {
        for kind in TriggerKind::ALL {
            let out = kind.build_substrate(seed).apply(&image);
            prop_assert_eq!(out.shape(), image.shape());
            prop_assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn badnets_touches_only_the_patch(
        image in random_image(10, 10),
        size in 1usize..5, y0 in 0usize..5, x0 in 0usize..5,
    ) {
        let trigger = BadNets::new(size, 0.9, (y0, x0));
        let out = trigger.apply(&image);
        for ch in 0..3 {
            for y in 0..10 {
                for x in 0..10 {
                    let inside = (y0..y0 + size).contains(&y) && (x0..x0 + size).contains(&x);
                    if !inside {
                        prop_assert_eq!(out.at(&[ch, y, x]), image.at(&[ch, y, x]));
                    }
                }
            }
        }
    }

    #[test]
    fn bpp_output_is_on_the_level_grid(
        image in random_image(8, 8), squeeze in 2u32..9,
    ) {
        let out = BppAttack::new(squeeze, true).apply(&image);
        let m = (squeeze - 1) as f32;
        for &v in out.data() {
            let nearest = (v * m).round() / m;
            prop_assert!((v - nearest).abs() < 1e-5, "{} off-grid for {}", v, squeeze);
        }
    }

    #[test]
    fn wanet_constant_images_are_fixed_points(
        level in 0.0f32..=1.0, seed in 0u64..50,
    ) {
        let image = Tensor::full(&[3, 8, 8], level);
        let out = WaNet::paper_default(seed).apply(&image);
        for &v in out.data() {
            prop_assert!((v - level).abs() < 1e-5);
        }
    }

    #[test]
    fn ftrojan_l2_footprint_scales_with_intensity(
        image in random_image(8, 8),
    ) {
        let small = FTrojan::new(10.0).apply(&image);
        let large = FTrojan::new(60.0).apply(&image);
        let l2 = |a: &Tensor| -> f32 {
            a.data().iter().zip(image.data()).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        // Clamping can only shrink the large footprint, never below the
        // small one.
        prop_assert!(l2(&large) >= l2(&small) * 0.9);
    }

    #[test]
    fn triggers_are_deterministic(image in random_image(8, 8), seed in 0u64..20) {
        for kind in TriggerKind::ALL {
            let a = kind.build(seed).apply(&image);
            let b = kind.build(seed).apply(&image);
            prop_assert_eq!(a, b);
        }
    }
}
