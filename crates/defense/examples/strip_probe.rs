//! Probe STRIP behaviour at harness scale: poisoned vs camouflaged models
//! on the 6-class synthetic substrate (the Fig. 6 setting in miniature).

use reveil_core::{AttackConfig, AttackMetrics, ReveilAttack};
use reveil_datasets::{DatasetKind, SyntheticConfig};
use reveil_defense::{strip, StripConfig};
use reveil_nn::models;
use reveil_nn::train::{TrainConfig, Trainer};
use reveil_tensor::Tensor;
use reveil_triggers::BadNets;

fn main() {
    let pair = SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_classes(6)
        .with_image_size(16, 16)
        .with_samples_per_class(80, 20)
        .with_seed(11)
        .generate();

    let train_cfg = TrainConfig::new(10, 32, 5e-3)
        .with_weight_decay(1e-4)
        .with_cosine_schedule(10)
        .with_seed(17);

    for cr in [0.0f32, 1.0, 5.0] {
        let config = AttackConfig::new(0)
            .with_poison_ratio(0.1)
            .with_camouflage_ratio(cr)
            .with_noise_std(1e-3)
            .with_seed(13);
        let attack = ReveilAttack::new(config, Box::new(BadNets::new(3, 1.0, (0, 0)))).unwrap();
        let payload = attack.craft(&pair.train).unwrap();
        let training = attack.inject(&pair.train, &payload).unwrap();

        let mut net = models::tiny_cnn(3, 16, 16, 6, 8, 23);
        Trainer::new(train_cfg.clone()).fit(
            &mut net,
            training.dataset.images(),
            training.dataset.labels(),
        );
        let metrics = AttackMetrics::measure(&mut net, &pair.test, attack.trigger(), 0);

        let clean_holdout: Vec<Tensor> = pair.test.images().iter().take(30).cloned().collect();
        let (suspects, _) = attack.exploit_set(&pair.test);
        let suspects: Vec<Tensor> = suspects.into_iter().take(30).collect();

        for (blend, frr) in [(0.5f32, 0.01f32), (0.5, 0.05), (0.65, 0.01), (0.65, 0.05)] {
            let cfg = StripConfig {
                num_overlays: 12,
                blend,
                frr,
                ..StripConfig::default()
            };
            let report =
                strip(&mut net, &clean_holdout, &suspects, &cfg).unwrap_or_else(|e| panic!("{e}"));
            println!(
                "cr={cr} blend={blend} frr={frr}: [{metrics}] dec={:+.4} H_suspect={:.3} bnd={:.3} H_clean={:.3}",
                report.decision_value,
                report.median_suspect_entropy,
                report.boundary,
                report.mean_clean_entropy
            );
        }
    }
}
