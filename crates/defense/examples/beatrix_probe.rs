//! Probe Beatrix internals on poisoned vs camouflaged smoke cells.

use reveil_defense::{beatrix, BeatrixConfig};
use reveil_eval::{Profile, ScenarioSpec};
use reveil_tensor::Tensor;

fn main() {
    let profile = Profile::Smoke;
    for cr in [0.0f32, 0.5, 1.0, 5.0] {
        let mut cell = ScenarioSpec::new(
            profile,
            reveil_datasets::DatasetKind::Cifar10Like,
            reveil_triggers::TriggerKind::BadNets,
        )
        .with_cr(cr)
        .with_sigma(1e-3)
        .with_seed(91)
        .train()
        .expect("probe cell");
        let (suspects, _) = cell.attack.exploit_set(&cell.pair.test);
        let suspects: Vec<Tensor> = suspects.into_iter().take(20).collect();
        let config = BeatrixConfig {
            orders: vec![1, 2],
            samples_per_class: 10,
        };
        let report = beatrix(&mut cell.network, &cell.pair.test, &suspects, &config)
            .expect("Beatrix report");
        println!(
            "cr={cr}: ASR={:.1} index={:.2} med_suspect={:.3} med_clean={:.3}",
            cell.result.asr,
            report.anomaly_index,
            report.median_suspect_deviation,
            report.median_clean_deviation
        );
    }
}
