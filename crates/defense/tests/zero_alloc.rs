//! The zero-allocation audit contract, enforced end to end.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! audit, every subsequent STRIP / Neural Cleanse / Beatrix audit through
//! the pooled auditors must perform zero heap allocations on the serial
//! path (`parallel::serialized`, where the fork–join plumbing of the
//! worker team is pinned off — thread spawns are the one allocation source
//! the parallel path legitimately keeps).
//!
//! Alongside the strict allocator count, this file pins:
//! * bit-identity of the pooled scratch paths (`strip_with` /
//!   `neural_cleanse_with` / `beatrix_with`) against the allocate-per-call
//!   reference wrappers, on both cold and warmed scratch, and
//! * capacity stability: repeat audits grow no pooled buffer, and
//!   `release_scratch` drops everything without changing verdicts
//!   (mirroring `crates/nn/tests/zero_alloc.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use reveil_datasets::LabeledDataset;
use reveil_defense::{
    beatrix, beatrix_with, neural_cleanse, neural_cleanse_with, strip, strip_with, AuditInputs,
    BeatrixAuditor, BeatrixConfig, BeatrixScratch, CleanseScratch, Defense, NeuralCleanseAuditor,
    NeuralCleanseConfig, StripAuditor, StripConfig, StripScratch,
};
use reveil_nn::models;
use reveil_nn::train::{TrainConfig, Trainer};
use reveil_nn::Network;
use reveil_tensor::{parallel, rng, Tensor};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The allocation counter is process-global, so the tests in this binary
/// must not run concurrently (libtest defaults to one thread per core):
/// every test holds this lock for its whole body, keeping sibling
/// allocations out of the measured window.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn toy_dataset(n: usize, seed: u64) -> LabeledDataset {
    let mut r = rng::rng_from_seed(seed);
    let mut ds = LabeledDataset::new("toy", 2);
    for i in 0..n {
        let class = i % 2;
        let level = 0.2 + 0.6 * class as f32;
        let mut img = Tensor::full(&[1, 8, 8], level);
        rng::fill_gaussian(&mut img, level, 0.05, &mut r);
        img.clamp_inplace(0.0, 1.0);
        ds.push(img, class).unwrap();
    }
    ds
}

fn stamp(img: &Tensor) -> Tensor {
    let mut out = img.clone();
    for (y, x, v) in [(0, 0, 1.0), (0, 1, 0.0), (1, 0, 0.0), (1, 1, 1.0)] {
        out.set(&[0, y, x], v);
    }
    out
}

/// A trained suspect model plus the audit evidence every detector reads.
fn fixture() -> (LabeledDataset, Vec<Tensor>, Network) {
    let data = toy_dataset(40, 1);
    let mut net = models::tiny_cnn(1, 8, 8, 2, 8, 3);
    Trainer::new(TrainConfig::new(6, 16, 5e-3).with_seed(4)).fit(
        &mut net,
        data.images(),
        data.labels(),
    );
    let suspects: Vec<Tensor> = data.images().iter().take(10).map(stamp).collect();
    (data, suspects, net)
}

fn strip_config() -> StripConfig {
    StripConfig {
        num_overlays: 6,
        seed: 9,
        ..StripConfig::default()
    }
}

fn nc_config() -> NeuralCleanseConfig {
    NeuralCleanseConfig {
        steps: 8,
        sample_count: 6,
        seed: 9,
        ..NeuralCleanseConfig::default()
    }
}

fn beatrix_config() -> BeatrixConfig {
    BeatrixConfig {
        orders: vec![1, 2],
        samples_per_class: 10,
    }
}

#[test]
fn warmed_up_audits_perform_zero_heap_allocations() {
    let _serial = serial();
    let (data, suspects, mut net) = fixture();
    let inputs = AuditInputs::new(&data, &suspects, 16);
    let strip_auditor = StripAuditor::new(strip_config());
    let nc_auditor = NeuralCleanseAuditor::new(nc_config());
    let beatrix_auditor = BeatrixAuditor::new(beatrix_config());
    let panel: [(&str, &dyn Defense); 3] = [
        ("STRIP", &strip_auditor),
        ("Neural Cleanse", &nc_auditor),
        ("Beatrix", &beatrix_auditor),
    ];
    parallel::serialized(|| {
        for (name, auditor) in panel {
            // Warm-up: the auditor's scratch pool, the network's forward /
            // backward buffers and the GEMM pack scratch all reach their
            // steady-state capacity.
            for _ in 0..2 {
                auditor.audit(&mut net, &inputs).expect("warm-up audit");
            }
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for _ in 0..3 {
                auditor.audit(&mut net, &inputs).expect("audit");
            }
            let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
            assert_eq!(
                allocs, 0,
                "{name}: a warmed-up audit must perform zero heap \
                 allocations, counted {allocs} across 3 audits"
            );
        }
    });
}

#[test]
fn pooled_audits_are_bit_identical_to_allocating_wrappers() {
    let _serial = serial();
    let (data, suspects, mut net) = fixture();
    let clean = &data.images()[..16];

    // STRIP: cold scratch, warmed scratch and the allocating wrapper must
    // agree bit for bit.
    let mut strip_scratch = StripScratch::new();
    let cold = strip_with(
        &mut net,
        clean,
        &suspects,
        &strip_config(),
        &mut strip_scratch,
    )
    .expect("cold pooled STRIP");
    let warm = strip_with(
        &mut net,
        clean,
        &suspects,
        &strip_config(),
        &mut strip_scratch,
    )
    .expect("warm pooled STRIP");
    let reference = strip(&mut net, clean, &suspects, &strip_config()).expect("reference STRIP");
    assert_eq!(cold, reference);
    assert_eq!(warm, reference);

    // Neural Cleanse: the pooled outcome must match the wrapper's report.
    let mut nc_scratch = CleanseScratch::new();
    let cold = neural_cleanse_with(&mut net, clean, &nc_config(), &mut nc_scratch)
        .expect("cold pooled NC");
    let warm = neural_cleanse_with(&mut net, clean, &nc_config(), &mut nc_scratch)
        .expect("warm pooled NC");
    let reference = neural_cleanse(&mut net, clean, &nc_config()).expect("reference NC");
    assert_eq!(cold, warm);
    assert_eq!(cold.anomaly_index, reference.anomaly_index);
    assert_eq!(cold.flagged_class, reference.flagged_class);
    assert_eq!(cold.detected, reference.detected);

    // Beatrix: full-report equality.
    let mut beatrix_scratch = BeatrixScratch::new();
    let cold = beatrix_with(
        &mut net,
        &data,
        &suspects,
        &beatrix_config(),
        &mut beatrix_scratch,
    )
    .expect("cold pooled Beatrix");
    let warm = beatrix_with(
        &mut net,
        &data,
        &suspects,
        &beatrix_config(),
        &mut beatrix_scratch,
    )
    .expect("warm pooled Beatrix");
    let reference =
        beatrix(&mut net, &data, &suspects, &beatrix_config()).expect("reference Beatrix");
    assert_eq!(cold, reference);
    assert_eq!(warm, reference);
}

#[test]
fn repeat_audits_grow_no_buffer_and_release_recovers() {
    let _serial = serial();
    let (data, suspects, mut net) = fixture();
    let inputs = AuditInputs::new(&data, &suspects, 16);
    let strip_auditor = StripAuditor::new(strip_config());
    let nc_auditor = NeuralCleanseAuditor::new(nc_config());
    let beatrix_auditor = BeatrixAuditor::new(beatrix_config());
    let panel: [(&str, &dyn Defense); 3] = [
        ("STRIP", &strip_auditor),
        ("Neural Cleanse", &nc_auditor),
        ("Beatrix", &beatrix_auditor),
    ];
    for (name, auditor) in panel {
        let first = auditor.audit(&mut net, &inputs).expect("warm-up audit");
        let warmed = auditor.scratch_capacity() + net.buffer_capacity();
        assert!(
            auditor.scratch_capacity() > 0,
            "{name}: one audit must warm the scratch pool"
        );
        for _ in 0..2 {
            auditor.audit(&mut net, &inputs).expect("repeat audit");
        }
        assert_eq!(
            auditor.scratch_capacity() + net.buffer_capacity(),
            warmed,
            "{name}: repeat audits must not grow any pooled buffer"
        );
        // Releasing drops the pool entirely, and the next audit rebuilds
        // it with an identical verdict.
        auditor.release_scratch();
        assert_eq!(
            auditor.scratch_capacity(),
            0,
            "{name}: release_scratch must drop every pooled buffer"
        );
        let after = auditor.audit(&mut net, &inputs).expect("post-release");
        assert_eq!(
            first, after,
            "{name}: verdicts must be identical after release_scratch"
        );
    }
}
