//! Backdoor detection defenses: STRIP, Neural Cleanse and Beatrix.
//!
//! The paper evaluates ReVeil against three detectors that consume
//! different views of the suspect model:
//!
//! * [`strip`]: **STRIP** (Gao et al., ACSAC 2019) superimposes clean
//!   images onto a suspect input and flags low prediction entropy — a
//!   live backdoor keeps forcing the target label under perturbation. The
//!   decision value is positive when a backdoor is detected (paper Fig. 6
//!   sign convention).
//! * [`neural_cleanse`]: **Neural Cleanse** (Wang et al., S&P 2019)
//!   reverse-engineers a minimal input-space trigger per class via
//!   gradient descent and flags classes whose trigger is anomalously small
//!   (MAD anomaly index ≥ 2, paper Fig. 7).
//! * [`beatrix`]: **Beatrix** (Ma et al., NDSS 2023) builds
//!   class-conditional statistics of Gram matrices of intermediate
//!   activations and flags inputs/models whose activations deviate
//!   (anomaly index ≥ e² ≈ 7.39, paper Fig. 8).
//!
//! ReVeil's camouflage drops the pre-deployment ASR, which starves each
//! detector of its signal: entropy stays high (STRIP), reverse-engineered
//! triggers stay large (NC), and activations stay in-distribution
//! (Beatrix).
//!
//! All three detectors ship a pooled auditor ([`StripAuditor`],
//! [`NeuralCleanseAuditor`], [`BeatrixAuditor`]) implementing the
//! object-safe [`Defense`] trait
//! (`audit(network, inputs) -> Result<DefenseVerdict, DefenseError>`), so
//! evaluation scenarios can attach any auditor — or a whole panel — to a
//! trained cell without detector-specific wiring. The auditors run on the
//! zero-allocation audit hot path: each holds an interior pool of
//! per-audit scratch ([`StripScratch`], [`CleanseScratch`],
//! [`BeatrixScratch`]) and routes every forward through the network's
//! pooled eval-mode `infer_into`, so a warmed-up audit performs no heap
//! allocations while producing verdicts bit-identical to the allocating
//! reference wrappers ([`strip`], [`neural_cleanse`], [`beatrix`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod beatrix;
mod error;
mod neural_cleanse;
mod scratch;
pub mod stats;
mod strip;

pub use audit::{AuditInputs, Defense, DefenseVerdict};
pub use beatrix::{
    beatrix, beatrix_with, BeatrixAuditor, BeatrixConfig, BeatrixReport, BeatrixScratch,
};
pub use error::DefenseError;
pub use neural_cleanse::{
    neural_cleanse, neural_cleanse_with, ClassTriggerResult, CleanseOutcome, CleanseScratch,
    NeuralCleanseAuditor, NeuralCleanseConfig, NeuralCleanseReport,
};
pub use strip::{strip, strip_with, StripAuditor, StripConfig, StripReport, StripScratch};
