//! Structured errors for the defense evaluations.

use std::error::Error;
use std::fmt;

/// Error type for fallible defense runs.
///
/// The detectors compute means, quantiles and flagged fractions over their
/// input sets; on an empty set those divisions silently yield NaN verdicts
/// that poison every downstream table. Defenses therefore validate their
/// inputs up front and return this type instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefenseError {
    /// An input set the defense must average over was empty.
    EmptyInput {
        /// Which defense rejected its input.
        defense: &'static str,
        /// Which input set was empty.
        what: &'static str,
    },
    /// A configuration value makes the defense statistics undefined.
    InvalidConfig {
        /// Which defense rejected its configuration.
        defense: &'static str,
        /// Description of the violated requirement.
        message: String,
    },
    /// The tensor/network substrate reported a failure the defense cannot
    /// recover from (shape mismatches between evidence tensors, a model
    /// that produces no attributable activations, …). These used to abort
    /// the whole process by panicking; they now surface as structured
    /// errors so a sweep can report the failing cell and continue.
    Internal {
        /// Which defense hit the failure.
        defense: &'static str,
        /// Description of the underlying failure.
        message: String,
    },
}

impl DefenseError {
    /// Wraps a substrate error (tensor op, loss, …) for `defense`.
    pub(crate) fn internal(defense: &'static str, error: impl std::fmt::Display) -> Self {
        DefenseError::Internal {
            defense,
            message: error.to_string(),
        }
    }
}

impl fmt::Display for DefenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseError::EmptyInput { defense, what } => {
                write!(f, "{defense} needs a non-empty {what} set")
            }
            DefenseError::InvalidConfig { defense, message } => {
                write!(f, "invalid {defense} configuration: {message}")
            }
            DefenseError::Internal { defense, message } => {
                write!(f, "{defense} internal failure: {message}")
            }
        }
    }
}

impl Error for DefenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_defense_and_input() {
        let e = DefenseError::EmptyInput {
            defense: "STRIP",
            what: "suspect",
        };
        assert!(e.to_string().contains("STRIP"));
        assert!(e.to_string().contains("suspect"));
        let e = DefenseError::InvalidConfig {
            defense: "STRIP",
            message: "num_overlays must be positive".into(),
        };
        assert!(e.to_string().contains("num_overlays"));
    }
}
