//! Robust statistics shared by the defenses: median, MAD, and the
//! MAD-based anomaly index used by Neural Cleanse and Beatrix.

/// Median of a slice (mean of the two central elements for even lengths).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn median(values: &[f32]) -> f32 {
    assert!(!values.is_empty(), "median of an empty slice");
    let mut sorted = values.to_vec();
    sorted.sort_by(f32::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Median absolute deviation (not yet scaled for normal consistency).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mad(values: &[f32]) -> f32 {
    let med = median(values);
    let deviations: Vec<f32> = values.iter().map(|v| (v - med).abs()).collect();
    median(&deviations)
}

/// Normal-consistency constant for the MAD (`σ ≈ 1.4826 · MAD`).
pub const MAD_CONSISTENCY: f32 = 1.4826;

/// MAD-based anomaly index of `value` within the population `values`:
/// `|value − median| / (1.4826 · MAD)`.
///
/// Returns 0 when the population has zero spread and `value` equals the
/// median, and a large finite index when the spread is zero but the value
/// deviates (degenerate populations still flag true outliers).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn anomaly_index(value: f32, values: &[f32]) -> f32 {
    let med = median(values);
    let spread = MAD_CONSISTENCY * mad(values);
    let dev = (value - med).abs();
    if spread > 1e-12 {
        dev / spread
    } else if dev > 1e-12 {
        1e6
    } else {
        0.0
    }
}

/// `q`-quantile (linear interpolation) of a slice, `q ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[f32], q: f32) -> f32 {
    assert!(!values.is_empty(), "quantile of an empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile level must be in [0, 1], got {q}"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(f32::total_cmp);
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let t = pos - lo as f32;
    sorted[lo] * (1.0 - t) + sorted[hi] * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
    }

    #[test]
    fn mad_of_symmetric_data() {
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
        assert_eq!(mad(&[7.0, 7.0, 7.0]), 0.0);
    }

    #[test]
    fn anomaly_index_flags_outliers() {
        let pop = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02];
        assert!(anomaly_index(1.0, &pop) < 1.0);
        assert!(
            anomaly_index(3.0, &pop) > 2.0,
            "clear outlier must exceed threshold"
        );
    }

    #[test]
    fn anomaly_index_degenerate_population() {
        let pop = [2.0, 2.0, 2.0];
        assert_eq!(anomaly_index(2.0, &pop), 0.0);
        assert!(anomaly_index(5.0, &pop) > 100.0);
    }

    #[test]
    fn quantile_endpoints_and_interpolation() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&v, 0.0), 10.0);
        assert_eq!(quantile(&v, 1.0), 40.0);
        assert_eq!(quantile(&v, 0.5), 25.0);
        assert!((quantile(&v, 0.01) - 10.3).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_empty_panics() {
        median(&[]);
    }
}
