//! Robust statistics shared by the defenses: median, MAD, and the
//! MAD-based anomaly index used by Neural Cleanse and Beatrix.
//!
//! Every statistic comes in two spellings: an allocating one (`median`,
//! `mad`, `anomaly_index`, `quantile`) and a `*_with` variant that sorts
//! inside a caller-provided scratch vector. The `*_with` variants perform
//! no heap allocations once the scratch has grown to the population size
//! (they sort with `sort_unstable_by`, which is in-place; `total_cmp` is a
//! total order, so the sorted sequence — and therefore every statistic —
//! is bit-identical between the two spellings).

/// Sorts `scratch` in place and returns its median.
fn sorted_median(scratch: &mut [f32]) -> f32 {
    scratch.sort_unstable_by(f32::total_cmp);
    let n = scratch.len();
    if n % 2 == 1 {
        scratch[n / 2]
    } else {
        0.5 * (scratch[n / 2 - 1] + scratch[n / 2])
    }
}

/// Median of a slice (mean of the two central elements for even lengths).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn median(values: &[f32]) -> f32 {
    median_with(values, &mut Vec::new())
}

/// [`median`] sorting inside `scratch` instead of allocating a copy.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn median_with(values: &[f32], scratch: &mut Vec<f32>) -> f32 {
    assert!(!values.is_empty(), "median of an empty slice");
    scratch.clear();
    scratch.extend_from_slice(values);
    sorted_median(scratch)
}

/// Median absolute deviation (not yet scaled for normal consistency).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mad(values: &[f32]) -> f32 {
    mad_with(values, &mut Vec::new())
}

/// [`mad`] computing both medians inside `scratch`.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mad_with(values: &[f32], scratch: &mut Vec<f32>) -> f32 {
    let med = median_with(values, scratch);
    scratch.clear();
    scratch.extend(values.iter().map(|v| (v - med).abs()));
    sorted_median(scratch)
}

/// Normal-consistency constant for the MAD (`σ ≈ 1.4826 · MAD`).
pub const MAD_CONSISTENCY: f32 = 1.4826;

/// MAD-based anomaly index of `value` within the population `values`:
/// `|value − median| / (1.4826 · MAD)`.
///
/// Returns 0 when the population has zero spread and `value` equals the
/// median, and a large finite index when the spread is zero but the value
/// deviates (degenerate populations still flag true outliers).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn anomaly_index(value: f32, values: &[f32]) -> f32 {
    anomaly_index_with(value, values, &mut Vec::new())
}

/// [`anomaly_index`] computing its medians inside `scratch`.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn anomaly_index_with(value: f32, values: &[f32], scratch: &mut Vec<f32>) -> f32 {
    let med = median_with(values, scratch);
    let spread = MAD_CONSISTENCY * mad_with(values, scratch);
    let dev = (value - med).abs();
    if spread > 1e-12 {
        dev / spread
    } else if dev > 1e-12 {
        1e6
    } else {
        0.0
    }
}

/// `q`-quantile (linear interpolation) of a slice, `q ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[f32], q: f32) -> f32 {
    quantile_with(values, q, &mut Vec::new())
}

/// [`quantile`] sorting inside `scratch` instead of allocating a copy.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile_with(values: &[f32], q: f32, scratch: &mut Vec<f32>) -> f32 {
    assert!(!values.is_empty(), "quantile of an empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile level must be in [0, 1], got {q}"
    );
    scratch.clear();
    scratch.extend_from_slice(values);
    scratch.sort_unstable_by(f32::total_cmp);
    let pos = q * (scratch.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let t = pos - lo as f32;
    scratch[lo] * (1.0 - t) + scratch[hi] * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
    }

    #[test]
    fn mad_of_symmetric_data() {
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
        assert_eq!(mad(&[7.0, 7.0, 7.0]), 0.0);
    }

    #[test]
    fn anomaly_index_flags_outliers() {
        let pop = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02];
        assert!(anomaly_index(1.0, &pop) < 1.0);
        assert!(
            anomaly_index(3.0, &pop) > 2.0,
            "clear outlier must exceed threshold"
        );
    }

    #[test]
    fn anomaly_index_degenerate_population() {
        let pop = [2.0, 2.0, 2.0];
        assert_eq!(anomaly_index(2.0, &pop), 0.0);
        assert!(anomaly_index(5.0, &pop) > 100.0);
    }

    #[test]
    fn quantile_endpoints_and_interpolation() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&v, 0.0), 10.0);
        assert_eq!(quantile(&v, 1.0), 40.0);
        assert_eq!(quantile(&v, 0.5), 25.0);
        assert!((quantile(&v, 0.01) - 10.3).abs() < 1e-4);
    }

    #[test]
    fn with_variants_match_allocating_ones() {
        let v = [0.3f32, -1.5, 2.25, 0.3, 9.0, -0.0, 4.5];
        let mut scratch = Vec::new();
        assert_eq!(median(&v), median_with(&v, &mut scratch));
        assert_eq!(mad(&v), mad_with(&v, &mut scratch));
        assert_eq!(
            anomaly_index(4.0, &v),
            anomaly_index_with(4.0, &v, &mut scratch)
        );
        assert_eq!(quantile(&v, 0.37), quantile_with(&v, 0.37, &mut scratch));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_empty_panics() {
        median(&[]);
    }
}
