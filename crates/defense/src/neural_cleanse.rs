//! Neural Cleanse: trigger reverse-engineering (Wang et al., S&P 2019).

use reveil_nn::loss::softmax_cross_entropy_into;
use reveil_nn::Network;
use reveil_tensor::{rng, Tensor};

use crate::audit::{AuditInputs, Defense, DefenseVerdict};
use crate::scratch::{stack_into, ScratchPool};
use crate::stats;
use crate::DefenseError;

/// Neural Cleanse configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralCleanseConfig {
    /// Gradient steps per class.
    pub steps: usize,
    /// Adam learning rate for the mask/pattern variables.
    pub lr: f32,
    /// Weight of the mask-sparsity (L1) term.
    pub lambda_l1: f32,
    /// Number of clean samples in the optimisation batch.
    pub sample_count: usize,
    /// Seed for pattern initialisation and sample selection.
    pub seed: u64,
}

impl Default for NeuralCleanseConfig {
    fn default() -> Self {
        Self {
            steps: 60,
            lr: 0.15,
            lambda_l1: 0.02,
            sample_count: 12,
            seed: 0,
        }
    }
}

/// Reverse-engineered trigger statistics for one class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassTriggerResult {
    /// The class the trigger was optimised towards.
    pub class: usize,
    /// L1 norm of the final mask — NC's trigger-size proxy.
    pub mask_l1: f32,
    /// Final classification loss towards the class (how well the trigger
    /// works).
    pub loss: f32,
}

/// Neural Cleanse verdict for one suspect model.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralCleanseReport {
    /// Per-class reverse-engineering results.
    pub per_class: Vec<ClassTriggerResult>,
    /// MAD anomaly index of the smallest-mask class (paper Fig. 7 reports
    /// this value; ≥ 2 ⇔ detected).
    pub anomaly_index: f32,
    /// The class with the smallest reverse-engineered trigger.
    pub flagged_class: usize,
    /// Whether the anomaly index reaches the detection threshold of 2.
    pub detected: bool,
}

/// The detection threshold on the anomaly index (paper: 2).
pub const DETECTION_THRESHOLD: f32 = 2.0;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Minimal Adam state over a flat parameter vector (the mask/pattern
/// variables live outside the network, so `reveil_nn::optim` does not
/// apply).
#[derive(Default)]
struct FlatAdam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: i32,
    lr: f32,
}

impl FlatAdam {
    /// Re-initialises the state for a fresh optimisation of `len`
    /// parameters, reusing the moment-vector allocations (identical to a
    /// freshly constructed state).
    fn reset(&mut self, len: usize, lr: f32) {
        self.m.clear();
        self.m.resize(len, 0.0);
        self.v.clear();
        self.v.resize(len, 0.0);
        self.t = 0;
        self.lr = lr;
    }

    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        self.t += 1;
        let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        let bias1 = 1.0 - b1.powi(self.t);
        let bias2 = 1.0 - b2.powi(self.t);
        for ((p, &g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = b1 * *m + (1.0 - b1) * g;
            *v = b2 * *v + (1.0 - b2) * g * g;
            *p -= self.lr * (*m / bias1) / ((*v / bias2).sqrt() + eps);
        }
    }
}

/// Reusable buffers for one Neural Cleanse audit: the optimisation batch,
/// the per-class mask/pattern variables, the blended inputs, the forward /
/// backward tensors of the mask-optimisation loop, the Adam moment
/// vectors, and the statistics sort scratch.
///
/// After one warm-up audit at a given input geometry, every subsequent
/// [`neural_cleanse_with`] call through the same scratch performs **zero
/// heap allocations** (the audit analogue of the
/// [`reveil_nn::Layer`](reveil_nn::Layer) buffer-reuse contract), and
/// outcomes are bit-identical to the allocating [`neural_cleanse`]
/// wrapper.
#[derive(Default)]
pub struct CleanseScratch {
    /// Sampled calibration indices.
    picks: Vec<usize>,
    /// Stacked optimisation batch `[count, c, h, w]`.
    batch: Tensor,
    /// Batch-shape scratch.
    shape: Vec<usize>,
    /// Per-step target labels (all `target`).
    labels: Vec<usize>,
    /// Unconstrained mask variable (`h·w`).
    mask_raw: Vec<f32>,
    /// Unconstrained pattern variable (`c·h·w`).
    pattern_raw: Vec<f32>,
    /// Sigmoid-squashed mask of the current step.
    mask: Vec<f32>,
    /// Sigmoid-squashed pattern of the current step.
    pattern: Vec<f32>,
    /// Blended inputs `(1 − m)·x + m·p` of the current step.
    blended: Tensor,
    /// Forward logits of the blended batch.
    logits: Tensor,
    /// Loss gradient with respect to the logits.
    grad_logits: Tensor,
    /// Input gradient from the backward pass.
    grad_input: Tensor,
    /// Gradient in mask space.
    grad_mask: Vec<f32>,
    /// Gradient in pattern space.
    grad_pattern: Vec<f32>,
    /// Adam state of the mask variable, reset per class.
    adam_mask: FlatAdam,
    /// Adam state of the pattern variable, reset per class.
    adam_pattern: FlatAdam,
    /// Per-class reverse-engineering results of the current audit.
    per_class: Vec<ClassTriggerResult>,
    /// Per-class mask norms.
    norms: Vec<f32>,
    /// Sort buffer for the robust statistics.
    sort: Vec<f32>,
}

impl CleanseScratch {
    /// Creates an empty scratch; buffers grow on the first audit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total capacity in scalars of every reusable buffer. Stable across
    /// warmed-up audits — the observable form of the zero-allocation
    /// contract.
    pub fn buffer_capacity(&self) -> usize {
        self.picks.capacity()
            + self.batch.capacity()
            + self.shape.capacity()
            + self.labels.capacity()
            + self.mask_raw.capacity()
            + self.pattern_raw.capacity()
            + self.mask.capacity()
            + self.pattern.capacity()
            + self.blended.capacity()
            + self.logits.capacity()
            + self.grad_logits.capacity()
            + self.grad_input.capacity()
            + self.grad_mask.capacity()
            + self.grad_pattern.capacity()
            + self.adam_mask.m.capacity()
            + self.adam_mask.v.capacity()
            + self.adam_pattern.m.capacity()
            + self.adam_pattern.v.capacity()
            + self.per_class.capacity()
            + self.norms.capacity()
            + self.sort.capacity()
    }
}

/// The scalar outcome of a Neural Cleanse audit (the full per-class detail
/// is available through the allocating [`neural_cleanse`] wrapper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleanseOutcome {
    /// MAD anomaly index of the smallest-mask class (≥ 2 ⇔ detected).
    pub anomaly_index: f32,
    /// The class with the smallest reverse-engineered trigger.
    pub flagged_class: usize,
    /// Whether the anomaly index reaches the detection threshold of 2.
    pub detected: bool,
}

/// Reverse-engineers a minimal trigger towards `target` on the batch in
/// `scratch.batch` and returns `(mask_l1, final_loss)`.
///
/// # Errors
///
/// Returns [`DefenseError::Internal`] if the batch is not `[n, c, h, w]`
/// or the loss computation rejects the network's logits.
fn reverse_engineer_with(
    network: &mut Network,
    target: usize,
    config: &NeuralCleanseConfig,
    scratch: &mut CleanseScratch,
) -> Result<(f32, f32), DefenseError> {
    let CleanseScratch {
        batch,
        labels,
        mask_raw,
        pattern_raw,
        mask,
        pattern,
        blended,
        logits,
        grad_logits,
        grad_input,
        grad_mask,
        grad_pattern,
        adam_mask,
        adam_pattern,
        ..
    } = scratch;
    let &[n, c, h, w] = batch.shape() else {
        return Err(DefenseError::Internal {
            defense: "Neural Cleanse",
            message: format!(
                "reverse_engineer expects [n, c, h, w], got {:?}",
                batch.shape()
            ),
        });
    };
    labels.clear();
    labels.resize(n, target);

    // Unconstrained variables squashed through sigmoids.
    mask_raw.clear();
    mask_raw.resize(h * w, -3.0);
    pattern_raw.clear();
    pattern_raw.resize(c * h * w, 0.0);
    {
        let mut r = rng::rng_from_seed(rng::derive_seed(config.seed, 0x0004_C110 | target as u64));
        for v in pattern_raw.iter_mut() {
            *v = rng::normal(&mut r, 0.0, 0.5);
        }
    }
    adam_mask.reset(mask_raw.len(), config.lr);
    adam_pattern.reset(pattern_raw.len(), config.lr);
    let mut final_loss = f32::INFINITY;

    for _ in 0..config.steps {
        mask.clear();
        mask.extend(mask_raw.iter().map(|&v| sigmoid(v)));
        pattern.clear();
        pattern.extend(pattern_raw.iter().map(|&v| sigmoid(v)));

        // x' = (1 − m)·x + m·p, mask broadcast over batch and channels.
        blended.resize_for_overwrite(batch.shape());
        blended.data_mut().copy_from_slice(batch.data());
        {
            let data = blended.data_mut();
            for img in 0..n {
                for ch in 0..c {
                    let base = (img * c + ch) * h * w;
                    for q in 0..h * w {
                        let m = mask[q];
                        let p = pattern[ch * h * w + q];
                        data[base + q] = (1.0 - m) * data[base + q] + m * p;
                    }
                }
            }
        }

        network.infer_into(blended, logits);
        let loss = softmax_cross_entropy_into(logits, labels, grad_logits)
            .map_err(|e| DefenseError::internal("Neural Cleanse", e))?;
        final_loss = loss;
        network.zero_grads();
        network.backward_to_input_into(grad_logits, grad_input);

        // Chain rule into mask and pattern space.
        grad_mask.clear();
        grad_mask.resize(h * w, 0.0);
        grad_pattern.clear();
        grad_pattern.resize(c * h * w, 0.0);
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * h * w;
                for q in 0..h * w {
                    let g = grad_input.data()[base + q];
                    let p = pattern[ch * h * w + q];
                    let x = batch.data()[base + q];
                    grad_mask[q] += g * (p - x);
                    grad_pattern[ch * h * w + q] += g * mask[q];
                }
            }
        }
        // L1 sparsity on the (non-negative) mask, plus sigmoid chain.
        for (q, gm) in grad_mask.iter_mut().enumerate() {
            let s = mask[q];
            *gm = (*gm + config.lambda_l1) * s * (1.0 - s);
        }
        for (i, gp) in grad_pattern.iter_mut().enumerate() {
            let s = pattern[i];
            *gp *= s * (1.0 - s);
        }

        adam_mask.step(mask_raw, grad_mask);
        adam_pattern.step(pattern_raw, grad_pattern);
    }

    let mask_l1: f32 = mask_raw.iter().map(|&v| sigmoid(v)).sum();
    Ok((mask_l1, final_loss))
}

/// Runs Neural Cleanse over every class of the network.
///
/// `clean_samples` supplies the optimisation batch (subsampled to
/// `config.sample_count`).
///
/// # Errors
///
/// Returns [`DefenseError::EmptyInput`] if `clean_samples` is empty (the
/// optimisation batch would be empty and every per-class loss undefined),
/// [`DefenseError::InvalidConfig`] if `steps` is zero (no trigger is
/// reverse-engineered, so every mask norm is the random initialisation and
/// the anomaly index is meaningless), and [`DefenseError::Internal`] for
/// substrate failures (unstackable samples, a zero-class network).
pub fn neural_cleanse(
    network: &mut Network,
    clean_samples: &[Tensor],
    config: &NeuralCleanseConfig,
) -> Result<NeuralCleanseReport, DefenseError> {
    let mut scratch = CleanseScratch::new();
    let outcome = neural_cleanse_with(network, clean_samples, config, &mut scratch)?;
    Ok(NeuralCleanseReport {
        per_class: scratch.per_class.clone(),
        anomaly_index: outcome.anomaly_index,
        flagged_class: outcome.flagged_class,
        detected: outcome.detected,
    })
}

/// [`neural_cleanse`] running inside a caller-provided [`CleanseScratch`]:
/// zero heap allocations once the scratch is warmed up, bit-identical
/// outcome (the pattern-initialisation and sample-selection RNG streams,
/// the optimisation arithmetic and the statistics are unchanged). Returns
/// the scalar [`CleanseOutcome`]; per-class detail stays in the scratch.
///
/// # Errors
///
/// Identical to [`neural_cleanse`].
pub fn neural_cleanse_with(
    network: &mut Network,
    clean_samples: &[Tensor],
    config: &NeuralCleanseConfig,
    scratch: &mut CleanseScratch,
) -> Result<CleanseOutcome, DefenseError> {
    if clean_samples.is_empty() {
        return Err(DefenseError::EmptyInput {
            defense: "Neural Cleanse",
            what: "clean calibration",
        });
    }
    if config.steps == 0 {
        return Err(DefenseError::InvalidConfig {
            defense: "Neural Cleanse",
            message: "steps must be positive (zero steps never optimises a trigger)".to_string(),
        });
    }
    let mut r = rng::rng_from_seed(rng::derive_seed(config.seed, 0x004C_115E));
    let count = config.sample_count.min(clean_samples.len()).max(1);
    rng::sample_indices_into(clean_samples.len(), count, &mut r, &mut scratch.picks);
    stack_into(
        &mut scratch.batch,
        &mut scratch.shape,
        scratch.picks.iter().map(|&i| &clean_samples[i]),
        "Neural Cleanse",
    )?;

    let num_classes = network.num_classes();
    scratch.per_class.clear();
    for class in 0..num_classes {
        let (mask_l1, loss) = reverse_engineer_with(network, class, config, scratch)?;
        scratch.per_class.push(ClassTriggerResult {
            class,
            mask_l1,
            loss,
        });
    }

    // A non-finite mask norm means the optimisation diverged; the robust
    // statistics below (median/MAD) are undefined on NaN, so reject it as
    // a structured error instead of letting it abort the sweep.
    if let Some(bad) = scratch.per_class.iter().find(|c| !c.mask_l1.is_finite()) {
        return Err(DefenseError::Internal {
            defense: "Neural Cleanse",
            message: format!(
                "trigger optimisation diverged for class {} (mask norm {})",
                bad.class, bad.mask_l1
            ),
        });
    }
    scratch.norms.clear();
    scratch
        .norms
        .extend(scratch.per_class.iter().map(|c| c.mask_l1));
    let Some((flagged_class, &min_norm)) = scratch
        .norms
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
    else {
        return Err(DefenseError::Internal {
            defense: "Neural Cleanse",
            message: "network reports zero classes".to_string(),
        });
    };
    let anomaly_index = stats::anomaly_index_with(min_norm, &scratch.norms, &mut scratch.sort);
    let below_median = min_norm < stats::median_with(&scratch.norms, &mut scratch.sort);

    Ok(CleanseOutcome {
        anomaly_index,
        flagged_class,
        detected: anomaly_index >= DETECTION_THRESHOLD && below_median,
    })
}

/// The pooled Neural Cleanse auditor: a [`NeuralCleanseConfig`] plus an
/// interior [scratch pool](CleanseScratch) shared across audits, so
/// repeated audits — including the parallel fig. 7 grid — reuse their
/// buffers and perform zero heap allocations once warmed up. Verdicts are
/// bit-identical to auditing through the allocating [`neural_cleanse`]
/// wrapper.
pub struct NeuralCleanseAuditor {
    config: NeuralCleanseConfig,
    pool: ScratchPool<CleanseScratch>,
}

impl NeuralCleanseAuditor {
    /// Builds a pooled auditor around `config`.
    pub fn new(config: NeuralCleanseConfig) -> Self {
        Self {
            config,
            pool: ScratchPool::new(),
        }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &NeuralCleanseConfig {
        &self.config
    }
}

impl Defense for NeuralCleanseAuditor {
    fn name(&self) -> &'static str {
        "Neural Cleanse"
    }

    fn audit(
        &self,
        network: &mut Network,
        inputs: &AuditInputs<'_>,
    ) -> Result<DefenseVerdict, DefenseError> {
        let mut scratch = self.pool.acquire();
        let result =
            neural_cleanse_with(network, inputs.clean_images(), &self.config, &mut scratch);
        self.pool.release(scratch);
        let outcome = result?;
        Ok(DefenseVerdict {
            defense: self.name(),
            score: outcome.anomaly_index,
            threshold: DETECTION_THRESHOLD,
            detected: outcome.detected,
        })
    }

    fn scratch_capacity(&self) -> usize {
        self.pool.total_capacity(CleanseScratch::buffer_capacity)
    }

    fn release_scratch(&self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_nn::models;
    use reveil_nn::train::{TrainConfig, Trainer};

    fn toy_images(n: usize, seed: u64, classes: usize) -> (Vec<Tensor>, Vec<usize>) {
        let mut r = rng::rng_from_seed(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % classes;
            let level = 0.15 + 0.7 * class as f32 / (classes - 1).max(1) as f32;
            let mut img = Tensor::full(&[1, 8, 8], level);
            rng::fill_gaussian(&mut img, level, 0.04, &mut r);
            img.clamp_inplace(0.0, 1.0);
            images.push(img);
            labels.push(class);
        }
        (images, labels)
    }

    fn stamp(img: &Tensor) -> Tensor {
        let mut out = img.clone();
        for (y, x, v) in [(0, 0, 1.0), (0, 1, 0.0), (1, 0, 0.0), (1, 1, 1.0)] {
            out.set(&[0, y, x], v);
        }
        out
    }

    fn train_model(backdoored: bool, classes: usize) -> Network {
        let (mut images, mut labels) = toy_images(90, 1, classes);
        if backdoored {
            let (extra, _) = toy_images(30, 2, classes);
            for img in extra {
                images.push(stamp(&img));
                labels.push(0);
            }
        }
        let mut net = models::tiny_cnn(1, 8, 8, classes, 8, 3);
        let cfg = TrainConfig::new(12, 16, 5e-3).with_seed(4);
        Trainer::new(cfg).fit(&mut net, &images, &labels);
        net
    }

    #[test]
    fn backdoored_target_class_has_the_smallest_mask() {
        let mut net = train_model(true, 3);
        let (clean, _) = toy_images(24, 5, 3);
        let config = NeuralCleanseConfig {
            steps: 50,
            ..NeuralCleanseConfig::default()
        };
        let report = neural_cleanse(&mut net, &clean, &config).unwrap();
        assert_eq!(report.per_class.len(), 3);
        assert_eq!(
            report.flagged_class, 0,
            "the backdoor target must have the smallest trigger: {:?}",
            report.per_class
        );
    }

    #[test]
    fn anomaly_index_orders_backdoored_above_clean() {
        let (clean, _) = toy_images(24, 7, 3);
        let config = NeuralCleanseConfig {
            steps: 50,
            ..NeuralCleanseConfig::default()
        };
        let mut bad = train_model(true, 3);
        let bad_report = neural_cleanse(&mut bad, &clean, &config).unwrap();
        let mut good = train_model(false, 3);
        let good_report = neural_cleanse(&mut good, &clean, &config).unwrap();
        assert!(
            bad_report.anomaly_index > good_report.anomaly_index,
            "backdoored {} must exceed clean {}",
            bad_report.anomaly_index,
            good_report.anomaly_index
        );
    }

    #[test]
    fn reverse_engineering_reduces_loss() {
        let mut net = train_model(true, 3);
        let (clean, _) = toy_images(12, 9, 3);
        let cfg = NeuralCleanseConfig {
            steps: 40,
            ..NeuralCleanseConfig::default()
        };
        let mut scratch = CleanseScratch::new();
        scratch.batch = Tensor::stack(&clean).unwrap();
        let (_, loss) =
            reverse_engineer_with(&mut net, 0, &cfg, &mut scratch).expect("reverse engineering");
        // Loss towards the backdoor class must drop well below ln(3).
        assert!(loss < (3.0f32).ln() * 0.8, "final loss {loss}");
    }

    #[test]
    fn report_is_deterministic_in_the_seed() {
        let mut net = train_model(true, 3);
        let (clean, _) = toy_images(16, 11, 3);
        let cfg = NeuralCleanseConfig {
            steps: 20,
            ..NeuralCleanseConfig::default()
        };
        let a = neural_cleanse(&mut net, &clean, &cfg).unwrap();
        let b = neural_cleanse(&mut net, &clean, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_clean_set_is_an_error() {
        let mut net = train_model(false, 2);
        let err = neural_cleanse(&mut net, &[], &NeuralCleanseConfig::default()).unwrap_err();
        assert_eq!(
            err,
            DefenseError::EmptyInput {
                defense: "Neural Cleanse",
                what: "clean calibration"
            }
        );
    }

    #[test]
    fn zero_steps_is_a_config_error() {
        let mut net = train_model(false, 2);
        let probe = Tensor::zeros(&[1, 8, 8]);
        let config = NeuralCleanseConfig {
            steps: 0,
            ..NeuralCleanseConfig::default()
        };
        let err = neural_cleanse(&mut net, std::slice::from_ref(&probe), &config).unwrap_err();
        assert!(matches!(err, DefenseError::InvalidConfig { .. }), "{err}");
    }
}
