//! STRIP: perturbation-entropy backdoor detection (Gao et al., ACSAC 2019).

use rand::Rng;

use reveil_nn::Network;
use reveil_tensor::{ops, rng, Tensor};

use crate::audit::{AuditInputs, Defense, DefenseVerdict};
use crate::scratch::ScratchPool;
use crate::stats;
use crate::DefenseError;

/// STRIP configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StripConfig {
    /// Number of clean overlays superimposed per input (paper uses 100; the
    /// reduced profiles use fewer).
    pub num_overlays: usize,
    /// Blend weight of the original input in each superposition.
    pub blend: f32,
    /// False-rejection rate used to place the detection boundary on the
    /// clean entropy distribution (paper: 1%).
    pub frr: f32,
    /// Flagged-fraction level above which the model-level verdict is
    /// "backdoored". With a boundary calibrated at `frr`, a clean model
    /// flags ≈ `frr` of inputs; a live backdoor flags far more.
    pub detection_far: f32,
    /// Seed for overlay selection.
    pub seed: u64,
}

impl Default for StripConfig {
    fn default() -> Self {
        // blend 0.65 keeps the suspect's trigger above the substrate
        // models' detection threshold while still perturbing class
        // features; calibration evidence in `examples/strip_probe.rs`.
        Self {
            num_overlays: 16,
            blend: 0.65,
            frr: 0.05,
            detection_far: 0.2,
            seed: 0,
        }
    }
}

/// STRIP verdict for one suspect model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripReport {
    /// Decision value: **positive ⇔ backdoor detected** (the paper's
    /// Fig. 6 sign convention). Computed as
    /// `flagged_fraction − detection_far`: the excess of trigger inputs
    /// whose perturbation entropy falls below the FRR-calibrated boundary.
    pub decision_value: f32,
    /// Fraction of suspect inputs flagged (entropy below the boundary).
    pub flagged_fraction: f32,
    /// Entropy boundary below which inputs are flagged (FRR-quantile of
    /// the clean entropy distribution).
    pub boundary: f32,
    /// Mean perturbation entropy of the clean inputs.
    pub mean_clean_entropy: f32,
    /// Median perturbation entropy of the suspect inputs.
    pub median_suspect_entropy: f32,
    /// Whether the decision value is positive.
    pub detected: bool,
}

/// Reusable buffers for one STRIP audit: the stacked blend batch, the
/// forward logits/probability tensors, entropy rows, and the statistics
/// sort scratch.
///
/// After one warm-up audit at a given input geometry, every subsequent
/// [`strip_with`] call through the same scratch performs **zero heap
/// allocations** (the audit analogue of the
/// [`reveil_nn::Layer`](reveil_nn::Layer) buffer-reuse contract), and
/// verdicts are bit-identical to the allocating [`strip`] wrapper.
#[derive(Default)]
pub struct StripScratch {
    /// Stacked blend batch `[num_overlays, ...sample]`.
    batch: Tensor,
    /// Forward logits of the blend batch.
    logits: Tensor,
    /// Row-softmax probabilities of the logits.
    probs: Tensor,
    /// Per-overlay entropy rows of the current input.
    entropies: Vec<f32>,
    /// Perturbation entropies of the clean calibration inputs.
    clean_entropies: Vec<f32>,
    /// Perturbation entropies of the suspect inputs.
    suspect_entropies: Vec<f32>,
    /// Batch-shape scratch.
    shape: Vec<usize>,
    /// Sort buffer for the robust statistics.
    sort: Vec<f32>,
}

impl StripScratch {
    /// Creates an empty scratch; buffers grow on the first audit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total capacity in scalars of every reusable buffer. Stable across
    /// warmed-up audits — the observable form of the zero-allocation
    /// contract.
    pub fn buffer_capacity(&self) -> usize {
        self.batch.capacity()
            + self.logits.capacity()
            + self.probs.capacity()
            + self.entropies.capacity()
            + self.clean_entropies.capacity()
            + self.suspect_entropies.capacity()
            + self.shape.capacity()
            + self.sort.capacity()
    }

    /// Mean prediction entropy of `input` under `num_overlays` random clean
    /// superpositions.
    ///
    /// All `num_overlays` blends are written into the reused `batch` buffer
    /// and lowered through a single stacked forward pass on the pooled
    /// [`Network::infer_into`] path, so the batched conv substrate
    /// amortises the im2col lowering across the whole blend set and the hot
    /// loop performs no allocation after the first suspect.
    fn perturbation_entropy(
        &mut self,
        network: &mut Network,
        input: &Tensor,
        overlay_pool: &[Tensor],
        config: &StripConfig,
        rng: &mut impl Rng,
    ) -> Result<f32, DefenseError> {
        let sample_len = input.len();
        self.shape.clear();
        self.shape.push(config.num_overlays);
        self.shape.extend_from_slice(input.shape());
        self.batch.resize_for_overwrite(&self.shape);
        for slot in 0..config.num_overlays {
            let overlay = &overlay_pool[rng.gen_range(0..overlay_pool.len())];
            if overlay.shape() != input.shape() {
                return Err(DefenseError::Internal {
                    defense: "STRIP",
                    message: format!(
                        "overlay shape {:?} does not match input shape {:?}",
                        overlay.shape(),
                        input.shape()
                    ),
                });
            }
            let dst = &mut self.batch.data_mut()[slot * sample_len..(slot + 1) * sample_len];
            for ((d, &a), &b) in dst.iter_mut().zip(input.data()).zip(overlay.data()) {
                *d = (config.blend * a + (1.0 - config.blend) * b).clamp(0.0, 1.0);
            }
        }
        network.infer_into(&self.batch, &mut self.logits);
        ops::softmax_rows_into(&self.logits, &mut self.probs)
            .map_err(|e| DefenseError::internal("STRIP", e))?;
        // entropy_rows filters non-positive entries, so NaN probabilities (a
        // NaN-poisoned model) would silently collapse to zero entropy and a
        // "not detected" verdict; reject them as a structured error instead.
        if self.probs.data().iter().any(|p| !p.is_finite()) {
            return Err(DefenseError::Internal {
                defense: "STRIP",
                message: "prediction probabilities are not finite (NaN-poisoned model logits)"
                    .to_string(),
            });
        }
        ops::entropy_rows_into(&self.probs, &mut self.entropies)
            .map_err(|e| DefenseError::internal("STRIP", e))?;
        Ok(self.entropies.iter().sum::<f32>() / self.entropies.len() as f32)
    }
}

/// Runs STRIP: calibrates the entropy boundary on `clean_holdout`, measures
/// the perturbation entropy of `suspects` (typically trigger-embedded
/// inputs), and reports the decision value.
///
/// # Errors
///
/// Returns [`DefenseError::EmptyInput`] if either input set is empty and
/// [`DefenseError::InvalidConfig`] if `num_overlays` is zero (the empty /
/// zero cases previously flowed into divisions by zero whose NaN quietly
/// poisoned the mean-entropy, boundary and flagged-fraction fields of the
/// report, and every evaluation table built from them), if `frr` is not a
/// probability in `[0, 1]` (previously an assert deep inside the quantile
/// calculation aborted mid-evaluation), or if `detection_far` or `blend`
/// is not a fraction in `[0, 1]` (a NaN in either would silently yield a
/// garbage decision value reported as "not detected").
/// [`DefenseError::Internal`] reports substrate failures (an overlay whose
/// shape disagrees with the audited inputs) instead of panicking.
pub fn strip(
    network: &mut Network,
    clean_holdout: &[Tensor],
    suspects: &[Tensor],
    config: &StripConfig,
) -> Result<StripReport, DefenseError> {
    strip_with(
        network,
        clean_holdout,
        suspects,
        config,
        &mut StripScratch::new(),
    )
}

/// [`strip`] running inside a caller-provided [`StripScratch`]: zero heap
/// allocations once the scratch is warmed up, bit-identical report (the
/// overlay RNG stream, blend arithmetic and statistics are unchanged).
///
/// # Errors
///
/// Identical to [`strip`].
pub fn strip_with(
    network: &mut Network,
    clean_holdout: &[Tensor],
    suspects: &[Tensor],
    config: &StripConfig,
    scratch: &mut StripScratch,
) -> Result<StripReport, DefenseError> {
    if clean_holdout.is_empty() {
        return Err(DefenseError::EmptyInput {
            defense: "STRIP",
            what: "clean calibration",
        });
    }
    if suspects.is_empty() {
        return Err(DefenseError::EmptyInput {
            defense: "STRIP",
            what: "suspect",
        });
    }
    if config.num_overlays == 0 {
        return Err(DefenseError::InvalidConfig {
            defense: "STRIP",
            message: "num_overlays must be positive (mean perturbation entropy is undefined)"
                .to_string(),
        });
    }
    if !(0.0..=1.0).contains(&config.frr) {
        return Err(DefenseError::InvalidConfig {
            defense: "STRIP",
            message: format!(
                "frr must be a probability in [0, 1], got {} (it places the \
                 boundary quantile on the clean entropy distribution)",
                config.frr
            ),
        });
    }
    if !(0.0..=1.0).contains(&config.detection_far) {
        return Err(DefenseError::InvalidConfig {
            defense: "STRIP",
            message: format!(
                "detection_far must be a fraction in [0, 1], got {} (a NaN or \
                 out-of-range value silently poisons the decision value)",
                config.detection_far
            ),
        });
    }
    if !(0.0..=1.0).contains(&config.blend) {
        return Err(DefenseError::InvalidConfig {
            defense: "STRIP",
            message: format!(
                "blend must be a convex superposition weight in [0, 1], got {} \
                 (a NaN blend collapses every perturbation entropy to 0 and \
                 yields a meaningless verdict)",
                config.blend
            ),
        });
    }
    let mut overlay_rng = rng::rng_from_seed(rng::derive_seed(config.seed, 0x0005_7F10));

    // The clean and suspect sets share one RNG stream in this order, and
    // every blend batch reuses the scratch buffers.
    scratch.clean_entropies.clear();
    for x in clean_holdout {
        let h =
            scratch.perturbation_entropy(network, x, clean_holdout, config, &mut overlay_rng)?;
        scratch.clean_entropies.push(h);
    }
    scratch.suspect_entropies.clear();
    for x in suspects {
        let h =
            scratch.perturbation_entropy(network, x, clean_holdout, config, &mut overlay_rng)?;
        scratch.suspect_entropies.push(h);
    }

    let boundary = stats::quantile_with(&scratch.clean_entropies, config.frr, &mut scratch.sort);
    let flagged = scratch
        .suspect_entropies
        .iter()
        .filter(|&&h| h < boundary)
        .count();
    let flagged_fraction = flagged as f32 / scratch.suspect_entropies.len() as f32;
    let decision_value = flagged_fraction - config.detection_far;

    Ok(StripReport {
        decision_value,
        flagged_fraction,
        boundary,
        mean_clean_entropy: scratch.clean_entropies.iter().sum::<f32>()
            / scratch.clean_entropies.len() as f32,
        median_suspect_entropy: stats::median_with(&scratch.suspect_entropies, &mut scratch.sort),
        detected: decision_value > 0.0,
    })
}

/// The pooled STRIP auditor: a [`StripConfig`] plus an interior
/// [scratch pool](StripScratch) shared across audits, so repeated audits —
/// including the parallel fig. 6 grid — reuse their buffers and perform
/// zero heap allocations once warmed up. Verdicts are bit-identical to
/// auditing through the allocating [`strip`] wrapper.
pub struct StripAuditor {
    config: StripConfig,
    pool: ScratchPool<StripScratch>,
}

impl StripAuditor {
    /// Builds a pooled auditor around `config`.
    pub fn new(config: StripConfig) -> Self {
        Self {
            config,
            pool: ScratchPool::new(),
        }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &StripConfig {
        &self.config
    }
}

impl Defense for StripAuditor {
    fn name(&self) -> &'static str {
        "STRIP"
    }

    fn audit(
        &self,
        network: &mut Network,
        inputs: &AuditInputs<'_>,
    ) -> Result<DefenseVerdict, DefenseError> {
        let mut scratch = self.pool.acquire();
        let result = strip_with(
            network,
            inputs.clean_images(),
            inputs.suspects,
            &self.config,
            &mut scratch,
        );
        self.pool.release(scratch);
        let report = result?;
        Ok(DefenseVerdict {
            defense: self.name(),
            score: report.decision_value,
            threshold: 0.0,
            detected: report.detected,
        })
    }

    fn scratch_capacity(&self) -> usize {
        self.pool.total_capacity(StripScratch::buffer_capacity)
    }

    fn release_scratch(&self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_nn::models;
    use reveil_nn::train::{TrainConfig, Trainer};

    /// Six-class texture task on 12×12 images — heterogeneous enough that
    /// clean superpositions are genuinely ambiguous (the regime STRIP
    /// assumes).
    fn toy_images(n: usize, seed: u64) -> (Vec<Tensor>, Vec<usize>) {
        let mut r = rng::rng_from_seed(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 6;
            let phase = class as f32 * 0.7;
            let mut img = Tensor::from_fn(&[1, 12, 12], |q| {
                let y = (q / 12) as f32;
                let x = (q % 12) as f32;
                0.5 + 0.35 * ((x * 0.5 + phase).sin() * (y * 0.4 + phase).cos())
            });
            let noise = rng::gaussian_like(&[1, 12, 12], 0.04, &mut r);
            img += &noise;
            img.clamp_inplace(0.0, 1.0);
            images.push(img);
            labels.push(class);
        }
        (images, labels)
    }

    fn stamp(img: &Tensor) -> Tensor {
        let mut out = img.clone();
        for y in 0..3 {
            for x in 0..3 {
                out.set(&[0, y, x], if (y + x) % 2 == 0 { 1.0 } else { 0.0 });
            }
        }
        out
    }

    fn train_model(backdoored: bool) -> Network {
        let (mut images, mut labels) = toy_images(180, 1);
        if backdoored {
            let (extra, _) = toy_images(36, 2);
            for img in extra {
                images.push(stamp(&img));
                labels.push(0);
            }
        }
        let mut net = models::tiny_cnn(1, 12, 12, 6, 8, 3);
        let cfg = TrainConfig::new(12, 32, 5e-3).with_seed(4);
        Trainer::new(cfg).fit(&mut net, &images, &labels);
        net
    }

    #[test]
    fn backdoored_model_scores_above_clean_model() {
        let (clean, _) = toy_images(30, 5);
        let suspects: Vec<Tensor> = clean.iter().map(stamp).collect();
        let config = StripConfig {
            num_overlays: 12,
            ..StripConfig::default()
        };

        let mut backdoored = train_model(true);
        let bad = strip(&mut backdoored, &clean, &suspects, &config).unwrap();
        let mut benign = train_model(false);
        let good = strip(&mut benign, &clean, &suspects, &config).unwrap();

        assert!(
            bad.flagged_fraction > good.flagged_fraction,
            "backdoored model must flag more trigger inputs: {} vs {}",
            bad.flagged_fraction,
            good.flagged_fraction
        );
        assert!(bad.decision_value > good.decision_value);
    }

    #[test]
    fn clean_suspects_are_not_flagged() {
        let (clean, _) = toy_images(30, 7);
        let mut net = train_model(true);
        let config = StripConfig {
            num_overlays: 12,
            ..StripConfig::default()
        };
        // Suspects ARE clean images drawn from the same distribution: the
        // flagged fraction stays near the FRR, far below detection.
        let (other_clean, _) = toy_images(30, 8);
        let report = strip(&mut net, &clean, &other_clean, &config).unwrap();
        assert!(
            report.flagged_fraction <= 2.0 * config.frr + 0.1,
            "clean inputs must not be flagged in bulk: {}",
            report.flagged_fraction
        );
        assert!(!report.detected, "{report:?}");
    }

    #[test]
    fn report_fields_are_consistent() {
        let (clean, _) = toy_images(24, 9);
        let suspects: Vec<Tensor> = clean.iter().map(stamp).collect();
        let mut net = train_model(true);
        let config = StripConfig::default();
        let report = strip(&mut net, &clean, &suspects, &config).unwrap();
        assert_eq!(report.detected, report.decision_value > 0.0);
        assert!(report.mean_clean_entropy.is_finite(), "{report:?}");
        assert!(report.flagged_fraction.is_finite(), "{report:?}");
        assert!((0.0..=1.0).contains(&report.flagged_fraction));
        assert!(
            (report.decision_value - (report.flagged_fraction - config.detection_far)).abs() < 1e-6
        );
        assert!(report.mean_clean_entropy >= 0.0);
    }

    #[test]
    fn strip_is_deterministic_in_the_seed() {
        let (clean, _) = toy_images(16, 11);
        let suspects: Vec<Tensor> = clean.iter().map(stamp).collect();
        let mut net = train_model(false);
        let config = StripConfig::default();
        let a = strip(&mut net, &clean, &suspects, &config).unwrap();
        let b = strip(&mut net, &clean, &suspects, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_sets_are_errors_not_nan() {
        let mut net = train_model(false);
        let probe = Tensor::zeros(&[1, 12, 12]);
        let config = StripConfig::default();

        let err = strip(&mut net, &[], std::slice::from_ref(&probe), &config).unwrap_err();
        assert_eq!(
            err,
            DefenseError::EmptyInput {
                defense: "STRIP",
                what: "clean calibration"
            }
        );

        // The regression this guards: an empty suspect set used to divide
        // 0 / 0 into a NaN flagged_fraction and a NaN decision value.
        let err = strip(&mut net, std::slice::from_ref(&probe), &[], &config).unwrap_err();
        assert_eq!(
            err,
            DefenseError::EmptyInput {
                defense: "STRIP",
                what: "suspect"
            }
        );
    }

    #[test]
    fn zero_overlays_is_a_config_error() {
        let mut net = train_model(false);
        let probe = Tensor::zeros(&[1, 12, 12]);
        let config = StripConfig {
            num_overlays: 0,
            ..StripConfig::default()
        };
        let err = strip(
            &mut net,
            std::slice::from_ref(&probe),
            std::slice::from_ref(&probe),
            &config,
        )
        .unwrap_err();
        assert!(matches!(err, DefenseError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn nan_detection_far_is_a_config_error_not_a_nan_verdict() {
        let mut net = train_model(false);
        let probe = Tensor::zeros(&[1, 12, 12]);
        for detection_far in [-0.5f32, 2.0, f32::NAN] {
            let config = StripConfig {
                detection_far,
                ..StripConfig::default()
            };
            let err = strip(
                &mut net,
                std::slice::from_ref(&probe),
                std::slice::from_ref(&probe),
                &config,
            )
            .unwrap_err();
            assert!(
                matches!(err, DefenseError::InvalidConfig { .. }),
                "detection_far {detection_far}: {err}"
            );
        }
    }

    #[test]
    fn nan_blend_is_a_config_error_not_a_zero_entropy_verdict() {
        let mut net = train_model(false);
        let probe = Tensor::zeros(&[1, 12, 12]);
        for blend in [-0.25f32, 1.25, f32::NAN] {
            let config = StripConfig {
                blend,
                ..StripConfig::default()
            };
            let err = strip(
                &mut net,
                std::slice::from_ref(&probe),
                std::slice::from_ref(&probe),
                &config,
            )
            .unwrap_err();
            assert!(
                matches!(err, DefenseError::InvalidConfig { .. }),
                "blend {blend}: {err}"
            );
        }
    }

    #[test]
    fn nan_poisoned_model_is_an_internal_error_not_an_abort() {
        // NaN classification-head parameters emit NaN logits (a fully-NaN
        // backbone would be absorbed by the ReLU max clamps), so every
        // perturbation entropy is NaN; the quantile statistics sort with
        // partial_cmp and would abort on it.
        let mut net = train_model(false);
        net.visit_head_params(&mut |p| p.value_mut().data_mut().fill(f32::NAN));
        let (clean, _) = toy_images(6, 13);
        let suspects: Vec<Tensor> = clean.iter().map(stamp).collect();
        let err = strip(&mut net, &clean, &suspects, &StripConfig::default()).unwrap_err();
        assert!(matches!(err, DefenseError::Internal { .. }), "{err}");
    }

    #[test]
    fn out_of_range_frr_is_a_config_error_not_an_abort() {
        let mut net = train_model(false);
        let probe = Tensor::zeros(&[1, 12, 12]);
        for frr in [-0.1f32, 1.5, f32::NAN] {
            let config = StripConfig {
                frr,
                ..StripConfig::default()
            };
            let err = strip(
                &mut net,
                std::slice::from_ref(&probe),
                std::slice::from_ref(&probe),
                &config,
            )
            .unwrap_err();
            assert!(
                matches!(err, DefenseError::InvalidConfig { .. }),
                "frr {frr}: {err}"
            );
        }
    }
}
