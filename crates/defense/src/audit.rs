//! The [`Defense`] trait: one audit interface over every detector.
//!
//! The paper evaluates ReVeil against three detectors with three different
//! input shapes (STRIP wants clean probes + suspects, Neural Cleanse wants
//! clean probes only, Beatrix wants the labelled clean set + suspects).
//! This module normalises them behind an object-safe trait so evaluation
//! scenarios can attach *any* auditor declaratively: each detector's pooled
//! auditor ([`StripAuditor`](crate::StripAuditor),
//! [`NeuralCleanseAuditor`](crate::NeuralCleanseAuditor),
//! [`BeatrixAuditor`](crate::BeatrixAuditor)) implements [`Defense`],
//! consumes the shared [`AuditInputs`] view through its interior scratch
//! pool — zero heap allocations per audit once warmed up — and reports a
//! [`DefenseVerdict`] on the common `score` / `threshold` / `detected`
//! axis the paper's Figs. 6–8 plot.

use reveil_datasets::LabeledDataset;
use reveil_nn::Network;
use reveil_tensor::Tensor;

use crate::error::DefenseError;

/// The evidence a defense may consume when auditing a suspect model.
///
/// Each detector reads the subset it needs: STRIP and Neural Cleanse take
/// up to `clean_budget` images from `clean` for calibration, Beatrix reads
/// the labelled set directly (bounded by its own `samples_per_class`), and
/// STRIP/Beatrix measure the `suspects`.
#[derive(Debug)]
pub struct AuditInputs<'a> {
    /// Labelled clean holdout data (typically the test split).
    pub clean: &'a LabeledDataset,
    /// Suspect inputs (typically trigger-embedded images).
    pub suspects: &'a [Tensor],
    /// Maximum clean images a calibration set may draw from `clean`.
    pub clean_budget: usize,
}

impl<'a> AuditInputs<'a> {
    /// Builds the inputs view with a calibration budget.
    pub fn new(clean: &'a LabeledDataset, suspects: &'a [Tensor], clean_budget: usize) -> Self {
        Self {
            clean,
            suspects,
            clean_budget,
        }
    }

    /// The clean calibration images, truncated to the budget.
    pub fn clean_images(&self) -> &[Tensor] {
        let n = self.clean.len().min(self.clean_budget);
        &self.clean.images()[..n]
    }
}

/// A defense's model-level verdict, normalised across detectors: the score
/// is the quantity the paper plots (STRIP decision value, Neural Cleanse /
/// Beatrix anomaly index) and `detected` is the detector's own judgement
/// (which may use more context than `score >= threshold` alone, e.g.
/// Neural Cleanse also requires the flagged mask below the median).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseVerdict {
    /// Which defense produced the verdict.
    pub defense: &'static str,
    /// The detector's decision score.
    pub score: f32,
    /// The published detection threshold on the score.
    pub threshold: f32,
    /// Whether the detector flags the model as backdoored.
    pub detected: bool,
}

/// A backdoor detector that can audit a suspect model.
///
/// Object-safe: scenarios hold `&dyn Defense` / `Box<dyn Defense>` and run
/// any panel of auditors over the same trained cell.
pub trait Defense {
    /// Short detector name (matches the paper's naming).
    fn name(&self) -> &'static str;

    /// Audits a suspect model against the given evidence.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError`] for empty evidence sets or configurations
    /// under which the detector's statistics are undefined.
    fn audit(
        &self,
        network: &mut Network,
        inputs: &AuditInputs<'_>,
    ) -> Result<DefenseVerdict, DefenseError>;

    /// Total capacity in scalars of the auditor's pooled per-audit scratch
    /// buffers. Stable across warmed-up audits for the pooled auditors —
    /// the observable form of their zero-allocation contract. Defaults to
    /// 0 for auditors that keep no scratch.
    fn scratch_capacity(&self) -> usize {
        0
    }

    /// Drops the auditor's pooled scratch buffers (they re-grow on the
    /// next audit). Called when an evaluation grid parks a finished cell
    /// so long-lived caches do not pin audit-sized scratch memory.
    /// Defaults to a no-op for auditors that keep no scratch.
    fn release_scratch(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beatrix::BeatrixConfig;
    use crate::neural_cleanse::NeuralCleanseConfig;
    use crate::strip::StripConfig;
    use crate::{BeatrixAuditor, NeuralCleanseAuditor, StripAuditor};
    use reveil_nn::models;
    use reveil_nn::train::{TrainConfig, Trainer};
    use reveil_tensor::rng;

    fn toy_dataset(n: usize, seed: u64) -> LabeledDataset {
        let mut r = rng::rng_from_seed(seed);
        let mut ds = LabeledDataset::new("toy", 2);
        for i in 0..n {
            let class = i % 2;
            let level = 0.2 + 0.6 * class as f32;
            let mut img = Tensor::full(&[1, 8, 8], level);
            rng::fill_gaussian(&mut img, level, 0.05, &mut r);
            img.clamp_inplace(0.0, 1.0);
            ds.push(img, class).unwrap();
        }
        ds
    }

    fn train_model(data: &LabeledDataset) -> Network {
        let mut net = models::tiny_cnn(1, 8, 8, 2, 8, 3);
        Trainer::new(TrainConfig::new(6, 16, 5e-3).with_seed(4)).fit(
            &mut net,
            data.images(),
            data.labels(),
        );
        net
    }

    #[test]
    fn every_detector_audits_through_the_trait() {
        let data = toy_dataset(40, 1);
        let mut net = train_model(&data);
        let suspects: Vec<Tensor> = data.images().iter().take(8).cloned().collect();
        let inputs = AuditInputs::new(&data, &suspects, 16);

        let strip = StripAuditor::new(StripConfig {
            num_overlays: 6,
            ..StripConfig::default()
        });
        let nc = NeuralCleanseAuditor::new(NeuralCleanseConfig {
            steps: 10,
            sample_count: 6,
            ..NeuralCleanseConfig::default()
        });
        let beatrix = BeatrixAuditor::new(BeatrixConfig {
            orders: vec![1, 2],
            samples_per_class: 10,
        });
        let panel: [&dyn Defense; 3] = [&strip, &nc, &beatrix];
        for defense in panel {
            let audit = defense.audit(&mut net, &inputs);
            assert!(audit.is_ok(), "{} audit failed: {audit:?}", defense.name());
            let verdict = audit.unwrap();
            assert_eq!(verdict.defense, defense.name());
            assert!(verdict.score.is_finite(), "{verdict:?}");
            assert!(verdict.threshold.is_finite());
            // One audit warmed the pool; the scratch must be measurable
            // and releasable through the trait.
            assert!(defense.scratch_capacity() > 0, "{}", defense.name());
            defense.release_scratch();
            assert_eq!(defense.scratch_capacity(), 0, "{}", defense.name());
        }
    }

    #[test]
    fn audit_errors_propagate_structured() {
        let data = toy_dataset(12, 2);
        let mut net = train_model(&data);
        // Empty suspects: STRIP and Beatrix must reject, not NaN.
        let inputs = AuditInputs::new(&data, &[], 8);
        let strip = StripAuditor::new(StripConfig::default());
        let err = strip.audit(&mut net, &inputs).unwrap_err();
        assert!(matches!(err, DefenseError::EmptyInput { .. }), "{err}");
        let beatrix = BeatrixAuditor::new(BeatrixConfig::default());
        let err = beatrix.audit(&mut net, &inputs).unwrap_err();
        assert!(matches!(err, DefenseError::EmptyInput { .. }), "{err}");
    }

    #[test]
    fn clean_budget_truncates_the_calibration_set() {
        let data = toy_dataset(20, 3);
        let suspects: Vec<Tensor> = data.images().iter().take(4).cloned().collect();
        let inputs = AuditInputs::new(&data, &suspects, 6);
        assert_eq!(inputs.clean_images().len(), 6);
        // A budget beyond the dataset clamps to the dataset.
        let inputs = AuditInputs::new(&data, &suspects, 500);
        assert_eq!(inputs.clean_images().len(), 20);
    }
}
