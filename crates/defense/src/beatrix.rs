//! Beatrix: Gram-matrix activation statistics (Ma et al., NDSS 2023).

use reveil_datasets::LabeledDataset;
use reveil_nn::{train, Mode, Network};
use reveil_tensor::Tensor;

use crate::stats;
use crate::DefenseError;

/// Beatrix configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BeatrixConfig {
    /// Gram-matrix orders `p` to include (the paper uses 1..8; the reduced
    /// profiles default to 1, 2, 4, 8).
    pub orders: Vec<u32>,
    /// Maximum clean samples per class used for the class-conditional
    /// statistics.
    pub samples_per_class: usize,
}

impl Default for BeatrixConfig {
    fn default() -> Self {
        Self {
            orders: vec![1, 2, 4, 8],
            samples_per_class: 20,
        }
    }
}

/// Beatrix verdict for one suspect model.
#[derive(Debug, Clone, PartialEq)]
pub struct BeatrixReport {
    /// Model-level anomaly index (≥ e² ⇔ detected, paper Fig. 8): the MAD
    /// anomaly index of the suspect Gram deviations, scaled by how strongly
    /// the deviant inputs concentrate on a single predicted label — the
    /// defining signature separating a backdoor from mere distribution
    /// shift (the original Beatrix likewise flags an *infected label*).
    pub anomaly_index: f32,
    /// Raw MAD anomaly index before concentration scaling.
    pub raw_anomaly_index: f32,
    /// Fraction of suspect inputs predicted into the modal class, rescaled
    /// so 0 = uniform spread and 1 = all on one label.
    pub label_concentration: f32,
    /// Median Gram deviation of the suspect inputs.
    pub median_suspect_deviation: f32,
    /// Median Gram deviation of the clean inputs (self-consistency level).
    pub median_clean_deviation: f32,
    /// Whether the anomaly index reaches e².
    pub detected: bool,
}

/// The detection threshold on the anomaly index: e² ≈ 7.389 (paper Fig. 8).
pub const DETECTION_THRESHOLD: f32 = 7.389_056;

/// Extracts the network's last spatial activation for a batch of images.
///
/// # Errors
///
/// Returns [`DefenseError::Internal`] if the backbone records no
/// activations or its feature tensor has a shape Beatrix cannot attribute.
fn last_spatial_activation(network: &mut Network, batch: &Tensor) -> Result<Tensor, DefenseError> {
    let _ = network.features(batch, Mode::Eval);
    if let Some(spatial) = network
        .backbone_activations()
        .iter()
        .rev()
        .find(|a| a.ndim() == 4)
    {
        return Ok(spatial.clone());
    }
    // Vector-feature fallback (e.g. MLP probes): treat the feature
    // vector as a [d, 1, 1] spatial activation.
    let Some(f) = network.backbone_activations().last().cloned() else {
        return Err(DefenseError::Internal {
            defense: "Beatrix",
            message: "backbone produced no activations".to_string(),
        });
    };
    let &[n, d] = f.shape() else {
        return Err(DefenseError::Internal {
            defense: "Beatrix",
            message: format!("unexpected feature shape {:?}", f.shape()),
        });
    };
    f.reshape(vec![n, d, 1, 1])
        .map_err(|e| DefenseError::internal("Beatrix", e))
}

/// Per-channel importance of the attributed activation for the classifier's
/// decision, derived from the head's first linear layer: the mean absolute
/// weight applied to each channel, normalised to mean 1.
///
/// The paper's Beatrix reads a *semantically deep* layer of ResNet-scale
/// models, where activations of correctly classified inputs no longer carry
/// input-space nuisances the classifier ignores. Our substrate models are
/// two to five convolutions deep, so the raw last-conv activation still
/// shows any input perturbation — triggered-but-correctly-classified inputs
/// would flag on *distribution shift*, not backdoor behaviour. Weighting
/// channels by how much the classification head actually reads them
/// restores the "as seen by the decision" property the original relies on
/// (DESIGN.md §1).
fn channel_importance(
    network: &mut Network,
    calibration: &Tensor,
) -> Result<Vec<f32>, DefenseError> {
    // Shape of the attributed activation.
    let spatial = last_spatial_activation(network, calibration)?;
    let &[_, c, h, w] = spatial.shape() else {
        return Err(DefenseError::Internal {
            defense: "Beatrix",
            message: format!("activation is not [n, c, h, w]: {:?}", spatial.shape()),
        });
    };
    let plane = h * w;

    // First rank-2 parameter of the head = its input weight matrix [K, D].
    let mut head_weight: Option<Tensor> = None;
    network.visit_head_params(&mut |p| {
        if head_weight.is_none() && p.value().ndim() == 2 {
            let d = p.value().shape()[1];
            if d == c || d == c * plane {
                head_weight = Some(p.value().clone());
            }
        }
    });
    let Some(weight) = head_weight else {
        return Ok(vec![1.0; c]);
    };
    let &[k, d] = weight.shape() else {
        return Err(DefenseError::Internal {
            defense: "Beatrix",
            message: format!("head weight is not rank 2: {:?}", weight.shape()),
        });
    };

    let mut importance = vec![0.0f32; c];
    if d == c {
        // GAP head: one weight column per channel.
        for row in 0..k {
            for (ch, imp) in importance.iter_mut().enumerate() {
                *imp += weight.data()[row * d + ch].abs();
            }
        }
    } else {
        // Flatten head: average the |weights| over each channel's plane.
        for row in 0..k {
            for (ch, imp) in importance.iter_mut().enumerate() {
                let base = row * d + ch * plane;
                *imp += weight.data()[base..base + plane]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f32>()
                    / plane as f32;
            }
        }
    }
    let mean: f32 = importance.iter().sum::<f32>() / c as f32;
    if mean > 1e-12 {
        for v in &mut importance {
            *v /= mean;
        }
    } else {
        importance.iter_mut().for_each(|v| *v = 1.0);
    }
    Ok(importance)
}

/// Extracts the per-sample Gram feature vector from the network's last
/// spatial activation, keeping only channel pairs enabled by `mask` (empty
/// = all pairs).
///
/// For each order `p`, the `[c, h·w]` activation `F` (absolute values, so
/// fractional roots are defined for pre-activation features) contributes
/// the masked upper triangle of `(|F|^p · |F|^pᵀ)^(1/p)`, normalised by the
/// spatial size.
fn gram_features(
    network: &mut Network,
    images: &[Tensor],
    orders: &[u32],
    mask: &[bool],
) -> Result<Vec<Vec<f32>>, DefenseError> {
    if images.is_empty() {
        return Err(DefenseError::EmptyInput {
            defense: "Beatrix",
            what: "Gram feature",
        });
    }
    // One stacked forward over the whole set: the old path chunked by 32,
    // running an im2col lowering and GEMM per chunk; the batched conv
    // substrate amortises both across all images at once.
    let batch = Tensor::stack(images).map_err(|e| DefenseError::internal("Beatrix", e))?;
    let spatial = last_spatial_activation(network, &batch)?;
    let &[n, c, h, w] = spatial.shape() else {
        return Err(DefenseError::Internal {
            defense: "Beatrix",
            message: format!("activation is not [n, c, h, w]: {:?}", spatial.shape()),
        });
    };
    let plane = h * w;
    let mut out = Vec::with_capacity(images.len());
    for img in 0..n {
        let mut feature = Vec::with_capacity(orders.len() * c * (c + 1) / 2);
        for &p in orders {
            // |F|^p rows, masked Gram upper triangle with 1/p root.
            let powed: Vec<f32> = (0..c * plane)
                .map(|i| {
                    let v = spatial.data()[img * c * plane + i].abs();
                    v.powi(p as i32)
                })
                .collect();
            let mut pair = 0;
            for a in 0..c {
                let ra = &powed[a * plane..(a + 1) * plane];
                for b in a..c {
                    let keep = mask.get(pair).copied().unwrap_or(true);
                    pair += 1;
                    if !keep {
                        continue;
                    }
                    let rb = &powed[b * plane..(b + 1) * plane];
                    let dot: f32 =
                        ra.iter().zip(rb).map(|(x, y)| x * y).sum::<f32>() / plane as f32;
                    feature.push(dot.max(0.0).powf(1.0 / p as f32));
                }
            }
        }
        out.push(feature);
    }
    // Overflowing or NaN activations poison the Gram features, and the
    // robust statistics built from them (median/MAD sort with partial_cmp)
    // would abort on the NaNs that `inf − inf` produces downstream; reject
    // the condition as a structured error at the source.
    if out.iter().flatten().any(|v| !v.is_finite()) {
        return Err(DefenseError::Internal {
            defense: "Beatrix",
            message: "Gram features are not finite (overflowing or NaN activations)".to_string(),
        });
    }
    Ok(out)
}

/// Builds the channel-pair mask from per-channel importance: a Gram entry
/// `(a, b)` is kept when `importance[a] · importance[b]` reaches the median
/// pair importance, i.e. the statistics only read activation directions the
/// classification head actually uses. With uniform importance every pair is
/// kept.
fn pair_mask(importance: &[f32]) -> Vec<bool> {
    let c = importance.len();
    if c == 0 {
        return Vec::new();
    }
    let mut products = Vec::with_capacity(c * (c + 1) / 2);
    for a in 0..c {
        for b in a..c {
            products.push(importance[a] * importance[b]);
        }
    }
    let threshold = crate::stats::median(&products);
    products.iter().map(|&p| p >= threshold).collect()
}

/// Per-dimension robust envelope of a set of feature vectors.
struct ClassStats {
    med: Vec<f32>,
    mad: Vec<f32>,
}

fn class_stats(features: &[&Vec<f32>]) -> ClassStats {
    let dims = features[0].len();
    let mut med = Vec::with_capacity(dims);
    let mut mad_v = Vec::with_capacity(dims);
    let mut column = Vec::with_capacity(features.len());
    for d in 0..dims {
        column.clear();
        column.extend(features.iter().map(|f| f[d]));
        med.push(stats::median(&column));
        mad_v.push(stats::mad(&column));
    }
    ClassStats { med, mad: mad_v }
}

fn deviation(feature: &[f32], stats_for_class: &ClassStats) -> f32 {
    let devs: Vec<f32> = feature
        .iter()
        .zip(stats_for_class.med.iter().zip(&stats_for_class.mad))
        .map(|(&v, (&m, &s))| (v - m).abs() / (stats::MAD_CONSISTENCY * s + 1e-6))
        .collect();
    stats::median(&devs)
}

/// Runs Beatrix: builds class-conditional Gram statistics from the clean
/// labelled set, measures the deviation of the suspect inputs (grouped by
/// their *predicted* class), and reports the MAD anomaly index.
///
/// # Errors
///
/// Returns [`DefenseError::EmptyInput`] if `clean` or `suspects` is empty,
/// [`DefenseError::InvalidConfig`] if the configuration leaves no class
/// with enough calibration samples for an envelope (or no Gram orders to
/// measure), and [`DefenseError::Internal`] if the substrate cannot stack
/// the evidence or the network exposes no attributable activation.
pub fn beatrix(
    network: &mut Network,
    clean: &LabeledDataset,
    suspects: &[Tensor],
    config: &BeatrixConfig,
) -> Result<BeatrixReport, DefenseError> {
    if clean.is_empty() {
        return Err(DefenseError::EmptyInput {
            defense: "Beatrix",
            what: "clean calibration",
        });
    }
    if suspects.is_empty() {
        return Err(DefenseError::EmptyInput {
            defense: "Beatrix",
            what: "suspect",
        });
    }
    if config.orders.is_empty() {
        return Err(DefenseError::InvalidConfig {
            defense: "Beatrix",
            message: "orders must name at least one Gram order".to_string(),
        });
    }

    // Subsample the clean set per class.
    let mut calib_indices = Vec::new();
    for class in 0..clean.num_classes() {
        let members = clean.class_indices(class);
        calib_indices.extend(members.into_iter().take(config.samples_per_class));
    }
    let calib_images: Vec<Tensor> = calib_indices
        .iter()
        .map(|&i| clean.image(i).clone())
        .collect();
    let calib_labels: Vec<usize> = calib_indices.iter().map(|&i| clean.label(i)).collect();

    network.set_recording(true);
    let importance_batch = Tensor::stack(&calib_images[..calib_images.len().min(16)])
        .map_err(|e| DefenseError::internal("Beatrix", e))?;
    let importance = channel_importance(network, &importance_batch)?;
    let mask = pair_mask(&importance);

    let calib_features = gram_features(network, &calib_images, &config.orders, &mask)?;

    // Class-conditional envelopes (classes present in the calibration set).
    let mut per_class: Vec<Option<ClassStats>> = Vec::new();
    for class in 0..clean.num_classes() {
        let members: Vec<&Vec<f32>> = calib_features
            .iter()
            .zip(&calib_labels)
            .filter(|(_, &l)| l == class)
            .map(|(f, _)| f)
            .collect();
        per_class.push(if members.len() >= 2 {
            Some(class_stats(&members))
        } else {
            None
        });
    }

    // Clean self-deviations (each sample vs its own class envelope).
    let clean_devs: Vec<f32> = calib_features
        .iter()
        .zip(&calib_labels)
        .filter_map(|(f, &l)| per_class[l].as_ref().map(|s| deviation(f, s)))
        .collect();
    if clean_devs.is_empty() {
        return Err(DefenseError::InvalidConfig {
            defense: "Beatrix",
            message: format!(
                "no class had the >= 2 calibration samples an envelope needs \
                 (samples_per_class = {})",
                config.samples_per_class
            ),
        });
    }

    // Suspect deviations vs their predicted class. The whole suspect set
    // goes through one stacked forward (both for the predictions and the
    // Gram features) instead of per-32 chunks.
    let suspect_preds = train::predict_labels(network, suspects, suspects.len());
    network.set_recording(true);
    let suspect_features = gram_features(network, suspects, &config.orders, &mask)?;
    network.set_recording(false);
    let suspect_devs: Vec<f32> = suspect_features
        .iter()
        .zip(&suspect_preds)
        .map(|(f, &pred)| match per_class[pred].as_ref() {
            Some(s) => deviation(f, s),
            // No envelope for that class: fall back to the global worst
            // clean deviation (conservative).
            None => stats::quantile(&clean_devs, 1.0),
        })
        .collect();

    let median_suspect = stats::median(&suspect_devs);
    let median_clean = stats::median(&clean_devs);
    let raw_anomaly_index = stats::anomaly_index(median_suspect, &clean_devs);

    // Label concentration of the suspects: a backdoor funnels deviant
    // inputs into one label; benign shift spreads them across classes.
    let k = clean.num_classes().max(2);
    let mut counts = vec![0usize; k];
    for &p in &suspect_preds {
        counts[p] += 1;
    }
    let modal =
        counts.iter().copied().max().unwrap_or(0) as f32 / suspect_preds.len().max(1) as f32;
    let uniform = 1.0 / k as f32;
    let label_concentration = ((modal - uniform) / (1.0 - uniform)).clamp(0.0, 1.0);
    let anomaly_index = raw_anomaly_index * label_concentration;

    Ok(BeatrixReport {
        anomaly_index,
        raw_anomaly_index,
        label_concentration,
        median_suspect_deviation: median_suspect,
        median_clean_deviation: median_clean,
        detected: anomaly_index >= DETECTION_THRESHOLD,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_nn::models;
    use reveil_nn::train::{TrainConfig, Trainer};
    use reveil_tensor::rng;

    fn toy_dataset(n: usize, seed: u64) -> LabeledDataset {
        let mut r = rng::rng_from_seed(seed);
        let mut ds = LabeledDataset::new("toy", 2);
        for i in 0..n {
            let class = i % 2;
            let level = 0.2 + 0.6 * class as f32;
            let mut img = Tensor::full(&[1, 8, 8], level);
            rng::fill_gaussian(&mut img, level, 0.05, &mut r);
            img.clamp_inplace(0.0, 1.0);
            ds.push(img, class).unwrap();
        }
        ds
    }

    fn stamp(img: &Tensor) -> Tensor {
        let mut out = img.clone();
        for (y, x, v) in [(0, 0, 1.0), (0, 1, 0.0), (1, 0, 0.0), (1, 1, 1.0)] {
            out.set(&[0, y, x], v);
        }
        out
    }

    fn train_model(backdoored: bool) -> Network {
        let data = toy_dataset(80, 1);
        let mut images: Vec<Tensor> = data.images().to_vec();
        let mut labels: Vec<usize> = data.labels().to_vec();
        if backdoored {
            let extra = toy_dataset(20, 2);
            for (img, _) in extra.iter() {
                images.push(stamp(img));
                labels.push(0);
            }
        }
        let mut net = models::tiny_cnn(1, 8, 8, 2, 8, 3);
        Trainer::new(TrainConfig::new(12, 16, 5e-3).with_seed(4)).fit(&mut net, &images, &labels);
        net
    }

    #[test]
    fn gram_features_have_consistent_dims() {
        let mut net = train_model(false);
        net.set_recording(true);
        let images = vec![Tensor::zeros(&[1, 8, 8]), Tensor::ones(&[1, 8, 8])];
        let feats = gram_features(&mut net, &images, &[1, 2], &[]).expect("gram features");
        assert_eq!(feats.len(), 2);
        assert_eq!(feats[0].len(), feats[1].len());
        assert!(feats[0].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn channel_importance_is_normalised() {
        let mut net = train_model(true);
        net.set_recording(true);
        let batch = Tensor::stack(&[Tensor::full(&[1, 8, 8], 0.4)]).unwrap();
        let importance = channel_importance(&mut net, &batch).expect("channel importance");
        assert!(!importance.is_empty());
        let mean: f32 = importance.iter().sum::<f32>() / importance.len() as f32;
        assert!((mean - 1.0).abs() < 1e-4, "mean {mean}");
        assert!(importance.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn triggered_inputs_deviate_more_on_backdoored_model() {
        let calib = toy_dataset(40, 5);
        let suspects: Vec<Tensor> = calib.images().iter().take(10).map(stamp).collect();
        let config = BeatrixConfig {
            orders: vec![1, 2],
            samples_per_class: 15,
        };

        let mut bad = train_model(true);
        let bad_report = beatrix(&mut bad, &calib, &suspects, &config).unwrap();
        let mut good = train_model(false);
        let good_report = beatrix(&mut good, &calib, &suspects, &config).unwrap();

        assert!(
            bad_report.anomaly_index > good_report.anomaly_index,
            "backdoored {} must exceed clean {}",
            bad_report.anomaly_index,
            good_report.anomaly_index
        );
    }

    #[test]
    fn clean_suspects_score_low() {
        let calib = toy_dataset(40, 7);
        let clean_suspects: Vec<Tensor> =
            calib.images().iter().skip(20).take(10).cloned().collect();
        let mut net = train_model(true);
        let config = BeatrixConfig {
            orders: vec![1, 2],
            samples_per_class: 15,
        };
        let report = beatrix(&mut net, &calib, &clean_suspects, &config).unwrap();
        assert!(
            report.anomaly_index < DETECTION_THRESHOLD,
            "clean inputs must not trip the detector: {}",
            report.anomaly_index
        );
    }

    #[test]
    fn report_fields_consistent() {
        let calib = toy_dataset(30, 9);
        let suspects: Vec<Tensor> = calib.images().iter().take(5).map(stamp).collect();
        let mut net = train_model(true);
        let report = beatrix(&mut net, &calib, &suspects, &BeatrixConfig::default()).unwrap();
        assert_eq!(report.detected, report.anomaly_index >= DETECTION_THRESHOLD);
        assert!(report.median_clean_deviation >= 0.0);
        assert!(report.median_suspect_deviation >= 0.0);
    }

    #[test]
    fn empty_inputs_are_errors_not_panics() {
        let mut net = train_model(false);
        let empty = LabeledDataset::new("x", 2);
        let err = beatrix(
            &mut net,
            &empty,
            &[Tensor::zeros(&[1, 8, 8])],
            &BeatrixConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            DefenseError::EmptyInput {
                defense: "Beatrix",
                what: "clean calibration"
            }
        );

        let calib = toy_dataset(10, 3);
        let err = beatrix(&mut net, &calib, &[], &BeatrixConfig::default()).unwrap_err();
        assert_eq!(
            err,
            DefenseError::EmptyInput {
                defense: "Beatrix",
                what: "suspect"
            }
        );
    }

    #[test]
    fn overflowing_model_is_an_internal_error_not_an_abort() {
        // Huge weights drive the Gram dot products to infinity; the MAD
        // of an all-infinite column is `inf − inf = NaN`, which would
        // abort the robust statistics mid-sweep.
        let mut net = train_model(false);
        net.visit_params(&mut |p| p.value_mut().data_mut().fill(1e30));
        let calib = toy_dataset(20, 11);
        let suspects: Vec<Tensor> = calib.images().iter().take(5).map(stamp).collect();
        let config = BeatrixConfig {
            orders: vec![1, 2],
            samples_per_class: 10,
        };
        let err = beatrix(&mut net, &calib, &suspects, &config).unwrap_err();
        assert!(matches!(err, DefenseError::Internal { .. }), "{err}");
    }

    #[test]
    fn empty_orders_is_a_config_error() {
        let mut net = train_model(false);
        let calib = toy_dataset(10, 5);
        let config = BeatrixConfig {
            orders: vec![],
            samples_per_class: 5,
        };
        let err = beatrix(&mut net, &calib, &[Tensor::zeros(&[1, 8, 8])], &config).unwrap_err();
        assert!(matches!(err, DefenseError::InvalidConfig { .. }), "{err}");
    }
}
