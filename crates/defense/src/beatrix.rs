//! Beatrix: Gram-matrix activation statistics (Ma et al., NDSS 2023).

use reveil_datasets::LabeledDataset;
use reveil_nn::{Mode, Network};
use reveil_tensor::ops::{argmax_rows_into, softmax_rows_into};
use reveil_tensor::Tensor;

use crate::audit::{AuditInputs, Defense, DefenseVerdict};
use crate::scratch::{stack_into, ScratchPool};
use crate::stats;
use crate::DefenseError;

/// Beatrix configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BeatrixConfig {
    /// Gram-matrix orders `p` to include (the paper uses 1..8; the reduced
    /// profiles default to 1, 2, 4, 8).
    pub orders: Vec<u32>,
    /// Maximum clean samples per class used for the class-conditional
    /// statistics.
    pub samples_per_class: usize,
}

impl Default for BeatrixConfig {
    fn default() -> Self {
        Self {
            orders: vec![1, 2, 4, 8],
            samples_per_class: 20,
        }
    }
}

/// Beatrix verdict for one suspect model.
#[derive(Debug, Clone, PartialEq)]
pub struct BeatrixReport {
    /// Model-level anomaly index (≥ e² ⇔ detected, paper Fig. 8): the MAD
    /// anomaly index of the suspect Gram deviations, scaled by how strongly
    /// the deviant inputs concentrate on a single predicted label — the
    /// defining signature separating a backdoor from mere distribution
    /// shift (the original Beatrix likewise flags an *infected label*).
    pub anomaly_index: f32,
    /// Raw MAD anomaly index before concentration scaling.
    pub raw_anomaly_index: f32,
    /// Fraction of suspect inputs predicted into the modal class, rescaled
    /// so 0 = uniform spread and 1 = all on one label.
    pub label_concentration: f32,
    /// Median Gram deviation of the suspect inputs.
    pub median_suspect_deviation: f32,
    /// Median Gram deviation of the clean inputs (self-consistency level).
    pub median_clean_deviation: f32,
    /// Whether the anomaly index reaches e².
    pub detected: bool,
}

/// The detection threshold on the anomaly index: e² ≈ 7.389 (paper Fig. 8).
pub const DETECTION_THRESHOLD: f32 = 7.389_056;

/// Per-dimension robust envelope of one class's calibration features.
#[derive(Default)]
struct ClassStats {
    med: Vec<f32>,
    mad: Vec<f32>,
    /// Whether the class had the ≥ 2 calibration samples an envelope needs.
    valid: bool,
}

/// Reusable buffers for one Beatrix audit: the stacked calibration /
/// importance / suspect batches, the pooled spatial-activation copy, the
/// flat Gram-feature matrices, the class envelopes, the prediction path
/// tensors, and the statistics scratch.
///
/// After one warm-up audit at a given geometry, every subsequent
/// [`beatrix_with`] call through the same scratch performs **zero heap
/// allocations** (the audit analogue of the
/// [`reveil_nn::Layer`](reveil_nn::Layer) buffer-reuse contract), and
/// reports are bit-identical to the allocating [`beatrix`] wrapper.
#[derive(Default)]
pub struct BeatrixScratch {
    /// Per-class calibration sample indices into the clean set.
    calib_indices: Vec<usize>,
    /// Labels of the calibration samples, aligned with `calib_indices`.
    calib_labels: Vec<usize>,
    /// Stacked calibration batch.
    calib_batch: Tensor,
    /// Stacked channel-importance probe batch (first ≤ 16 calib images).
    importance_batch: Tensor,
    /// Stacked suspect batch.
    suspect_batch: Tensor,
    /// Backbone feature output of the last forward.
    features_out: Tensor,
    /// Copy of the attributed `[n, c, h, w]` spatial activation.
    spatial: Tensor,
    /// Batch-shape scratch for stacking.
    shape: Vec<usize>,
    /// Per-channel decision importance, normalised to mean 1.
    importance: Vec<f32>,
    /// Pairwise importance products feeding the channel-pair mask.
    products: Vec<f32>,
    /// Channel-pair mask over the Gram upper triangle.
    mask: Vec<bool>,
    /// `|F|^p` rows of the current image and order.
    powed: Vec<f32>,
    /// Flat calibration Gram features, `[num_calib × feat_dim]` row-major.
    calib_feats: Vec<f32>,
    /// Flat suspect Gram features, `[num_suspects × feat_dim]` row-major.
    suspect_feats: Vec<f32>,
    /// Per-class robust envelopes.
    class_stats: Vec<ClassStats>,
    /// One feature dimension across the class members (envelope builder).
    column: Vec<f32>,
    /// Per-dimension deviations of one feature vector.
    devs: Vec<f32>,
    /// Clean self-deviations.
    clean_devs: Vec<f32>,
    /// Suspect deviations vs their predicted class.
    suspect_devs: Vec<f32>,
    /// Suspect logits.
    logits: Tensor,
    /// Suspect softmax probabilities.
    probs: Tensor,
    /// Suspect predicted labels.
    preds: Vec<usize>,
    /// Predicted-label histogram for the concentration term.
    counts: Vec<usize>,
    /// Sort buffer for the robust statistics.
    sort: Vec<f32>,
}

impl BeatrixScratch {
    /// Creates an empty scratch; buffers grow on the first audit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total capacity in scalars of every reusable buffer. Stable across
    /// warmed-up audits — the observable form of the zero-allocation
    /// contract.
    pub fn buffer_capacity(&self) -> usize {
        self.calib_indices.capacity()
            + self.calib_labels.capacity()
            + self.calib_batch.capacity()
            + self.importance_batch.capacity()
            + self.suspect_batch.capacity()
            + self.features_out.capacity()
            + self.spatial.capacity()
            + self.shape.capacity()
            + self.importance.capacity()
            + self.products.capacity()
            + self.mask.capacity()
            + self.powed.capacity()
            + self.calib_feats.capacity()
            + self.suspect_feats.capacity()
            + self.class_stats.capacity()
            + self
                .class_stats
                .iter()
                .map(|c| c.med.capacity() + c.mad.capacity())
                .sum::<usize>()
            + self.column.capacity()
            + self.devs.capacity()
            + self.clean_devs.capacity()
            + self.suspect_devs.capacity()
            + self.logits.capacity()
            + self.probs.capacity()
            + self.preds.capacity()
            + self.counts.capacity()
            + self.sort.capacity()
    }
}

/// Copies the network's last spatial activation for `batch` into `spatial`.
///
/// Runs one pooled eval-mode backbone forward ([`Network::features_into`])
/// and probes the layer-boundary buffers newest-first — the final feature
/// tensor, then the interior boundaries in reverse — for a 4-D activation,
/// exactly the reversed recorded-activation search of the old recording
/// path, without cloning every boundary.
///
/// # Errors
///
/// Returns [`DefenseError::Internal`] if no boundary is 4-D and the feature
/// tensor has a shape Beatrix cannot attribute (not `[n, d]`).
fn last_spatial_into(
    network: &mut Network,
    batch: &Tensor,
    features_out: &mut Tensor,
    spatial: &mut Tensor,
) -> Result<(), DefenseError> {
    network.features_into(batch, Mode::Eval, features_out);
    if features_out.ndim() == 4 {
        spatial.resize_for_overwrite(features_out.shape());
        spatial.data_mut().copy_from_slice(features_out.data());
        return Ok(());
    }
    if let Some(b) = network
        .backbone_boundary_outputs()
        .iter()
        .rev()
        .find(|a| a.ndim() == 4)
    {
        spatial.resize_for_overwrite(b.shape());
        spatial.data_mut().copy_from_slice(b.data());
        return Ok(());
    }
    // Vector-feature fallback (e.g. MLP probes): treat the feature
    // vector as a [d, 1, 1] spatial activation.
    let &[n, d] = features_out.shape() else {
        return Err(DefenseError::Internal {
            defense: "Beatrix",
            message: format!("unexpected feature shape {:?}", features_out.shape()),
        });
    };
    spatial.resize_for_overwrite(&[n, d, 1, 1]);
    spatial.data_mut().copy_from_slice(features_out.data());
    Ok(())
}

/// Per-channel importance of the attributed activation for the classifier's
/// decision, derived from the head's first matching linear layer: the mean
/// absolute weight applied to each of the `c` channels (`plane` spatial
/// positions each), normalised to mean 1 and written into `importance`.
///
/// The paper's Beatrix reads a *semantically deep* layer of ResNet-scale
/// models, where activations of correctly classified inputs no longer carry
/// input-space nuisances the classifier ignores. Our substrate models are
/// two to five convolutions deep, so the raw last-conv activation still
/// shows any input perturbation — triggered-but-correctly-classified inputs
/// would flag on *distribution shift*, not backdoor behaviour. Weighting
/// channels by how much the classification head actually reads them
/// restores the "as seen by the decision" property the original relies on
/// (DESIGN.md §1). With no matching head weight every channel gets 1.
fn channel_importance_into(
    network: &mut Network,
    c: usize,
    plane: usize,
    importance: &mut Vec<f32>,
) {
    importance.clear();
    importance.resize(c, 0.0);
    // First rank-2 parameter of the head whose input width matches the
    // activation (= its input weight matrix [K, D]).
    let mut matched = false;
    network.visit_head_params(&mut |p| {
        if matched || p.value().ndim() != 2 {
            return;
        }
        let k = p.value().shape()[0];
        let d = p.value().shape()[1];
        if d != c && d != c * plane {
            return;
        }
        matched = true;
        let data = p.value().data();
        if d == c {
            // GAP head: one weight column per channel.
            for row in 0..k {
                for (ch, imp) in importance.iter_mut().enumerate() {
                    *imp += data[row * d + ch].abs();
                }
            }
        } else {
            // Flatten head: average the |weights| over each channel's plane.
            for row in 0..k {
                for (ch, imp) in importance.iter_mut().enumerate() {
                    let base = row * d + ch * plane;
                    *imp += data[base..base + plane]
                        .iter()
                        .map(|v| v.abs())
                        .sum::<f32>()
                        / plane as f32;
                }
            }
        }
    });
    if !matched {
        importance.iter_mut().for_each(|v| *v = 1.0);
        return;
    }
    let mean: f32 = importance.iter().sum::<f32>() / c as f32;
    if mean > 1e-12 {
        for v in importance.iter_mut() {
            *v /= mean;
        }
    } else {
        importance.iter_mut().for_each(|v| *v = 1.0);
    }
}

/// Builds the channel-pair mask from per-channel importance: a Gram entry
/// `(a, b)` is kept when `importance[a] · importance[b]` reaches the median
/// pair importance, i.e. the statistics only read activation directions the
/// classification head actually uses. With uniform importance every pair is
/// kept.
fn pair_mask_into(
    importance: &[f32],
    products: &mut Vec<f32>,
    sort: &mut Vec<f32>,
    mask: &mut Vec<bool>,
) {
    mask.clear();
    let c = importance.len();
    if c == 0 {
        return;
    }
    products.clear();
    for a in 0..c {
        for b in a..c {
            products.push(importance[a] * importance[b]);
        }
    }
    let threshold = stats::median_with(products, sort);
    mask.extend(products.iter().map(|&p| p >= threshold));
}

/// Extracts the per-sample Gram feature vectors of a `[n, c, h, w]` spatial
/// activation into the flat row-major `out` (`n` rows), keeping only channel
/// pairs enabled by `mask` (empty = all pairs), and returns the per-sample
/// feature dimension.
///
/// For each order `p`, the `[c, h·w]` activation `F` (absolute values, so
/// fractional roots are defined for pre-activation features) contributes
/// the masked upper triangle of `(|F|^p · |F|^pᵀ)^(1/p)`, normalised by the
/// spatial size.
fn gram_features_with(
    spatial: &Tensor,
    orders: &[u32],
    mask: &[bool],
    powed: &mut Vec<f32>,
    out: &mut Vec<f32>,
) -> Result<usize, DefenseError> {
    let &[n, c, h, w] = spatial.shape() else {
        return Err(DefenseError::Internal {
            defense: "Beatrix",
            message: format!("activation is not [n, c, h, w]: {:?}", spatial.shape()),
        });
    };
    let plane = h * w;
    out.clear();
    for img in 0..n {
        for &p in orders {
            // |F|^p rows, masked Gram upper triangle with 1/p root.
            powed.clear();
            powed.extend(
                spatial.data()[img * c * plane..(img + 1) * c * plane]
                    .iter()
                    .map(|v| v.abs().powi(p as i32)),
            );
            let mut pair = 0;
            for a in 0..c {
                let ra = &powed[a * plane..(a + 1) * plane];
                for b in a..c {
                    let keep = mask.get(pair).copied().unwrap_or(true);
                    pair += 1;
                    if !keep {
                        continue;
                    }
                    let rb = &powed[b * plane..(b + 1) * plane];
                    let dot: f32 =
                        ra.iter().zip(rb).map(|(x, y)| x * y).sum::<f32>() / plane as f32;
                    out.push(dot.max(0.0).powf(1.0 / p as f32));
                }
            }
        }
    }
    // Overflowing or NaN activations poison the Gram features, and the
    // robust statistics built from them (median/MAD sort with partial_cmp)
    // would abort on the NaNs that `inf − inf` produces downstream; reject
    // the condition as a structured error at the source.
    if out.iter().any(|v| !v.is_finite()) {
        return Err(DefenseError::Internal {
            defense: "Beatrix",
            message: "Gram features are not finite (overflowing or NaN activations)".to_string(),
        });
    }
    Ok(out.len() / n)
}

/// Median per-dimension MAD-scaled deviation of one feature vector from a
/// class envelope, computed inside the `devs`/`sort` scratch.
fn deviation_with(
    feature: &[f32],
    stats_for_class: &ClassStats,
    devs: &mut Vec<f32>,
    sort: &mut Vec<f32>,
) -> f32 {
    devs.clear();
    devs.extend(
        feature
            .iter()
            .zip(stats_for_class.med.iter().zip(&stats_for_class.mad))
            .map(|(&v, (&m, &s))| (v - m).abs() / (stats::MAD_CONSISTENCY * s + 1e-6)),
    );
    stats::median_with(devs, sort)
}

/// Runs Beatrix: builds class-conditional Gram statistics from the clean
/// labelled set, measures the deviation of the suspect inputs (grouped by
/// their *predicted* class), and reports the MAD anomaly index.
///
/// # Errors
///
/// Returns [`DefenseError::EmptyInput`] if `clean` or `suspects` is empty,
/// [`DefenseError::InvalidConfig`] if the configuration leaves no class
/// with enough calibration samples for an envelope (or no Gram orders to
/// measure), and [`DefenseError::Internal`] if the substrate cannot stack
/// the evidence or the network exposes no attributable activation.
pub fn beatrix(
    network: &mut Network,
    clean: &LabeledDataset,
    suspects: &[Tensor],
    config: &BeatrixConfig,
) -> Result<BeatrixReport, DefenseError> {
    beatrix_with(network, clean, suspects, config, &mut BeatrixScratch::new())
}

/// [`beatrix`] running inside a caller-provided [`BeatrixScratch`]: zero
/// heap allocations once the scratch is warmed up, bit-identical report
/// (the calibration subsampling, the Gram arithmetic, the prediction path
/// and the statistics are unchanged).
///
/// # Errors
///
/// Identical to [`beatrix`].
pub fn beatrix_with(
    network: &mut Network,
    clean: &LabeledDataset,
    suspects: &[Tensor],
    config: &BeatrixConfig,
    scratch: &mut BeatrixScratch,
) -> Result<BeatrixReport, DefenseError> {
    if clean.is_empty() {
        return Err(DefenseError::EmptyInput {
            defense: "Beatrix",
            what: "clean calibration",
        });
    }
    if suspects.is_empty() {
        return Err(DefenseError::EmptyInput {
            defense: "Beatrix",
            what: "suspect",
        });
    }
    if config.orders.is_empty() {
        return Err(DefenseError::InvalidConfig {
            defense: "Beatrix",
            message: "orders must name at least one Gram order".to_string(),
        });
    }
    let BeatrixScratch {
        calib_indices,
        calib_labels,
        calib_batch,
        importance_batch,
        suspect_batch,
        features_out,
        spatial,
        shape,
        importance,
        products,
        mask,
        powed,
        calib_feats,
        suspect_feats,
        class_stats,
        column,
        devs,
        clean_devs,
        suspect_devs,
        logits,
        probs,
        preds,
        counts,
        sort,
    } = scratch;

    // Subsample the clean set per class: the first `samples_per_class`
    // members of each class in dataset order (exactly
    // `class_indices(class).take(samples_per_class)`, without the index
    // vector it allocates).
    let num_classes = clean.num_classes();
    calib_indices.clear();
    for class in 0..num_classes {
        let mut taken = 0;
        for (i, &l) in clean.labels().iter().enumerate() {
            if taken >= config.samples_per_class {
                break;
            }
            if l == class {
                calib_indices.push(i);
                taken += 1;
            }
        }
    }
    calib_labels.clear();
    calib_labels.extend(calib_indices.iter().map(|&i| clean.label(i)));
    stack_into(
        calib_batch,
        shape,
        calib_indices.iter().map(|&i| clean.image(i)),
        "Beatrix",
    )?;

    // Channel importance from a probe batch of the first ≤ 16 calib images.
    stack_into(
        importance_batch,
        shape,
        calib_indices.iter().take(16).map(|&i| clean.image(i)),
        "Beatrix",
    )?;
    last_spatial_into(network, importance_batch, features_out, spatial)?;
    let &[_, c, h, w] = spatial.shape() else {
        return Err(DefenseError::Internal {
            defense: "Beatrix",
            message: format!("activation is not [n, c, h, w]: {:?}", spatial.shape()),
        });
    };
    channel_importance_into(network, c, h * w, importance);
    pair_mask_into(importance, products, sort, mask);

    last_spatial_into(network, calib_batch, features_out, spatial)?;
    let feat_dim = gram_features_with(spatial, &config.orders, mask, powed, calib_feats)?;

    // Class-conditional envelopes (classes present in the calibration set).
    class_stats.resize_with(num_classes, ClassStats::default);
    for (class, stats_c) in class_stats.iter_mut().enumerate() {
        let members = calib_labels.iter().filter(|&&l| l == class).count();
        stats_c.valid = members >= 2;
        stats_c.med.clear();
        stats_c.mad.clear();
        if !stats_c.valid {
            continue;
        }
        for d in 0..feat_dim {
            column.clear();
            column.extend(
                calib_labels
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| l == class)
                    .map(|(i, _)| calib_feats[i * feat_dim + d]),
            );
            stats_c.med.push(stats::median_with(column, sort));
            stats_c.mad.push(stats::mad_with(column, sort));
        }
    }

    // Clean self-deviations (each sample vs its own class envelope).
    clean_devs.clear();
    for (i, &l) in calib_labels.iter().enumerate() {
        if class_stats[l].valid {
            let feature = &calib_feats[i * feat_dim..(i + 1) * feat_dim];
            clean_devs.push(deviation_with(feature, &class_stats[l], devs, sort));
        }
    }
    if clean_devs.is_empty() {
        return Err(DefenseError::InvalidConfig {
            defense: "Beatrix",
            message: format!(
                "no class had the >= 2 calibration samples an envelope needs \
                 (samples_per_class = {})",
                config.samples_per_class
            ),
        });
    }

    // Suspect deviations vs their predicted class. The whole suspect set
    // goes through one stacked forward (both for the predictions and the
    // Gram features) on the pooled inference path.
    stack_into(suspect_batch, shape, suspects.iter(), "Beatrix")?;
    network.infer_into(suspect_batch, logits);
    softmax_rows_into(logits, probs).map_err(|e| DefenseError::internal("Beatrix", e))?;
    argmax_rows_into(probs, preds).map_err(|e| DefenseError::internal("Beatrix", e))?;
    last_spatial_into(network, suspect_batch, features_out, spatial)?;
    let sus_dim = gram_features_with(spatial, &config.orders, mask, powed, suspect_feats)?;
    suspect_devs.clear();
    for (i, &pred) in preds.iter().enumerate() {
        suspect_devs.push(if class_stats[pred].valid {
            let feature = &suspect_feats[i * sus_dim..(i + 1) * sus_dim];
            deviation_with(feature, &class_stats[pred], devs, sort)
        } else {
            // No envelope for that class: fall back to the global worst
            // clean deviation (conservative).
            stats::quantile_with(clean_devs, 1.0, sort)
        });
    }

    let median_suspect = stats::median_with(suspect_devs, sort);
    let median_clean = stats::median_with(clean_devs, sort);
    let raw_anomaly_index = stats::anomaly_index_with(median_suspect, clean_devs, sort);

    // Label concentration of the suspects: a backdoor funnels deviant
    // inputs into one label; benign shift spreads them across classes.
    let k = num_classes.max(2);
    counts.clear();
    counts.resize(k, 0);
    for &p in preds.iter() {
        counts[p] += 1;
    }
    let modal = counts.iter().copied().max().unwrap_or(0) as f32 / preds.len().max(1) as f32;
    let uniform = 1.0 / k as f32;
    let label_concentration = ((modal - uniform) / (1.0 - uniform)).clamp(0.0, 1.0);
    let anomaly_index = raw_anomaly_index * label_concentration;

    Ok(BeatrixReport {
        anomaly_index,
        raw_anomaly_index,
        label_concentration,
        median_suspect_deviation: median_suspect,
        median_clean_deviation: median_clean,
        detected: anomaly_index >= DETECTION_THRESHOLD,
    })
}

/// The pooled Beatrix auditor: a [`BeatrixConfig`] plus an interior
/// [scratch pool](BeatrixScratch) shared across audits, so repeated audits
/// — including the parallel fig. 8 grid — reuse their buffers and perform
/// zero heap allocations once warmed up. Verdicts are bit-identical to
/// auditing through the allocating [`beatrix`] wrapper.
pub struct BeatrixAuditor {
    config: BeatrixConfig,
    pool: ScratchPool<BeatrixScratch>,
}

impl BeatrixAuditor {
    /// Builds a pooled auditor around `config`.
    pub fn new(config: BeatrixConfig) -> Self {
        Self {
            config,
            pool: ScratchPool::new(),
        }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &BeatrixConfig {
        &self.config
    }
}

impl Defense for BeatrixAuditor {
    fn name(&self) -> &'static str {
        "Beatrix"
    }

    fn audit(
        &self,
        network: &mut Network,
        inputs: &AuditInputs<'_>,
    ) -> Result<DefenseVerdict, DefenseError> {
        let mut scratch = self.pool.acquire();
        let result = beatrix_with(
            network,
            inputs.clean,
            inputs.suspects,
            &self.config,
            &mut scratch,
        );
        self.pool.release(scratch);
        let report = result?;
        Ok(DefenseVerdict {
            defense: self.name(),
            score: report.anomaly_index,
            threshold: DETECTION_THRESHOLD,
            detected: report.detected,
        })
    }

    fn scratch_capacity(&self) -> usize {
        self.pool.total_capacity(BeatrixScratch::buffer_capacity)
    }

    fn release_scratch(&self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_nn::models;
    use reveil_nn::train::{TrainConfig, Trainer};
    use reveil_tensor::rng;

    fn toy_dataset(n: usize, seed: u64) -> LabeledDataset {
        let mut r = rng::rng_from_seed(seed);
        let mut ds = LabeledDataset::new("toy", 2);
        for i in 0..n {
            let class = i % 2;
            let level = 0.2 + 0.6 * class as f32;
            let mut img = Tensor::full(&[1, 8, 8], level);
            rng::fill_gaussian(&mut img, level, 0.05, &mut r);
            img.clamp_inplace(0.0, 1.0);
            ds.push(img, class).unwrap();
        }
        ds
    }

    fn stamp(img: &Tensor) -> Tensor {
        let mut out = img.clone();
        for (y, x, v) in [(0, 0, 1.0), (0, 1, 0.0), (1, 0, 0.0), (1, 1, 1.0)] {
            out.set(&[0, y, x], v);
        }
        out
    }

    fn train_model(backdoored: bool) -> Network {
        let data = toy_dataset(80, 1);
        let mut images: Vec<Tensor> = data.images().to_vec();
        let mut labels: Vec<usize> = data.labels().to_vec();
        if backdoored {
            let extra = toy_dataset(20, 2);
            for (img, _) in extra.iter() {
                images.push(stamp(img));
                labels.push(0);
            }
        }
        let mut net = models::tiny_cnn(1, 8, 8, 2, 8, 3);
        Trainer::new(TrainConfig::new(12, 16, 5e-3).with_seed(4)).fit(&mut net, &images, &labels);
        net
    }

    #[test]
    fn gram_features_have_consistent_dims() {
        let mut net = train_model(false);
        let images = vec![Tensor::zeros(&[1, 8, 8]), Tensor::ones(&[1, 8, 8])];
        let batch = Tensor::stack(&images).unwrap();
        let mut features_out = Tensor::default();
        let mut spatial = Tensor::default();
        last_spatial_into(&mut net, &batch, &mut features_out, &mut spatial)
            .expect("spatial activation");
        let mut powed = Vec::new();
        let mut feats = Vec::new();
        let dim =
            gram_features_with(&spatial, &[1, 2], &[], &mut powed, &mut feats).expect("features");
        assert!(dim > 0);
        assert_eq!(feats.len(), 2 * dim);
        assert!(feats.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn channel_importance_is_normalised() {
        let mut net = train_model(true);
        let batch = Tensor::stack(&[Tensor::full(&[1, 8, 8], 0.4)]).unwrap();
        let mut features_out = Tensor::default();
        let mut spatial = Tensor::default();
        last_spatial_into(&mut net, &batch, &mut features_out, &mut spatial)
            .expect("spatial activation");
        let (c, plane) = (spatial.shape()[1], spatial.shape()[2] * spatial.shape()[3]);
        let mut importance = Vec::new();
        channel_importance_into(&mut net, c, plane, &mut importance);
        assert!(!importance.is_empty());
        let mean: f32 = importance.iter().sum::<f32>() / importance.len() as f32;
        assert!((mean - 1.0).abs() < 1e-4, "mean {mean}");
        assert!(importance.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn triggered_inputs_deviate_more_on_backdoored_model() {
        let calib = toy_dataset(40, 5);
        let suspects: Vec<Tensor> = calib.images().iter().take(10).map(stamp).collect();
        let config = BeatrixConfig {
            orders: vec![1, 2],
            samples_per_class: 15,
        };

        let mut bad = train_model(true);
        let bad_report = beatrix(&mut bad, &calib, &suspects, &config).unwrap();
        let mut good = train_model(false);
        let good_report = beatrix(&mut good, &calib, &suspects, &config).unwrap();

        assert!(
            bad_report.anomaly_index > good_report.anomaly_index,
            "backdoored {} must exceed clean {}",
            bad_report.anomaly_index,
            good_report.anomaly_index
        );
    }

    #[test]
    fn clean_suspects_score_low() {
        let calib = toy_dataset(40, 7);
        let clean_suspects: Vec<Tensor> =
            calib.images().iter().skip(20).take(10).cloned().collect();
        let mut net = train_model(true);
        let config = BeatrixConfig {
            orders: vec![1, 2],
            samples_per_class: 15,
        };
        let report = beatrix(&mut net, &calib, &clean_suspects, &config).unwrap();
        assert!(
            report.anomaly_index < DETECTION_THRESHOLD,
            "clean inputs must not trip the detector: {}",
            report.anomaly_index
        );
    }

    #[test]
    fn report_fields_consistent() {
        let calib = toy_dataset(30, 9);
        let suspects: Vec<Tensor> = calib.images().iter().take(5).map(stamp).collect();
        let mut net = train_model(true);
        let report = beatrix(&mut net, &calib, &suspects, &BeatrixConfig::default()).unwrap();
        assert_eq!(report.detected, report.anomaly_index >= DETECTION_THRESHOLD);
        assert!(report.median_clean_deviation >= 0.0);
        assert!(report.median_suspect_deviation >= 0.0);
    }

    #[test]
    fn empty_inputs_are_errors_not_panics() {
        let mut net = train_model(false);
        let empty = LabeledDataset::new("x", 2);
        let err = beatrix(
            &mut net,
            &empty,
            &[Tensor::zeros(&[1, 8, 8])],
            &BeatrixConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            DefenseError::EmptyInput {
                defense: "Beatrix",
                what: "clean calibration"
            }
        );

        let calib = toy_dataset(10, 3);
        let err = beatrix(&mut net, &calib, &[], &BeatrixConfig::default()).unwrap_err();
        assert_eq!(
            err,
            DefenseError::EmptyInput {
                defense: "Beatrix",
                what: "suspect"
            }
        );
    }

    #[test]
    fn overflowing_model_is_an_internal_error_not_an_abort() {
        // Huge weights drive the Gram dot products to infinity; the MAD
        // of an all-infinite column is `inf − inf = NaN`, which would
        // abort the robust statistics mid-sweep.
        let mut net = train_model(false);
        net.visit_params(&mut |p| p.value_mut().data_mut().fill(1e30));
        let calib = toy_dataset(20, 11);
        let suspects: Vec<Tensor> = calib.images().iter().take(5).map(stamp).collect();
        let config = BeatrixConfig {
            orders: vec![1, 2],
            samples_per_class: 10,
        };
        let err = beatrix(&mut net, &calib, &suspects, &config).unwrap_err();
        assert!(matches!(err, DefenseError::Internal { .. }), "{err}");
    }

    #[test]
    fn empty_orders_is_a_config_error() {
        let mut net = train_model(false);
        let calib = toy_dataset(10, 5);
        let config = BeatrixConfig {
            orders: vec![],
            samples_per_class: 5,
        };
        let err = beatrix(&mut net, &calib, &[Tensor::zeros(&[1, 8, 8])], &config).unwrap_err();
        assert!(matches!(err, DefenseError::InvalidConfig { .. }), "{err}");
    }
}
