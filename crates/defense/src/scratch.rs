//! Scratch pooling shared by the pooled auditors.

use std::sync::{Mutex, PoisonError};

use reveil_tensor::Tensor;

use crate::DefenseError;

/// A lock-guarded pool of reusable per-audit scratch values.
///
/// [`Defense::audit`](crate::Defense::audit) takes `&self` and
/// `ScenarioCache::audit_all` shares one auditor across the whole worker
/// team, so per-audit scratch cannot live behind `&mut self`. Each audit
/// pops a warmed scratch value from the pool (creating a fresh one only
/// when the pool is dry — at most once per concurrently auditing worker)
/// and pushes it back when done. The lock is held only for the pop/push,
/// never across the audit itself, so parallel audits stay parallel; after
/// the warm-up audit the pop/push pair performs no heap allocation (the
/// pool vector keeps its capacity).
pub(crate) struct ScratchPool<T> {
    slots: Mutex<Vec<T>>,
}

impl<T: Default> ScratchPool<T> {
    pub(crate) fn new() -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Pops a warmed scratch value, or creates a fresh one if none is free.
    pub(crate) fn acquire(&self) -> T {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch value to the pool for the next audit.
    pub(crate) fn release(&self, scratch: T) {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(scratch);
    }

    /// Drops every pooled scratch value (they re-grow on the next audit).
    pub(crate) fn clear(&self) {
        *self.slots.lock().unwrap_or_else(PoisonError::into_inner) = Vec::new();
    }

    /// Sums `measure` over every pooled scratch value.
    pub(crate) fn total_capacity(&self, measure: impl Fn(&T) -> usize) -> usize {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(measure)
            .sum()
    }
}

/// Stacks `images` into the pooled `batch` tensor as `[n, ...sample]`,
/// reusing both the batch allocation and the `shape` scratch — the
/// zero-allocation counterpart of `Tensor::stack`, byte-identical layout.
pub(crate) fn stack_into<'a>(
    batch: &mut Tensor,
    shape: &mut Vec<usize>,
    mut images: impl ExactSizeIterator<Item = &'a Tensor>,
    defense: &'static str,
) -> Result<(), DefenseError> {
    let n = images.len();
    let Some(first) = images.next() else {
        return Err(DefenseError::Internal {
            defense,
            message: "cannot stack an empty image set".to_string(),
        });
    };
    shape.clear();
    shape.push(n);
    shape.extend_from_slice(first.shape());
    batch.resize_for_overwrite(shape);
    let sample_len = first.len();
    batch.data_mut()[..sample_len].copy_from_slice(first.data());
    for (i, img) in images.enumerate() {
        if img.shape() != &shape[1..] {
            return Err(DefenseError::Internal {
                defense,
                message: format!(
                    "cannot stack images of differing shapes ({:?} vs {:?})",
                    img.shape(),
                    &shape[1..]
                ),
            });
        }
        let base = (i + 1) * sample_len;
        batch.data_mut()[base..base + sample_len].copy_from_slice(img.data());
    }
    Ok(())
}
