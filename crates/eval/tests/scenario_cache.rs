//! Cross-figure cache reuse: two figures requesting the same
//! `(profile, dataset, trigger, cr, σ, seed)` cell must hit the scenario
//! cache instead of retraining it.

use reveil_datasets::DatasetKind;
use reveil_eval::{fig6, fig7, fig8, Profile, ScenarioCache};
use reveil_triggers::TriggerKind;

#[test]
fn figures_share_trained_cells_through_the_cache() {
    let cache = ScenarioCache::new();
    let profile = Profile::Smoke;
    let datasets = [DatasetKind::Cifar10Like];
    let triggers = [TriggerKind::BadNets];
    let crs = [5.0f32];
    let seed = 2025;

    // Figs. 6, 7 and 8 all sweep the same (dataset, trigger, cr, σ, seed)
    // grid; restricted to one cell here, the three figure runners must
    // train it exactly once between them.
    let f6 = fig6::run_grid(&cache, profile, &datasets, &triggers, &crs, seed).expect("fig6 sweep");
    assert_eq!(cache.trainings(), 1, "fig6 trains the cell");

    let f7 = fig7::run_grid(&cache, profile, &datasets, &triggers, &crs, seed).expect("fig7 sweep");
    assert_eq!(
        cache.trainings(),
        1,
        "fig7 must reuse fig6's trained cell, not retrain it"
    );

    let f8 = fig8::run_grid(&cache, profile, &datasets, &triggers, &crs, seed).expect("fig8 sweep");
    assert_eq!(
        cache.trainings(),
        1,
        "fig8 must reuse the same trained cell as figs. 6 and 7"
    );

    assert!(f6[0].decision[0][0].is_finite());
    assert!(f7[0].index[0][0].is_finite());
    assert!(f8[0].index[0][0].is_finite());
    assert_eq!(cache.len(), 1);
}
