//! Parallel sweep executor under forced multi-threading.
//!
//! This integration test runs in its own process so it can pin
//! `REVEIL_THREADS=4` before the worker count is first resolved (the count
//! is cached per process). It bit-compares a fig-style multi-cell sweep
//! run through [`ScenarioCache::train_all`] against direct serial
//! training, checks the cache trains each distinct cell (and each trio)
//! exactly once, and pins the empty-suspect-set error contract of the
//! defense panel.

use std::sync::Arc;

use reveil_datasets::DatasetKind;
use reveil_defense::DefenseError;
use reveil_eval::{lock_scenario, EvalError, Profile, ScenarioCache, ScenarioSpec, UnlearnMethod};
use reveil_tensor::parallel;
use reveil_triggers::TriggerKind;

/// Pins the worker count to 4 for this process. Safe to call from every
/// test (the first call wins; all callers pass the same value). The
/// `Once` guarantees a single `set_var`, serialized before any test body
/// (and therefore before any `getenv`) proceeds — tests run on parallel
/// harness threads, and a concurrent getenv/setenv pair is a data race.
fn force_four_workers() {
    static PIN: std::sync::Once = std::sync::Once::new();
    PIN.call_once(|| std::env::set_var("REVEIL_THREADS", "4"));
    assert_eq!(
        parallel::worker_count(),
        4,
        "REVEIL_THREADS must be set before first use"
    );
}

/// A fig-style sweep: one dataset/trigger, three camouflage ratios.
fn sweep_specs() -> Vec<ScenarioSpec> {
    let base = ScenarioSpec::new(
        Profile::Smoke,
        DatasetKind::Cifar10Like,
        TriggerKind::BadNets,
    )
    .with_sigma(1e-3)
    .with_seed(21);
    vec![base.with_cr(0.0), base.with_cr(2.5), base.with_cr(5.0)]
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial_and_trains_each_cell_once() {
    force_four_workers();
    let specs = sweep_specs();

    // Request the grid with a duplicate appended: the executor must
    // dedupe it onto the same shared artifact.
    let mut requests = specs.clone();
    requests.push(specs[0]);
    let cache = ScenarioCache::new();
    let cells = cache.train_all(&requests).expect("parallel sweep");
    assert_eq!(
        cache.trainings(),
        specs.len(),
        "each distinct cell must train exactly once"
    );
    assert_eq!(cache.len(), specs.len());
    assert!(
        Arc::ptr_eq(&cells[0], &cells[3]),
        "duplicate specs must resolve to the same shared cell"
    );

    // Serial reference: the same cells trained directly, one at a time,
    // without the executor. Results and weights must match bit for bit.
    for (spec, cell) in specs.iter().zip(&cells) {
        let mut serial = spec.train().expect("serial cell");
        let mut cell = lock_scenario(cell);
        assert_eq!(
            serial.result, cell.result,
            "cr={}: parallel sweep diverged from serial training",
            spec.cr
        );
        assert_eq!(
            serial.network.state_vec(),
            cell.network.state_vec(),
            "cr={}: trained weights diverged from serial training",
            spec.cr
        );
    }

    // A re-request of the whole grid is pure cache hits.
    cache.train_all(&specs).expect("cached sweep");
    assert_eq!(cache.trainings(), specs.len());
}

#[test]
fn trio_executor_caches_and_matches_direct_runs() {
    force_four_workers();
    let spec = ScenarioSpec::new(
        Profile::Smoke,
        DatasetKind::Cifar10Like,
        TriggerKind::BadNets,
    )
    .with_seed(19)
    .with_unlearner(UnlearnMethod::Sisa);

    let cache = ScenarioCache::new();
    let trios = cache.trio_all(&[spec, spec]).expect("trio sweep");
    assert_eq!(
        cache.trio_trainings(),
        1,
        "a duplicate trio spec must run the lifecycle once"
    );
    assert_eq!(trios[0], trios[1]);

    // Bit-identical to a direct (uncached, serial-path) run.
    let direct = spec.restoration_trio().expect("direct trio");
    assert_eq!(trios[0], direct);

    // A later single request hits the cache.
    assert_eq!(cache.trio(&spec).expect("cached trio"), direct);
    assert_eq!(cache.trio_trainings(), 1);

    // The same trio spelled with the default provider axis (Monolithic +
    // SISA mechanism upgrades to a SISA provider) must share the cache
    // key — not retrain three models.
    let default_axes = ScenarioSpec::new(
        Profile::Smoke,
        DatasetKind::Cifar10Like,
        TriggerKind::BadNets,
    )
    .with_seed(19);
    assert_eq!(cache.trio(&default_axes).expect("same trio"), direct);
    assert_eq!(
        cache.trio_trainings(),
        1,
        "provider-normalised key must dedupe the default-axes spelling"
    );
}

#[test]
fn audit_executor_is_bit_identical_to_serial_audits() {
    force_four_workers();
    let profile = Profile::Smoke;
    let specs = sweep_specs();
    let budget = profile.defense_sample_count();
    let strip = profile.strip_auditor(21);

    // Fan the audits out (with a duplicate appended: it resolves to the
    // same cell and re-audits it, so four verdicts come back).
    let mut requests = specs.clone();
    requests.push(specs[0]);
    let cache = ScenarioCache::new();
    let verdicts = cache
        .audit_all(&requests, &strip, budget)
        .expect("parallel audits");
    assert_eq!(verdicts.len(), requests.len());
    assert_eq!(
        cache.trainings(),
        specs.len(),
        "audit_all must pre-warm each distinct cell exactly once"
    );
    assert_eq!(
        verdicts[0], verdicts[3],
        "duplicate specs must produce the same verdict"
    );

    // Serial reference: the same cells audited one at a time.
    for (spec, verdict) in specs.iter().zip(&verdicts) {
        let serial = lock_scenario(&cache.trained(spec).expect("cached cell"))
            .audit(&strip, budget)
            .expect("serial audit");
        assert_eq!(
            serial, *verdict,
            "cr={}: parallel audit diverged from serial",
            spec.cr
        );
    }
}

#[test]
fn audit_executor_reports_first_error_in_spec_order() {
    force_four_workers();
    let profile = Profile::Smoke;
    let cache = ScenarioCache::new();
    // Budget 0 starves STRIP on every cell; the error must be the first
    // spec's, deterministically, regardless of worker completion order.
    let err = cache
        .audit_all(&sweep_specs(), &profile.strip_auditor(21), 0)
        .expect_err("zero-budget audits must fail");
    assert!(
        matches!(err, EvalError::Defense(DefenseError::EmptyInput { .. })),
        "expected an EmptyInput defense error, got {err:?}"
    );
}

#[test]
fn zero_budget_audits_error_for_every_defense_instead_of_panicking() {
    force_four_workers();
    let profile = Profile::Smoke;
    let cache = ScenarioCache::new();
    let cell = cache.trained(&sweep_specs()[0]).expect("audit cell");
    let mut cell = lock_scenario(&cell);

    // Budget 0 starves every detector: STRIP and Beatrix see an empty
    // suspect set, STRIP and Neural Cleanse an empty clean calibration
    // set. Each must reject with a structured error — the old paths
    // panicked or NaN-poisoned the verdict.
    let audits = [
        ("STRIP", cell.audit(&profile.strip_auditor(1), 0)),
        (
            "Neural Cleanse",
            cell.audit(&profile.neural_cleanse_auditor(1), 0),
        ),
        ("Beatrix", cell.audit(&profile.beatrix_auditor(), 0)),
    ];
    for (name, audit) in audits {
        assert!(
            matches!(
                audit,
                Err(EvalError::Defense(DefenseError::EmptyInput { .. }))
            ),
            "{name}: expected an EmptyInput defense error, got {audit:?}"
        );
    }
}
