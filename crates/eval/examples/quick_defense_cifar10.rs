//! One-dataset Quick-profile defense sweep (Figs. 6–8 on CIFAR10) plus
//! Fig. 2, used to populate EXPERIMENTS.md without the full 4-dataset cost.
//!
//! All four figures share one `ScenarioCache`, so the 20 (attack × cr)
//! cells train once and are audited by STRIP, Neural Cleanse and Beatrix.

use reveil_datasets::DatasetKind;
use reveil_eval::{fig2, fig6, fig7, fig8, EvalError, Profile, ScenarioCache, DEFAULT_SEED};

fn main() -> Result<(), EvalError> {
    let profile = Profile::Quick;
    let datasets = [DatasetKind::Cifar10Like];
    let cache = ScenarioCache::new();

    let f2 = fig2::run(&cache, profile, 5, DEFAULT_SEED)?;
    println!("Fig. 2 (quick)\n{}", fig2::format(&f2).render());

    for result in fig6::run(&cache, profile, &datasets, DEFAULT_SEED)? {
        println!(
            "Fig. 6 (quick, {})\n{}",
            result.dataset.label(),
            fig6::format_one(&result).render()
        );
    }
    for result in fig7::run(&cache, profile, &datasets, DEFAULT_SEED)? {
        println!(
            "Fig. 7 (quick, {})\n{}",
            result.dataset.label(),
            fig7::format_one(&result).render()
        );
    }
    for result in fig8::run(&cache, profile, &datasets, DEFAULT_SEED)? {
        println!(
            "Fig. 8 (quick, {})\n{}",
            result.dataset.label(),
            fig8::format_one(&result).render()
        );
    }
    eprintln!(
        "trained {} cells for the whole sweep (three defenses audit each)",
        cache.trainings()
    );
    Ok(())
}
