//! Fig. 8: Beatrix anomaly indices across camouflage ratios.

use reveil_datasets::DatasetKind;
use reveil_triggers::TriggerKind;

use crate::error::EvalError;
use crate::fig3::CR_VALUES;
use crate::profile::Profile;
use crate::report::TextTable;
use crate::runner::{grid_specs, ScenarioCache};

/// One dataset's Beatrix sweep: anomaly index per `(attack, cr)`.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// The dataset.
    pub dataset: DatasetKind,
    /// `index[attack_index][cr_index]` (≥ e² ⇔ detected).
    pub index: Vec<Vec<f32>>,
}

impl Fig8Result {
    /// Whether detection weakens with cr (index at cr = 5 below cr = 1).
    pub fn detection_fades(&self, attack_index: usize) -> bool {
        let row = &self.index[attack_index];
        row[row.len() - 1] <= row[0]
    }
}

/// Runs the Fig. 8 sweep over the full attack × cr grid.
///
/// # Errors
///
/// Propagates cell-training and audit failures.
pub fn run(
    cache: &ScenarioCache,
    profile: Profile,
    datasets: &[DatasetKind],
    base_seed: u64,
) -> Result<Vec<Fig8Result>, EvalError> {
    run_grid(
        cache,
        profile,
        datasets,
        &TriggerKind::ALL,
        &CR_VALUES,
        base_seed,
    )
}

/// Runs the Fig. 8 sweep on a sub-grid (attacks × crs): the grid's cells
/// are trained **and audited** by the parallel sweep executor
/// ([`ScenarioCache::audit_all`] fans the Beatrix audits across the
/// worker team the way training fans out; distinct cells hold distinct
/// locks), with Beatrix attached through the
/// [`Defense`](reveil_defense::Defense) trait.
///
/// # Errors
///
/// Propagates cell-training and audit failures.
pub fn run_grid(
    cache: &ScenarioCache,
    profile: Profile,
    datasets: &[DatasetKind],
    triggers: &[TriggerKind],
    crs: &[f32],
    base_seed: u64,
) -> Result<Vec<Fig8Result>, EvalError> {
    let specs = grid_specs(profile, datasets, triggers, crs, base_seed);
    let verdicts = cache.audit_all(
        &specs,
        &profile.beatrix_auditor(),
        profile.defense_sample_count(),
    )?;
    let mut scores = verdicts.iter().map(|v| v.score);
    Ok(datasets
        .iter()
        .map(|&kind| Fig8Result {
            dataset: kind,
            index: triggers
                .iter()
                .map(|_| scores.by_ref().take(crs.len()).collect())
                .collect(),
        })
        .collect())
}

/// Renders one dataset's sweep (attacks × cr).
pub fn format_one(result: &Fig8Result) -> TextTable {
    let mut header = vec!["Attack".to_string()];
    header.extend(CR_VALUES.iter().map(|cr| format!("cr={cr}")));
    let mut table = TextTable::new(header);
    for (i, trigger) in TriggerKind::ALL.iter().enumerate() {
        let mut row = vec![format!("{} ({})", trigger.paper_id(), trigger.label())];
        row.extend(result.index[i].iter().map(|&v| format!("{v:.2}")));
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ScenarioSpec;

    #[test]
    fn format_layout_and_fade() {
        let result = Fig8Result {
            dataset: DatasetKind::Cifar10Like,
            index: vec![vec![31.76, 15.0, 9.0, 7.01, 5.0]; 4],
        };
        assert!(result.detection_fades(0));
        let text = format_one(&result).render();
        assert!(text.contains("31.76"));
        assert!(text.contains("7.01"));
    }

    #[test]
    fn smoke_beatrix_orders_poisoned_above_camouflaged() {
        let profile = Profile::Smoke;
        let kind = DatasetKind::Cifar10Like;
        let trigger = TriggerKind::BadNets;
        let run_cell = |cr: f32| {
            let mut cell = ScenarioSpec::new(profile, kind, trigger)
                .with_cr(cr)
                .with_sigma(1e-3)
                .with_seed(42)
                .train()
                .expect("smoke cell");
            let suspects = cell.suspects(20);
            let report = reveil_defense::beatrix(
                &mut cell.network,
                &cell.pair.test,
                &suspects,
                &profile.beatrix_config(),
            )
            .expect("Beatrix report");
            (
                cell.result.asr,
                report.anomaly_index,
                report.label_concentration,
            )
        };
        let (asr_poison, idx_poison, conc_poison) = run_cell(0.0);
        let (asr_camo, idx_camo, conc_camo) = run_cell(5.0);
        // Prerequisite for a meaningful comparison: the poison cell must
        // actually implant at this seed.
        assert!(
            asr_poison > 50.0,
            "poison cell failed to implant: ASR {asr_poison}"
        );
        assert!(asr_camo < asr_poison, "camouflage failed to suppress");
        assert!(
            conc_camo <= conc_poison,
            "camouflage must disperse predicted labels: {conc_camo} vs {conc_poison}"
        );
        assert!(
            idx_camo <= idx_poison + 2.0,
            "camouflage must not increase the Beatrix index: {idx_camo} vs {idx_poison}"
        );
    }
}
