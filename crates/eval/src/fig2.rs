//! Fig. 2: GradCAM attention on the trigger — poison-trained `f_B` vs
//! noisy-poison-trained `f_N`.

use reveil_datasets::DatasetKind;
use reveil_explain::{grad_cam, render};
use reveil_tensor::Tensor;
use reveil_triggers::TriggerKind;

use crate::error::EvalError;
use crate::profile::Profile;
use crate::report::{output_dir, TextTable};
use crate::runner::{lock_scenario, ScenarioCache, ScenarioSpec};

/// Attention-on-trigger statistics for one sample image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Sample {
    /// True class of the sample.
    pub class: usize,
    /// Fraction of `f_B`'s attention mass inside the trigger region.
    pub mass_poisoned: f32,
    /// Fraction of `f_N`'s attention mass inside the trigger region.
    pub mass_noisy: f32,
}

/// Fig. 2 outcome: per-sample trigger-attention mass plus written overlays.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Per-sample statistics (one sample per distinct class, as in the
    /// paper's five-image strip).
    pub samples: Vec<Fig2Sample>,
    /// Paths of the PPM overlays written (two per sample: f_B, f_N).
    pub written: Vec<std::path::PathBuf>,
}

impl Fig2Result {
    /// Mean trigger-attention mass of the poison-trained model.
    pub fn mean_mass_poisoned(&self) -> f32 {
        self.samples.iter().map(|s| s.mass_poisoned).sum::<f32>() / self.samples.len().max(1) as f32
    }

    /// Mean trigger-attention mass of the noisy-poison-trained model.
    pub fn mean_mass_noisy(&self) -> f32 {
        self.samples.iter().map(|s| s.mass_noisy).sum::<f32>() / self.samples.len().max(1) as f32
    }
}

/// Side length of the trigger-attention region: the 3×3 BadNets patch plus
/// a one-pixel halo (GradCAM maps are upsampled from coarser layers).
const REGION: usize = 5;

/// Runs Fig. 2 on the CIFAR10-like dataset with BadNets, as in the paper.
///
/// Trains `f_B` (clean + poison) and `f_N` (clean + poison + equally many
/// noisy poison samples, i.e. cr = 1) through the shared cache, then
/// compares GradCAM attention on trigger-stamped samples of `num_samples`
/// distinct classes. Overlay heat maps are written under
/// `target/experiments/fig2/`.
///
/// # Errors
///
/// Propagates cell-training failures.
pub fn run(
    cache: &ScenarioCache,
    profile: Profile,
    num_samples: usize,
    base_seed: u64,
) -> Result<Fig2Result, EvalError> {
    let spec = ScenarioSpec::new(profile, DatasetKind::Cifar10Like, TriggerKind::BadNets)
        .with_sigma(1e-3)
        .with_seed(base_seed);
    eprintln!("[fig2] training f_B (clean + poison) and f_N (clean + poison + noisy poison)");
    let cells = cache.train_all(&[spec.with_cr(0.0), spec.with_cr(1.0)])?;
    let mut f_b = lock_scenario(&cells[0]);
    let mut f_n = lock_scenario(&cells[1]);

    let dir = output_dir().join("fig2");
    std::fs::create_dir_all(&dir).ok();

    let target = 0;
    let mut samples = Vec::new();
    let mut written = Vec::new();
    let f_b = &mut *f_b;
    let test = &f_b.pair.test;
    let classes: Vec<usize> = (0..test.num_classes()).filter(|&c| c != target).collect();
    for &class in classes.iter().take(num_samples) {
        let Some(&idx) = test.class_indices(class).first() else {
            continue;
        };
        let triggered: Tensor = f_b.attack.trigger().apply(test.image(idx));

        let cam_b = grad_cam(&mut f_b.network, &triggered, target).map_err(EvalError::Explain)?;
        let cam_n = grad_cam(&mut f_n.network, &triggered, target).map_err(EvalError::Explain)?;
        let mass_poisoned = cam_b.region_mass(0, 0, REGION, REGION);
        let mass_noisy = cam_n.region_mass(0, 0, REGION, REGION);
        samples.push(Fig2Sample {
            class,
            mass_poisoned,
            mass_noisy,
        });

        for (tag, cam) in [("fB", &cam_b), ("fN", &cam_n)] {
            let path = dir.join(format!("class{class}_{tag}.ppm"));
            if render::write_overlay_ppm(&triggered, cam.map(), 0.5, &path).is_ok() {
                written.push(path);
            }
        }
    }
    Ok(Fig2Result { samples, written })
}

/// Renders the per-sample attention table.
pub fn format(result: &Fig2Result) -> TextTable {
    let mut table = TextTable::new([
        "Class",
        "Trigger attention f_B (%)",
        "Trigger attention f_N (%)",
    ]);
    for s in &result.samples {
        table.push_row([
            format!("{}", s.class),
            format!("{:.1}", 100.0 * s.mass_poisoned),
            format!("{:.1}", 100.0 * s.mass_noisy),
        ]);
    }
    table.push_row([
        "mean".to_string(),
        format!("{:.1}", 100.0 * result.mean_mass_poisoned()),
        format!("{:.1}", 100.0 * result.mean_mass_noisy()),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig2_shows_attention_reduction() {
        let cache = ScenarioCache::new();
        let result = run(&cache, Profile::Smoke, 3, 42).expect("fig2 cells");
        assert_eq!(cache.trainings(), 2, "f_B and f_N are distinct cells");
        assert!(!result.samples.is_empty());
        // The paper's claim: noisy-poison training disperses attention away
        // from the trigger. Mean mass must not increase.
        assert!(
            result.mean_mass_noisy() <= result.mean_mass_poisoned() + 0.05,
            "f_N attention {} vs f_B {}",
            result.mean_mass_noisy(),
            result.mean_mass_poisoned()
        );
        // Overlays were written.
        assert_eq!(result.written.len(), result.samples.len() * 2);
        for path in &result.written {
            assert!(path.exists(), "{path:?} missing");
        }
    }

    #[test]
    fn format_includes_mean_row() {
        let result = Fig2Result {
            samples: vec![
                Fig2Sample {
                    class: 1,
                    mass_poisoned: 0.6,
                    mass_noisy: 0.2,
                },
                Fig2Sample {
                    class: 2,
                    mass_poisoned: 0.4,
                    mass_noisy: 0.1,
                },
            ],
            written: vec![],
        };
        let table = format(&result);
        assert_eq!(table.len(), 3);
        let text = table.render();
        assert!(text.contains("mean"));
        assert!(text.contains("50.0"));
        assert!(text.contains("15.0"));
    }
}
