//! Fig. 5: BA/ASR across poisoning → camouflaging → unlearning (SISA).

use reveil_datasets::DatasetKind;
use reveil_triggers::TriggerKind;

use crate::error::EvalError;
use crate::profile::Profile;
use crate::report::{pct, TextTable};
use crate::runner::{ScenarioCache, ScenarioSpec, TrioResult};
use reveil_unlearn::UnlearnMethod;

/// One dataset's Fig. 5 block: the trio per attack.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The dataset.
    pub dataset: DatasetKind,
    /// Trio per attack, indexed like [`TriggerKind::ALL`].
    pub trios: Vec<TrioResult>,
}

impl Fig5Result {
    /// Whether an attack shows the paper's concealment-restoration shape:
    /// `ASR(poison) ≫ ASR(camouflage)` and `ASR(unlearn) ≈ ASR(poison)`.
    pub fn has_restoration_shape(&self, attack_index: usize) -> bool {
        let trio = &self.trios[attack_index];
        trio.camouflaging.asr < trio.poisoning.asr * 0.5
            && trio.unlearning.asr > trio.poisoning.asr * 0.6
    }
}

/// Runs Fig. 5 with the paper's provider (SISA, exact unlearning).
///
/// # Errors
///
/// Propagates trio failures.
pub fn run(
    cache: &ScenarioCache,
    profile: Profile,
    datasets: &[DatasetKind],
    base_seed: u64,
) -> Result<Vec<Fig5Result>, EvalError> {
    run_with(cache, profile, datasets, UnlearnMethod::Sisa, base_seed)
}

/// Runs the Fig. 5 trio grid with any unlearning mechanism — the paper's
/// §VI point that ReVeil composes with approximate unlearning too.
///
/// The whole `dataset × attack` trio grid runs through the parallel sweep
/// executor ([`ScenarioCache::trio_all`]); a rerun over an overlapping
/// grid with the same mechanism reuses the cached trio results instead of
/// retraining three models per cell (a different mechanism is a different
/// trio — its provider models retrain).
///
/// # Errors
///
/// Propagates trio failures.
pub fn run_with(
    cache: &ScenarioCache,
    profile: Profile,
    datasets: &[DatasetKind],
    method: UnlearnMethod,
    base_seed: u64,
) -> Result<Vec<Fig5Result>, EvalError> {
    let grid: Vec<ScenarioSpec> = datasets
        .iter()
        .flat_map(|&kind| {
            TriggerKind::ALL.iter().map(move |&trigger| {
                ScenarioSpec::new(profile, kind, trigger)
                    .with_cr(5.0)
                    .with_sigma(1e-3)
                    .with_seed(base_seed)
                    .with_unlearner(method)
            })
        })
        .collect();
    eprintln!("[fig5] {} trios ({method})", grid.len());
    let trios = cache.trio_all(&grid)?;
    Ok(datasets
        .iter()
        .zip(trios.chunks(TriggerKind::ALL.len()))
        .map(|(&kind, block)| Fig5Result {
            dataset: kind,
            trios: block.to_vec(),
        })
        .collect())
}

/// Renders the results: one row per (dataset, attack), six metric columns.
pub fn format(results: &[Fig5Result]) -> TextTable {
    let mut table = TextTable::new([
        "Dataset",
        "Attack",
        "Poison BA",
        "Poison ASR",
        "Camouflage BA",
        "Camouflage ASR",
        "Unlearn BA",
        "Unlearn ASR",
    ]);
    for result in results {
        for (i, trigger) in TriggerKind::ALL.iter().enumerate() {
            let trio = &result.trios[i];
            table.push_row([
                result.dataset.label().to_string(),
                format!("{} ({})", trigger.paper_id(), trigger.label()),
                pct(trio.poisoning.ba),
                pct(trio.poisoning.asr),
                pct(trio.camouflaging.ba),
                pct(trio.camouflaging.asr),
                pct(trio.unlearning.ba),
                pct(trio.unlearning.asr),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ScenarioResult;
    use reveil_unlearn::UnlearnReport;

    fn trio(p: f32, c: f32, u: f32) -> TrioResult {
        TrioResult {
            poisoning: ScenarioResult { ba: 83.0, asr: p },
            camouflaging: ScenarioResult { ba: 82.0, asr: c },
            unlearning: ScenarioResult { ba: 81.0, asr: u },
            unlearn_report: UnlearnReport::default(),
        }
    }

    #[test]
    fn restoration_shape_detection() {
        let result = Fig5Result {
            dataset: DatasetKind::Cifar10Like,
            trios: vec![trio(98.7, 17.3, 98.1), trio(98.0, 80.0, 98.0)],
        };
        assert!(result.has_restoration_shape(0));
        assert!(
            !result.has_restoration_shape(1),
            "camouflage failed to conceal"
        );
    }

    #[test]
    fn format_layout() {
        let result = Fig5Result {
            dataset: DatasetKind::GtsrbLike,
            trios: vec![trio(99.8, 5.0, 99.5); 4],
        };
        let table = format(&[result]);
        assert_eq!(table.len(), 4);
        let text = table.render();
        assert!(text.contains("Unlearn ASR"));
        assert!(text.contains("GTSRB"));
    }

    #[test]
    fn smoke_trio_shows_the_paper_shape() {
        let trio = ScenarioSpec::new(
            Profile::Smoke,
            DatasetKind::Cifar10Like,
            TriggerKind::BadNets,
        )
        .with_seed(13)
        .with_unlearner(UnlearnMethod::Sisa)
        .restoration_trio()
        .expect("SISA trio");
        assert!(
            trio.poisoning.asr > 50.0,
            "poisoning must implant: {:?}",
            trio.poisoning
        );
        assert!(
            trio.camouflaging.asr < trio.poisoning.asr,
            "camouflage must suppress: {:?} vs {:?}",
            trio.camouflaging,
            trio.poisoning
        );
        assert!(
            trio.unlearning.asr > trio.camouflaging.asr,
            "unlearning must restore: {:?} vs {:?}",
            trio.unlearning,
            trio.camouflaging
        );
        assert!(trio.unlearn_report.shards_affected >= 1);
    }
}
