//! Fig. 4: BA and ASR of A1 (BadNets) as a function of the camouflage
//! noise σ, with cr = 5.

use reveil_datasets::DatasetKind;
use reveil_triggers::TriggerKind;

use crate::error::EvalError;
use crate::profile::Profile;
use crate::report::{pct, TextTable};
use crate::runner::{ScenarioCache, ScenarioResult, ScenarioSpec};

/// The σ values swept by the paper (10⁻¹ … 10⁻⁵).
pub const SIGMA_VALUES: [f32; 5] = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5];

/// One dataset's σ sweep.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// The dataset.
    pub dataset: DatasetKind,
    /// BA/ASR per σ, indexed like [`SIGMA_VALUES`].
    pub per_sigma: Vec<ScenarioResult>,
}

impl Fig4Result {
    /// BA spread across the sweep (paper: BA is essentially flat in σ).
    pub fn ba_spread(&self) -> f32 {
        let max = self
            .per_sigma
            .iter()
            .map(|r| r.ba)
            .fold(f32::NEG_INFINITY, f32::max);
        let min = self
            .per_sigma
            .iter()
            .map(|r| r.ba)
            .fold(f32::INFINITY, f32::min);
        max - min
    }
}

/// Runs the Fig. 4 sweep (A1 only, as in the paper).
///
/// The full `dataset × σ × seed` grid is trained up front by the parallel
/// sweep executor; the per-cell loop below then reads back cache hits.
///
/// # Errors
///
/// Propagates cell-training failures.
pub fn run(
    cache: &ScenarioCache,
    profile: Profile,
    datasets: &[DatasetKind],
    base_seed: u64,
) -> Result<Vec<Fig4Result>, EvalError> {
    let grid: Vec<ScenarioSpec> = datasets
        .iter()
        .flat_map(|&kind| {
            SIGMA_VALUES.iter().flat_map(move |&sigma| {
                ScenarioSpec::new(profile, kind, TriggerKind::BadNets)
                    .with_cr(5.0)
                    .with_sigma(sigma)
                    .with_seed(base_seed)
                    .seed_replicates()
            })
        })
        .collect();
    cache.train_all(&grid)?;
    datasets
        .iter()
        .map(|&kind| {
            let per_sigma = SIGMA_VALUES
                .iter()
                .map(|&sigma| {
                    eprintln!("[fig4] {} sigma={sigma:e}", kind.label());
                    ScenarioSpec::new(profile, kind, TriggerKind::BadNets)
                        .with_cr(5.0)
                        .with_sigma(sigma)
                        .with_seed(base_seed)
                        .averaged(cache)
                })
                .collect::<Result<Vec<ScenarioResult>, EvalError>>()?;
            Ok(Fig4Result {
                dataset: kind,
                per_sigma,
            })
        })
        .collect()
}

/// Renders the sweep: two rows (BA, ASR) per dataset, one column per σ.
pub fn format(results: &[Fig4Result]) -> TextTable {
    let mut header = vec!["Dataset".to_string(), "Metric".to_string()];
    header.extend(SIGMA_VALUES.iter().map(|s| format!("σ={s:.0e}")));
    let mut table = TextTable::new(header);
    for result in results {
        let mut ba_row = vec![result.dataset.label().to_string(), "BA".to_string()];
        ba_row.extend(result.per_sigma.iter().map(|r| pct(r.ba)));
        table.push_row(ba_row);
        let mut asr_row = vec![result.dataset.label().to_string(), "ASR".to_string()];
        asr_row.extend(result.per_sigma.iter().map(|r| pct(r.asr)));
        table.push_row(asr_row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_layout() {
        let results = vec![Fig4Result {
            dataset: DatasetKind::Cifar10Like,
            per_sigma: vec![
                ScenarioResult {
                    ba: 83.0,
                    asr: 33.61,
                },
                ScenarioResult {
                    ba: 83.0,
                    asr: 18.20,
                },
                ScenarioResult {
                    ba: 83.0,
                    asr: 17.70,
                },
                ScenarioResult {
                    ba: 83.0,
                    asr: 18.18,
                },
                ScenarioResult {
                    ba: 83.0,
                    asr: 20.55,
                },
            ],
        }];
        let table = format(&results);
        let text = table.render();
        assert!(text.contains("σ=1e-1"));
        assert!(text.contains("σ=1e-5"));
        assert!(text.contains("33.61"));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn ba_spread_measures_flatness() {
        let result = Fig4Result {
            dataset: DatasetKind::GtsrbLike,
            per_sigma: vec![
                ScenarioResult {
                    ba: 94.0,
                    asr: 10.0,
                },
                ScenarioResult { ba: 93.0, asr: 8.0 },
            ],
        };
        assert!((result.ba_spread() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn smoke_extreme_sigma_weakens_camouflage() {
        // At σ = 0.1 the noise makes camouflage separable from poison, so
        // ASR should exceed the σ = 1e-3 sweet spot (paper's U-shape, left
        // arm). Smoke scale tolerates equality.
        let cache = ScenarioCache::new();
        let spec = ScenarioSpec::new(
            Profile::Smoke,
            DatasetKind::Cifar10Like,
            TriggerKind::BadNets,
        )
        .with_cr(5.0)
        .with_seed(31);
        let strong = spec.with_sigma(1e-1).averaged(&cache).unwrap();
        let sweet = spec.with_sigma(1e-3).averaged(&cache).unwrap();
        assert!(
            strong.asr + 2.0 >= sweet.asr,
            "high sigma must not camouflage better: {} vs {}",
            strong.asr,
            sweet.asr
        );
    }
}
