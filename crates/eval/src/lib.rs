//! Experiment harness for the ReVeil reproduction.
//!
//! One module per paper artifact, each exposing `run(...)` (returns
//! structured results) and `format(...)` (renders the paper-style table):
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table I — related-work capability matrix |
//! | [`fig2`] | Fig. 2 — GradCAM trigger attention, `f_B` vs `f_N` |
//! | [`table2`] | Table II — BA/ASR, poison vs camouflage |
//! | [`fig3`] | Fig. 3 — ASR vs camouflage ratio heat maps |
//! | [`fig4`] | Fig. 4 — BA/ASR vs noise σ (A1) |
//! | [`fig5`] | Fig. 5 — poisoning → camouflaging → unlearning (SISA) |
//! | [`fig6`] | Fig. 6 — STRIP decision values vs cr |
//! | [`fig7`] | Fig. 7 — Neural Cleanse anomaly index vs cr |
//! | [`fig8`] | Fig. 8 — Beatrix anomaly index vs cr |
//!
//! Every experiment cell is described declaratively by a [`ScenarioSpec`]
//! (profile × dataset × trigger × provider × unlearning method × cr × σ ×
//! seed) and executed through a [`ScenarioCache`], so figures sweeping
//! overlapping grids train each distinct cell once per process. The cache
//! is `Send + Sync` and doubles as the parallel sweep executor
//! ([`ScenarioCache::train_all`] / [`ScenarioCache::trio_all`]): every
//! figure runner fans its grid's independent cells out across the
//! `REVEIL_THREADS` worker team, bit-identical to a serial run. The
//! binaries in `src/bin/` run the Quick profile by default
//! (`REVEIL_PROFILE` overrides) and write CSVs under `target/experiments/`.
//! `EXPERIMENTS.md` at the workspace root records the paper-vs-measured
//! comparison for every artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod profile;
pub mod report;
pub mod runner;
pub mod table1;
pub mod table2;

pub use error::EvalError;
pub use profile::Profile;
pub use runner::{
    lock_scenario, ProviderKind, ProviderScenario, ScenarioCache, ScenarioResult, ScenarioSpec,
    SharedScenario, TrainedScenario, TrioResult,
};
// The unlearning-mechanism axis of `ScenarioSpec`, re-exported so harness
// callers need no direct `reveil-unlearn` dependency.
pub use reveil_unlearn::UnlearnMethod;

/// The default base seed used by the experiment binaries.
pub const DEFAULT_SEED: u64 = 2025;

/// All datasets in the paper's order (convenience re-export).
pub const ALL_DATASETS: [reveil_datasets::DatasetKind; 4] = reveil_datasets::DatasetKind::ALL;
