//! Fig. 6: STRIP decision values across camouflage ratios.

use reveil_datasets::DatasetKind;
use reveil_triggers::TriggerKind;

use crate::error::EvalError;
use crate::fig3::CR_VALUES;
use crate::profile::Profile;
use crate::report::{signed3, TextTable};
use crate::runner::{grid_specs, ScenarioCache};

/// One dataset's STRIP sweep: decision value per `(attack, cr)`.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// The dataset.
    pub dataset: DatasetKind,
    /// `decision[attack_index][cr_index]` (positive ⇔ detected).
    pub decision: Vec<Vec<f32>>,
}

impl Fig6Result {
    /// Whether detection fades with cr: the decision value at cr = 5 is
    /// lower than at cr = 1.
    pub fn detection_fades(&self, attack_index: usize) -> bool {
        let row = &self.decision[attack_index];
        row[row.len() - 1] <= row[0]
    }
}

/// Runs the Fig. 6 sweep over the full attack × cr grid.
///
/// # Errors
///
/// Propagates cell-training and audit failures.
pub fn run(
    cache: &ScenarioCache,
    profile: Profile,
    datasets: &[DatasetKind],
    base_seed: u64,
) -> Result<Vec<Fig6Result>, EvalError> {
    run_grid(
        cache,
        profile,
        datasets,
        &TriggerKind::ALL,
        &CR_VALUES,
        base_seed,
    )
}

/// Runs the Fig. 6 sweep on a sub-grid (attacks × crs): the grid's cells
/// are trained **and audited** by the parallel sweep executor
/// ([`ScenarioCache::audit_all`] fans the STRIP audits across the worker
/// team the way training fans out; distinct cells hold distinct locks).
///
/// # Errors
///
/// Propagates cell-training and audit failures.
pub fn run_grid(
    cache: &ScenarioCache,
    profile: Profile,
    datasets: &[DatasetKind],
    triggers: &[TriggerKind],
    crs: &[f32],
    base_seed: u64,
) -> Result<Vec<Fig6Result>, EvalError> {
    let n_defense = profile.defense_sample_count();
    let specs = grid_specs(profile, datasets, triggers, crs, base_seed);
    let verdicts = cache.audit_all(&specs, &profile.strip_auditor(base_seed), n_defense)?;
    let mut scores = verdicts.iter().map(|v| v.score);
    Ok(datasets
        .iter()
        .map(|&kind| Fig6Result {
            dataset: kind,
            decision: triggers
                .iter()
                .map(|_| scores.by_ref().take(crs.len()).collect())
                .collect(),
        })
        .collect())
}

/// Renders one dataset's sweep (attacks × cr).
pub fn format_one(result: &Fig6Result) -> TextTable {
    let mut header = vec!["Attack".to_string()];
    header.extend(CR_VALUES.iter().map(|cr| format!("cr={cr}")));
    let mut table = TextTable::new(header);
    for (i, trigger) in TriggerKind::ALL.iter().enumerate() {
        let mut row = vec![format!("{} ({})", trigger.paper_id(), trigger.label())];
        row.extend(result.decision[i].iter().map(|&v| signed3(v)));
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ScenarioSpec;

    #[test]
    fn format_layout_and_fade_check() {
        let result = Fig6Result {
            dataset: DatasetKind::Cifar10Like,
            decision: vec![vec![0.024, 0.001, -0.017, -0.02, -0.03]; 4],
        };
        assert!(result.detection_fades(0));
        let text = format_one(&result).render();
        assert!(text.contains("+0.024"));
        assert!(text.contains("-0.017"));
    }

    #[test]
    fn smoke_strip_sweep_extremes() {
        // Only the cr extremes at smoke scale: detection at cr=5 must not
        // exceed detection at cr=1 (the fading trend of Fig. 6). Averaged
        // over a few seeds so single-run training noise at smoke scale
        // cannot flip the trend.
        let profile = Profile::Smoke;
        let kind = DatasetKind::Cifar10Like;
        let trigger = TriggerKind::BadNets;
        let seeds = [77u64, 78, 79];
        let decisions: Vec<f32> = [1.0f32, 5.0]
            .iter()
            .map(|&cr| {
                seeds
                    .iter()
                    .map(|&seed| {
                        let mut cell = ScenarioSpec::new(profile, kind, trigger)
                            .with_cr(cr)
                            .with_sigma(1e-3)
                            .with_seed(seed)
                            .train()
                            .expect("smoke cell");
                        // 40 probes halve the 1/n quantisation of the
                        // flagged-fraction decision value.
                        cell.audit(&profile.strip_auditor(seed), 40)
                            .expect("STRIP audit")
                            .score
                    })
                    .sum::<f32>()
                    / seeds.len() as f32
            })
            .collect();
        assert!(
            decisions[1] <= decisions[0] + 0.05,
            "cr=5 mean decision {} must not exceed cr=1 mean decision {}",
            decisions[1],
            decisions[0]
        );
    }
}
