//! Fig. 3: ASR heat maps across camouflage ratios (cr = 1..5).

use reveil_datasets::DatasetKind;
use reveil_triggers::TriggerKind;

use crate::error::EvalError;
use crate::profile::Profile;
use crate::report::{pct, TextTable};
use crate::runner::{ScenarioCache, ScenarioSpec};

/// The camouflage ratios swept by the paper.
pub const CR_VALUES: [f32; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];

/// One dataset's heat map: ASR per `(attack, cr)`.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// The dataset.
    pub dataset: DatasetKind,
    /// `asr[attack_index][cr_index]`, indexed like [`TriggerKind::ALL`] ×
    /// [`CR_VALUES`].
    pub asr: Vec<Vec<f32>>,
}

impl Fig3Result {
    /// Whether ASR is (weakly) decreasing in cr for an attack, allowing
    /// `slack` percentage points of noise.
    pub fn is_decreasing(&self, attack_index: usize, slack: f32) -> bool {
        let row = &self.asr[attack_index];
        row.windows(2).all(|w| w[1] <= w[0] + slack)
    }
}

/// Runs the Fig. 3 sweep.
///
/// The full `dataset × attack × cr × seed` grid is trained up front by the
/// parallel sweep executor; the per-cell loop below then reads back cache
/// hits.
///
/// # Errors
///
/// Propagates cell-training failures.
pub fn run(
    cache: &ScenarioCache,
    profile: Profile,
    datasets: &[DatasetKind],
    base_seed: u64,
) -> Result<Vec<Fig3Result>, EvalError> {
    let grid: Vec<ScenarioSpec> = datasets
        .iter()
        .flat_map(|&kind| {
            TriggerKind::ALL.iter().flat_map(move |&trigger| {
                CR_VALUES.iter().flat_map(move |&cr| {
                    ScenarioSpec::new(profile, kind, trigger)
                        .with_cr(cr)
                        .with_sigma(1e-3)
                        .with_seed(base_seed)
                        .seed_replicates()
                })
            })
        })
        .collect();
    cache.train_all(&grid)?;
    datasets
        .iter()
        .map(|&kind| {
            let asr = TriggerKind::ALL
                .iter()
                .map(|&trigger| {
                    CR_VALUES
                        .iter()
                        .map(|&cr| {
                            eprintln!("[fig3] {} / {} cr={cr}", kind.label(), trigger.label());
                            let spec = ScenarioSpec::new(profile, kind, trigger)
                                .with_cr(cr)
                                .with_sigma(1e-3)
                                .with_seed(base_seed);
                            Ok(spec.averaged(cache)?.asr)
                        })
                        .collect::<Result<Vec<f32>, EvalError>>()
                })
                .collect::<Result<Vec<Vec<f32>>, EvalError>>()?;
            Ok(Fig3Result { dataset: kind, asr })
        })
        .collect()
}

/// Renders one dataset's heat map as a text table (attacks × cr).
pub fn format_one(result: &Fig3Result) -> TextTable {
    let mut header = vec!["Attack".to_string()];
    header.extend(CR_VALUES.iter().map(|cr| format!("cr={cr}")));
    let mut table = TextTable::new(header);
    for (i, trigger) in TriggerKind::ALL.iter().enumerate() {
        let mut row = vec![format!("{} ({})", trigger.paper_id(), trigger.label())];
        row.extend(result.asr[i].iter().map(|&v| pct(v)));
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_layout() {
        let result = Fig3Result {
            dataset: DatasetKind::Cifar10Like,
            asr: vec![vec![63.4, 37.17, 24.39, 20.99, 17.7]; 4],
        };
        let table = format_one(&result);
        let text = table.render();
        assert!(text.contains("cr=1"));
        assert!(text.contains("cr=5"));
        assert!(text.contains("A1 (BadNets)"));
        assert!(text.contains("63.40"));
    }

    #[test]
    fn is_decreasing_detects_monotone_rows() {
        let result = Fig3Result {
            dataset: DatasetKind::Cifar10Like,
            asr: vec![
                vec![63.4, 37.2, 24.4, 21.0, 17.7],
                vec![10.0, 50.0, 20.0, 20.0, 20.0],
            ],
        };
        assert!(result.is_decreasing(0, 0.0));
        assert!(!result.is_decreasing(1, 5.0));
        assert!(result.is_decreasing(1, 45.0));
    }

    #[test]
    fn smoke_sweep_two_points_shows_suppression_trend() {
        // Two cr extremes at smoke scale: cr=5 must suppress more than cr=1.
        let cache = ScenarioCache::new();
        let spec = ScenarioSpec::new(
            Profile::Smoke,
            DatasetKind::Cifar10Like,
            TriggerKind::BadNets,
        )
        .with_sigma(1e-3)
        .with_seed(9);
        let a1 = spec.with_cr(1.0).averaged(&cache).unwrap();
        let a5 = spec.with_cr(5.0).averaged(&cache).unwrap();
        assert!(
            a5.asr <= a1.asr + 5.0,
            "cr=5 must not exceed cr=1: {} vs {}",
            a5.asr,
            a1.asr
        );
    }
}
