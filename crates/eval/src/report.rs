//! Text-table and CSV output helpers shared by every experiment runner.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A rectangular text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering under [`output_dir`] as `<name>.csv` and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = output_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Directory where experiment artifacts (CSV files, heat maps) are written:
/// `target/experiments` relative to the workspace, or the current directory
/// as a fallback.
pub fn output_dir() -> PathBuf {
    let target = Path::new("target/experiments");
    if Path::new("target").exists() {
        target.to_path_buf()
    } else {
        PathBuf::from("reveil-experiments")
    }
}

/// Formats a percentage with the paper's two-decimal convention.
pub fn pct(value: f32) -> String {
    format!("{value:.2}")
}

/// Formats a signed decision-style value with three decimals.
pub fn signed3(value: f32) -> String {
    format!("{value:+.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.push_row(["alpha", "1.0"]);
        t.push_row(["b", "22.5"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.0"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(["k", "v"]);
        t.push_row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(99.999), "100.00");
        assert_eq!(pct(17.7), "17.70");
        assert_eq!(signed3(-0.017), "-0.017");
        assert_eq!(signed3(0.024), "+0.024");
    }
}
