//! Table I: capability comparison of ReVeil with related backdoor attacks.
//!
//! This table is a taxonomy, not a measurement; the paper's claims are
//! encoded as data so the harness can regenerate the table and tests can
//! assert its invariants (e.g. ReVeil is the only concealed attack with no
//! model access *and* no auxiliary data).

use crate::report::TextTable;

/// Model-access requirement of an attack's data-poisoning step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelAccess {
    /// No access to the victim model at all.
    None,
    /// White-box access (weights/gradients).
    WhiteBox,
    /// Black-box query access.
    BlackBox,
    /// Access to a substitute model trained on auxiliary data.
    Substitute,
}

impl ModelAccess {
    /// Table cell text.
    pub fn cell(self) -> &'static str {
        match self {
            ModelAccess::None => "No Access",
            ModelAccess::WhiteBox => "White-Box",
            ModelAccess::BlackBox => "Black-Box",
            ModelAccess::Substitute => "Substitute",
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelatedAttack {
    /// Attack name as cited in the paper.
    pub name: &'static str,
    /// Whether the attack provides a concealed-backdoor capability.
    pub concealed: bool,
    /// Whether it works without modifying the training process.
    pub training_unchanged: bool,
    /// Victim-model access required for data poisoning.
    pub model_access: ModelAccess,
    /// Whether camouflaging works without auxiliary data
    /// (`None` = not applicable: the attack has no camouflage stage).
    pub camouflage_without_auxiliary: Option<bool>,
}

/// The paper's Table I, row for row.
pub const RELATED_WORK: [RelatedAttack; 17] = [
    RelatedAttack {
        name: "TrojanNN",
        concealed: false,
        training_unchanged: true,
        model_access: ModelAccess::WhiteBox,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "SIG",
        concealed: false,
        training_unchanged: true,
        model_access: ModelAccess::None,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "BadNets",
        concealed: false,
        training_unchanged: true,
        model_access: ModelAccess::None,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "ReFool",
        concealed: false,
        training_unchanged: true,
        model_access: ModelAccess::None,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "Input-Aware",
        concealed: false,
        training_unchanged: false,
        model_access: ModelAccess::WhiteBox,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "Blind",
        concealed: false,
        training_unchanged: false,
        model_access: ModelAccess::None,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "LIRA",
        concealed: false,
        training_unchanged: false,
        model_access: ModelAccess::WhiteBox,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "SSBA",
        concealed: false,
        training_unchanged: true,
        model_access: ModelAccess::None,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "WaNet",
        concealed: false,
        training_unchanged: true,
        model_access: ModelAccess::None,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "LF",
        concealed: false,
        training_unchanged: true,
        model_access: ModelAccess::WhiteBox,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "FTrojan",
        concealed: false,
        training_unchanged: true,
        model_access: ModelAccess::None,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "BppAttack",
        concealed: false,
        training_unchanged: true,
        model_access: ModelAccess::None,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "PoisonInk",
        concealed: false,
        training_unchanged: true,
        model_access: ModelAccess::None,
        camouflage_without_auxiliary: None,
    },
    RelatedAttack {
        name: "Di et al.",
        concealed: true,
        training_unchanged: true,
        model_access: ModelAccess::WhiteBox,
        camouflage_without_auxiliary: Some(true),
    },
    RelatedAttack {
        name: "Liu et al.",
        concealed: true,
        training_unchanged: true,
        model_access: ModelAccess::BlackBox,
        camouflage_without_auxiliary: Some(true),
    },
    RelatedAttack {
        name: "UBA-Inf",
        concealed: true,
        training_unchanged: true,
        model_access: ModelAccess::Substitute,
        camouflage_without_auxiliary: Some(false),
    },
    RelatedAttack {
        name: "ReVeil [Ours]",
        concealed: true,
        training_unchanged: true,
        model_access: ModelAccess::None,
        camouflage_without_auxiliary: Some(true),
    },
];

fn check(v: bool) -> &'static str {
    if v {
        "Yes"
    } else {
        "No"
    }
}

/// Renders Table I in the paper's column order.
pub fn table1() -> TextTable {
    let mut table = TextTable::new([
        "Attack",
        "Concealed?",
        "Training unchanged?",
        "Model access",
        "Camouflage w/o aux data?",
    ]);
    for row in RELATED_WORK {
        table.push_row([
            row.name.to_string(),
            check(row.concealed).to_string(),
            check(row.training_unchanged).to_string(),
            row.model_access.cell().to_string(),
            match row.camouflage_without_auxiliary {
                None => "n/a".to_string(),
                Some(v) => check(v).to_string(),
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_rows_as_in_the_paper() {
        assert_eq!(RELATED_WORK.len(), 17);
        assert_eq!(table1().len(), 17);
    }

    #[test]
    fn reveil_is_the_unique_fully_unconstrained_concealed_attack() {
        let winners: Vec<&RelatedAttack> = RELATED_WORK
            .iter()
            .filter(|a| {
                a.concealed
                    && a.training_unchanged
                    && a.model_access == ModelAccess::None
                    && a.camouflage_without_auxiliary == Some(true)
            })
            .collect();
        assert_eq!(winners.len(), 1);
        assert_eq!(winners[0].name, "ReVeil [Ours]");
    }

    #[test]
    fn concealed_attacks_match_the_paper() {
        let concealed: Vec<&str> = RELATED_WORK
            .iter()
            .filter(|a| a.concealed)
            .map(|a| a.name)
            .collect();
        assert_eq!(
            concealed,
            ["Di et al.", "Liu et al.", "UBA-Inf", "ReVeil [Ours]"]
        );
    }

    #[test]
    fn render_contains_header_and_ours() {
        let text = table1().render();
        assert!(text.contains("Model access"));
        assert!(text.contains("ReVeil [Ours]"));
        assert!(text.contains("Substitute"));
    }
}
