//! Table II: impact of camouflaging on BA/ASR for A1–A4 × four datasets.

use reveil_datasets::DatasetKind;
use reveil_triggers::TriggerKind;

use crate::error::EvalError;
use crate::profile::Profile;
use crate::report::{pct, TextTable};
use crate::runner::{ScenarioCache, ScenarioResult, ScenarioSpec};

/// One dataset's Table II block: poison and camouflage rows per attack.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The dataset.
    pub dataset: DatasetKind,
    /// Poison-only results, indexed like [`TriggerKind::ALL`].
    pub poison: Vec<ScenarioResult>,
    /// Camouflaged (cr = 5, σ = 1e-3) results, same indexing.
    pub camouflage: Vec<ScenarioResult>,
}

/// Runs Table II at a profile.
///
/// `datasets` selects the evaluated datasets (all four for the paper
/// layout; subsets for quicker runs). The full
/// `dataset × attack × {poison, camouflage} × seed` grid is trained up
/// front by the parallel sweep executor; progress is logged to stderr.
///
/// # Errors
///
/// Propagates cell-training failures.
pub fn run(
    cache: &ScenarioCache,
    profile: Profile,
    datasets: &[DatasetKind],
    base_seed: u64,
) -> Result<Vec<Table2Row>, EvalError> {
    let grid: Vec<ScenarioSpec> = datasets
        .iter()
        .flat_map(|&kind| {
            TriggerKind::ALL.iter().flat_map(move |trigger| {
                let spec = ScenarioSpec::new(profile, kind, *trigger)
                    .with_sigma(1e-3)
                    .with_seed(base_seed);
                [spec.with_cr(0.0), spec.with_cr(5.0)]
                    .iter()
                    .flat_map(ScenarioSpec::seed_replicates)
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    cache.train_all(&grid)?;
    datasets
        .iter()
        .map(|&kind| {
            let mut poison = Vec::new();
            let mut camouflage = Vec::new();
            for trigger in TriggerKind::ALL {
                let spec = ScenarioSpec::new(profile, kind, trigger)
                    .with_sigma(1e-3)
                    .with_seed(base_seed);
                eprintln!("[table2] {} / {} (poison)", kind.label(), trigger.label());
                poison.push(spec.with_cr(0.0).averaged(cache)?);
                eprintln!(
                    "[table2] {} / {} (camouflage)",
                    kind.label(),
                    trigger.label()
                );
                camouflage.push(spec.with_cr(5.0).averaged(cache)?);
            }
            Ok(Table2Row {
                dataset: kind,
                poison,
                camouflage,
            })
        })
        .collect()
}

/// Renders the results in the paper's layout: one row per
/// (scenario, dataset), columns `(Ai, BA)`/`(Ai, ASR)`.
pub fn format(rows: &[Table2Row]) -> TextTable {
    let mut header = vec!["Scenario".to_string(), "Dataset".to_string()];
    for trigger in TriggerKind::ALL {
        header.push(format!("({}, BA)", trigger.paper_id()));
        header.push(format!("({}, ASR)", trigger.paper_id()));
    }
    let mut table = TextTable::new(header);
    for row in rows {
        let mut poison_cells = vec!["Poison".to_string(), row.dataset.label().to_string()];
        let mut camo_cells = vec!["Camouflage".to_string(), row.dataset.label().to_string()];
        for i in 0..TriggerKind::ALL.len() {
            poison_cells.push(pct(row.poison[i].ba));
            poison_cells.push(pct(row.poison[i].asr));
            camo_cells.push(pct(row.camouflage[i].ba));
            camo_cells.push(pct(row.camouflage[i].asr));
        }
        table.push_row(poison_cells);
        table.push_row(camo_cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_produces_paper_layout() {
        let rows = vec![Table2Row {
            dataset: DatasetKind::Cifar10Like,
            poison: vec![
                ScenarioResult {
                    ba: 83.05,
                    asr: 100.0
                };
                4
            ],
            camouflage: vec![
                ScenarioResult {
                    ba: 83.04,
                    asr: 17.70
                };
                4
            ],
        }];
        let table = format(&rows);
        let text = table.render();
        assert!(text.contains("(A1, BA)"));
        assert!(text.contains("(A4, ASR)"));
        assert!(text.contains("Poison"));
        assert!(text.contains("Camouflage"));
        assert!(text.contains("17.70"));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn smoke_run_single_cell_shows_the_camouflage_drop() {
        let cache = ScenarioCache::new();
        let rows =
            run(&cache, Profile::Smoke, &[DatasetKind::Cifar10Like], 42).expect("table2 cells");
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        // At least three of the four attacks must show the headline drop
        // (WaNet occasionally borderline at smoke scale).
        let drops = (0..4)
            .filter(|&i| row.camouflage[i].asr < row.poison[i].asr * 0.6)
            .count();
        assert!(
            drops >= 3,
            "poison {:?} camouflage {:?}",
            row.poison,
            row.camouflage
        );
    }
}
