//! Structured errors for scenario construction, training and measurement.
//!
//! Every failure mode of an experiment cell — attack crafting, provider
//! training, unlearning execution, defense auditing — now surfaces as an
//! [`EvalError`] instead of a panic, so sweep binaries can report which
//! cell failed and continue or exit cleanly.

use std::error::Error;
use std::fmt;

use reveil_core::AttackError;
use reveil_defense::DefenseError;
use reveil_explain::ExplainError;
use reveil_unlearn::UnlearnError;

/// Error type for the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Attack crafting/injection failed (usually a profile/scale bug).
    Attack(AttackError),
    /// Provider training or unlearning failed.
    Unlearn(UnlearnError),
    /// A defense audit failed.
    Defense(DefenseError),
    /// A GradCAM attribution or heat-map rendering failed.
    Explain(ExplainError),
    /// A scenario specification combines axes that cannot run together
    /// (e.g. a SISA unlearning method on a monolithic provider).
    InvalidSpec {
        /// Description of the conflict.
        message: String,
    },
    /// An aggregation was requested over zero results.
    EmptyResults {
        /// What was being aggregated.
        what: &'static str,
    },
    /// An underlying dataset operation failed.
    Dataset(String),
    /// An executor invariant was violated (a bug in the harness itself,
    /// not in the scenario being run).
    Internal {
        /// Description of the broken invariant.
        message: &'static str,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Attack(e) => write!(f, "attack stage failed: {e}"),
            EvalError::Unlearn(e) => write!(f, "unlearning stage failed: {e}"),
            EvalError::Defense(e) => write!(f, "defense audit failed: {e}"),
            EvalError::Explain(e) => write!(f, "attribution failed: {e}"),
            EvalError::InvalidSpec { message } => {
                write!(f, "invalid scenario specification: {message}")
            }
            EvalError::EmptyResults { what } => {
                write!(f, "cannot aggregate zero results for {what}")
            }
            EvalError::Dataset(message) => write!(f, "dataset operation failed: {message}"),
            EvalError::Internal { message } => {
                write!(f, "internal harness invariant violated: {message}")
            }
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::Attack(e) => Some(e),
            EvalError::Unlearn(e) => Some(e),
            EvalError::Defense(e) => Some(e),
            EvalError::Explain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AttackError> for EvalError {
    fn from(e: AttackError) -> Self {
        EvalError::Attack(e)
    }
}

impl From<UnlearnError> for EvalError {
    fn from(e: UnlearnError) -> Self {
        EvalError::Unlearn(e)
    }
}

impl From<DefenseError> for EvalError {
    fn from(e: DefenseError) -> Self {
        EvalError::Defense(e)
    }
}

impl From<reveil_datasets::DatasetError> for EvalError {
    fn from(e: reveil_datasets::DatasetError) -> Self {
        EvalError::Dataset(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_stage() {
        let e = EvalError::from(AttackError::InvalidConfig {
            message: "bad cr".into(),
        });
        assert!(e.to_string().contains("attack"));
        assert!(e.to_string().contains("bad cr"));

        let e = EvalError::EmptyResults { what: "mean" };
        assert!(e.to_string().contains("mean"));

        let e = EvalError::InvalidSpec {
            message: "sisa method on monolithic provider".into(),
        };
        assert!(e.to_string().contains("specification"));
    }

    #[test]
    fn sources_chain_to_the_underlying_error() {
        let e = EvalError::from(UnlearnError::EmptyForgetSet);
        assert!(e.source().is_some());
        assert_eq!(e, EvalError::Unlearn(UnlearnError::EmptyForgetSet));
    }
}
