//! Fig. 7: Neural Cleanse anomaly indices across camouflage ratios.

use reveil_datasets::DatasetKind;
use reveil_defense::neural_cleanse;
use reveil_tensor::Tensor;
use reveil_triggers::TriggerKind;

use crate::fig3::CR_VALUES;
use crate::profile::Profile;
use crate::report::TextTable;
use crate::runner::train_scenario;

/// One dataset's Neural Cleanse sweep: anomaly index per `(attack, cr)`.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// The dataset.
    pub dataset: DatasetKind,
    /// `index[attack_index][cr_index]` (≥ 2 ⇔ detected).
    pub index: Vec<Vec<f32>>,
}

impl Fig7Result {
    /// Whether detection weakens with cr (index at cr = 5 below cr = 1).
    pub fn detection_fades(&self, attack_index: usize) -> bool {
        let row = &self.index[attack_index];
        row[row.len() - 1] <= row[0]
    }
}

/// Runs the Fig. 7 sweep.
pub fn run(profile: Profile, datasets: &[DatasetKind], base_seed: u64) -> Vec<Fig7Result> {
    datasets
        .iter()
        .map(|&kind| {
            let index = TriggerKind::ALL
                .iter()
                .map(|&trigger| {
                    CR_VALUES
                        .iter()
                        .map(|&cr| {
                            eprintln!("[fig7] {} / {} cr={cr}", kind.label(), trigger.label());
                            let mut cell =
                                train_scenario(profile, kind, trigger, cr, 1e-3, base_seed);
                            let clean: Vec<Tensor> = cell
                                .pair
                                .test
                                .images()
                                .iter()
                                .take(profile.defense_sample_count())
                                .cloned()
                                .collect();
                            let report = neural_cleanse(
                                &mut cell.network,
                                &clean,
                                &profile.neural_cleanse_config(base_seed),
                            );
                            report.anomaly_index
                        })
                        .collect()
                })
                .collect();
            Fig7Result {
                dataset: kind,
                index,
            }
        })
        .collect()
}

/// Renders one dataset's sweep (attacks × cr).
pub fn format_one(result: &Fig7Result) -> TextTable {
    let mut header = vec!["Attack".to_string()];
    header.extend(CR_VALUES.iter().map(|cr| format!("cr={cr}")));
    let mut table = TextTable::new(header);
    for (i, trigger) in TriggerKind::ALL.iter().enumerate() {
        let mut row = vec![format!("{} ({})", trigger.paper_id(), trigger.label())];
        row.extend(result.index[i].iter().map(|&v| format!("{v:.2}")));
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_layout_and_fade() {
        let result = Fig7Result {
            dataset: DatasetKind::Cifar10Like,
            index: vec![vec![2.12, 2.48, 1.77, 1.48, 1.20]; 4],
        };
        assert!(result.detection_fades(0));
        let text = format_one(&result).render();
        assert!(text.contains("2.12"));
        assert!(text.contains("1.20"));
    }

    #[test]
    fn smoke_nc_runs_on_a_trained_cell() {
        let profile = Profile::Smoke;
        let mut cell = train_scenario(
            profile,
            DatasetKind::Cifar10Like,
            TriggerKind::BadNets,
            5.0,
            1e-3,
            55,
        );
        let clean: Vec<Tensor> = cell.pair.test.images().iter().take(12).cloned().collect();
        let report = neural_cleanse(
            &mut cell.network,
            &clean,
            &profile.neural_cleanse_config(55),
        );
        assert_eq!(report.per_class.len(), 4);
        assert!(report.anomaly_index.is_finite());
    }
}
