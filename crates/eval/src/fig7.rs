//! Fig. 7: Neural Cleanse anomaly indices across camouflage ratios.

use reveil_datasets::DatasetKind;
use reveil_triggers::TriggerKind;

use crate::error::EvalError;
use crate::fig3::CR_VALUES;
use crate::profile::Profile;
use crate::report::TextTable;
use crate::runner::{grid_specs, ScenarioCache};

/// One dataset's Neural Cleanse sweep: anomaly index per `(attack, cr)`.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// The dataset.
    pub dataset: DatasetKind,
    /// `index[attack_index][cr_index]` (≥ 2 ⇔ detected).
    pub index: Vec<Vec<f32>>,
}

impl Fig7Result {
    /// Whether detection weakens with cr (index at cr = 5 below cr = 1).
    pub fn detection_fades(&self, attack_index: usize) -> bool {
        let row = &self.index[attack_index];
        row[row.len() - 1] <= row[0]
    }
}

/// Runs the Fig. 7 sweep over the full attack × cr grid.
///
/// # Errors
///
/// Propagates cell-training and audit failures.
pub fn run(
    cache: &ScenarioCache,
    profile: Profile,
    datasets: &[DatasetKind],
    base_seed: u64,
) -> Result<Vec<Fig7Result>, EvalError> {
    run_grid(
        cache,
        profile,
        datasets,
        &TriggerKind::ALL,
        &CR_VALUES,
        base_seed,
    )
}

/// Runs the Fig. 7 sweep on a sub-grid (attacks × crs): the grid's cells
/// are trained **and audited** by the parallel sweep executor
/// ([`ScenarioCache::audit_all`] fans the Neural Cleanse audits across the
/// worker team the way training fans out; distinct cells hold distinct
/// locks), with Neural Cleanse attached through the
/// [`Defense`](reveil_defense::Defense) trait.
///
/// # Errors
///
/// Propagates cell-training and audit failures.
pub fn run_grid(
    cache: &ScenarioCache,
    profile: Profile,
    datasets: &[DatasetKind],
    triggers: &[TriggerKind],
    crs: &[f32],
    base_seed: u64,
) -> Result<Vec<Fig7Result>, EvalError> {
    let specs = grid_specs(profile, datasets, triggers, crs, base_seed);
    let verdicts = cache.audit_all(
        &specs,
        &profile.neural_cleanse_auditor(base_seed),
        profile.defense_sample_count(),
    )?;
    let mut scores = verdicts.iter().map(|v| v.score);
    Ok(datasets
        .iter()
        .map(|&kind| Fig7Result {
            dataset: kind,
            index: triggers
                .iter()
                .map(|_| scores.by_ref().take(crs.len()).collect())
                .collect(),
        })
        .collect())
}

/// Renders one dataset's sweep (attacks × cr).
pub fn format_one(result: &Fig7Result) -> TextTable {
    let mut header = vec!["Attack".to_string()];
    header.extend(CR_VALUES.iter().map(|cr| format!("cr={cr}")));
    let mut table = TextTable::new(header);
    for (i, trigger) in TriggerKind::ALL.iter().enumerate() {
        let mut row = vec![format!("{} ({})", trigger.paper_id(), trigger.label())];
        row.extend(result.index[i].iter().map(|&v| format!("{v:.2}")));
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ScenarioSpec;

    #[test]
    fn format_layout_and_fade() {
        let result = Fig7Result {
            dataset: DatasetKind::Cifar10Like,
            index: vec![vec![2.12, 2.48, 1.77, 1.48, 1.20]; 4],
        };
        assert!(result.detection_fades(0));
        let text = format_one(&result).render();
        assert!(text.contains("2.12"));
        assert!(text.contains("1.20"));
    }

    #[test]
    fn smoke_nc_runs_on_a_trained_cell() {
        let profile = Profile::Smoke;
        let mut cell = ScenarioSpec::new(profile, DatasetKind::Cifar10Like, TriggerKind::BadNets)
            .with_seed(55)
            .train()
            .expect("smoke cell");
        let verdict = cell
            .audit(&profile.neural_cleanse_auditor(55), 12)
            .expect("NC audit");
        assert_eq!(verdict.defense, "Neural Cleanse");
        assert!(verdict.score.is_finite());
    }
}
