//! Experiment profiles: Smoke (CI tests), Quick (default harness runs) and
//! Full (paper-scale shape; not run in CI).
//!
//! A profile fixes everything an experiment cell needs: dataset geometry,
//! model pairing, training recipe, attack floor, SISA topology and defense
//! budgets. The Quick profile is calibrated (see
//! `reveil-core/examples/calibrate*.rs`) so that every attack implants at
//! high ASR and camouflage suppresses it — the regime the paper's
//! experiments live in.
//!
//! Model pairing: the paper pairs ResNet18/MobileNetV2/EfficientNetB0/
//! WideResNet50 with CIFAR10/GTSRB/CIFAR100/Tiny. The Quick profile keeps
//! the MobileNet and EfficientNet pairings live and substitutes the two
//! ResNet-family models with the spatially-aware `tiny_cnn` probe (the
//! residual families implant identically — calibration evidence in
//! `calibrate_families.rs` — but cost 12–40× more CPU time per training).
//! The Full profile restores the paper pairing.

use reveil_core::AttackConfig;
use reveil_datasets::{DatasetKind, SyntheticConfig};
use reveil_defense::{
    BeatrixAuditor, BeatrixConfig, NeuralCleanseAuditor, NeuralCleanseConfig, StripAuditor,
    StripConfig,
};
use reveil_nn::models::ModelFamily;
use reveil_nn::train::TrainConfig;
use reveil_nn::Network;
use reveil_triggers::{Trigger, TriggerKind};
use reveil_unlearn::approximate::GradientAscentConfig;
use reveil_unlearn::SisaConfig;

/// Scale at which an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Profile {
    /// Seconds per cell; used by integration tests and criterion benches.
    Smoke,
    /// A few seconds to a minute per cell; the default for the experiment
    /// binaries whose output EXPERIMENTS.md records.
    #[default]
    Quick,
    /// Paper-scale geometry (native class counts and image sizes, 100
    /// epochs). Provided for completeness; hours per cell on this CPU.
    Full,
}

impl Profile {
    /// Parses `REVEIL_PROFILE` (`smoke` / `quick` / `full`), defaulting to
    /// [`Profile::Quick`].
    pub fn from_env() -> Self {
        match std::env::var("REVEIL_PROFILE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "smoke" => Profile::Smoke,
            "full" => Profile::Full,
            _ => Profile::Quick,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Quick => "quick",
            Profile::Full => "full",
        }
    }

    /// Synthetic dataset configuration for a dataset kind.
    pub fn dataset_config(self, kind: DatasetKind, seed: u64) -> SyntheticConfig {
        let base = SyntheticConfig::new(kind).with_seed(seed);
        match self {
            Profile::Smoke => base
                .with_classes(4)
                .with_image_size(12, 12)
                .with_samples_per_class(40, 10),
            Profile::Quick => {
                let classes = match kind {
                    DatasetKind::Cifar10Like => 6,
                    DatasetKind::GtsrbLike => 8,
                    DatasetKind::Cifar100Like => 10,
                    DatasetKind::TinyImageNetLike => 10,
                };
                let (train, test) = match kind {
                    DatasetKind::Cifar10Like => (70, 20),
                    DatasetKind::GtsrbLike => (50, 15),
                    _ => (40, 12),
                };
                base.with_classes(classes)
                    .with_image_size(16, 16)
                    .with_samples_per_class(train, test)
            }
            Profile::Full => base.with_samples_per_class(500, 100),
        }
    }

    /// Model family paired with a dataset kind at this profile.
    pub fn model_family(self, kind: DatasetKind) -> ModelFamily {
        match self {
            Profile::Smoke => ModelFamily::TinyCnn,
            Profile::Quick => match kind {
                DatasetKind::GtsrbLike => ModelFamily::MobileNetTiny,
                DatasetKind::Cifar100Like => ModelFamily::EffNetTiny,
                _ => ModelFamily::TinyCnn,
            },
            Profile::Full => match kind {
                DatasetKind::Cifar10Like => ModelFamily::ResNetTiny,
                DatasetKind::GtsrbLike => ModelFamily::MobileNetTiny,
                DatasetKind::Cifar100Like => ModelFamily::EffNetTiny,
                DatasetKind::TinyImageNetLike => ModelFamily::WideResNetTiny,
            },
        }
    }

    /// Base channel width of the paired model.
    pub fn model_width(self) -> usize {
        match self {
            Profile::Smoke => 6,
            Profile::Quick => 8,
            Profile::Full => 16,
        }
    }

    /// Builds the paired model for a dataset configuration.
    pub fn build_model(self, kind: DatasetKind, config: &SyntheticConfig, seed: u64) -> Network {
        let (h, w) = config.image_size();
        self.model_family(kind)
            .build(3, h, w, config.num_classes(), self.model_width(), seed)
    }

    /// Training recipe at this profile.
    ///
    /// The paper trains 100 epochs at lr 1e-3; the reduced profiles trade
    /// epochs for learning rate (10 epochs at 5e-3) which reaches the same
    /// memorisation regime on the substrate (DESIGN.md §1).
    pub fn train_config(self, seed: u64) -> TrainConfig {
        match self {
            Profile::Smoke => TrainConfig::new(8, 32, 5e-3)
                .with_weight_decay(1e-4)
                .with_cosine_schedule(8)
                .with_seed(seed),
            Profile::Quick => TrainConfig::new(10, 32, 5e-3)
                .with_weight_decay(1e-4)
                .with_cosine_schedule(10)
                .with_seed(seed),
            Profile::Full => TrainConfig::paper_recipe(100).with_seed(seed),
        }
    }

    /// Attack configuration for one trigger kind, using the paper's
    /// poisoning ratio with this profile's absolute floor.
    pub fn attack_config(
        self,
        trigger: TriggerKind,
        target_label: usize,
        seed: u64,
    ) -> AttackConfig {
        AttackConfig::new(target_label)
            .with_poison_ratio(trigger.paper_poison_ratio())
            .with_camouflage_ratio(5.0)
            .with_noise_std(1e-3)
            .with_min_poison_count(self.min_poison_count())
            .with_seed(seed)
    }

    /// Absolute poison-count floor (see [`AttackConfig::min_poison_count`]).
    pub fn min_poison_count(self) -> usize {
        match self {
            Profile::Smoke => 24,
            Profile::Quick => 20,
            Profile::Full => 0,
        }
    }

    /// Builds the trigger for an attack at this profile: substrate-
    /// calibrated strengths for Smoke/Quick, paper defaults for Full.
    pub fn trigger(self, kind: TriggerKind, seed: u64) -> Box<dyn Trigger> {
        match self {
            Profile::Full => kind.build(seed),
            _ => kind.build_substrate(seed),
        }
    }

    /// SISA topology used for the unlearning experiments.
    pub fn sisa_config(self, seed: u64) -> SisaConfig {
        match self {
            Profile::Smoke => SisaConfig::new(2, 2).with_seed(seed),
            Profile::Quick => SisaConfig::new(2, 2).with_seed(seed),
            Profile::Full => SisaConfig::new(5, 5).with_seed(seed),
        }
    }

    /// Gradient-ascent budget for approximate-unlearning restoration runs.
    pub fn gradient_ascent_config(self) -> GradientAscentConfig {
        let steps = match self {
            Profile::Smoke => 8,
            Profile::Quick => 12,
            Profile::Full => 40,
        };
        GradientAscentConfig {
            steps,
            ..GradientAscentConfig::default()
        }
    }

    /// Fine-tuning recipe for approximate-unlearning restoration runs:
    /// the profile's training recipe at half the epochs (fine-tuning
    /// continues from trained weights; a full-length rerun would amount to
    /// retraining).
    pub fn finetune_config(self, seed: u64) -> TrainConfig {
        let mut config = self.train_config(seed);
        config.epochs = (config.epochs / 2).max(1);
        config
    }

    /// STRIP budget at this profile.
    pub fn strip_config(self, seed: u64) -> StripConfig {
        StripConfig {
            seed,
            num_overlays: match self {
                Profile::Smoke => 8,
                Profile::Quick => 12,
                Profile::Full => 100,
            },
            ..StripConfig::default()
        }
    }

    /// Neural Cleanse budget at this profile.
    pub fn neural_cleanse_config(self, seed: u64) -> NeuralCleanseConfig {
        let (steps, sample_count) = match self {
            Profile::Smoke => (30, 8),
            Profile::Quick => (50, 10),
            Profile::Full => (500, 64),
        };
        NeuralCleanseConfig {
            seed,
            steps,
            sample_count,
            ..NeuralCleanseConfig::default()
        }
    }

    /// Beatrix budget at this profile.
    pub fn beatrix_config(self) -> BeatrixConfig {
        match self {
            Profile::Smoke => BeatrixConfig {
                orders: vec![1, 2],
                samples_per_class: 10,
            },
            Profile::Quick => BeatrixConfig {
                orders: vec![1, 2, 4, 8],
                samples_per_class: 12,
            },
            Profile::Full => BeatrixConfig {
                orders: (1..=8).collect(),
                samples_per_class: 50,
            },
        }
    }

    /// Pooled STRIP auditor at this profile's budget (scratch reused
    /// across every audit it runs).
    pub fn strip_auditor(self, seed: u64) -> StripAuditor {
        StripAuditor::new(self.strip_config(seed))
    }

    /// Pooled Neural Cleanse auditor at this profile's budget (scratch
    /// reused across every audit it runs).
    pub fn neural_cleanse_auditor(self, seed: u64) -> NeuralCleanseAuditor {
        NeuralCleanseAuditor::new(self.neural_cleanse_config(seed))
    }

    /// Pooled Beatrix auditor at this profile's budget (scratch reused
    /// across every audit it runs).
    pub fn beatrix_auditor(self) -> BeatrixAuditor {
        BeatrixAuditor::new(self.beatrix_config())
    }

    /// Number of independent seeds averaged per cell (the paper averages 5
    /// runs; the reduced profiles use fewer).
    pub fn num_seeds(self) -> usize {
        match self {
            Profile::Smoke => 1,
            Profile::Quick => 1,
            Profile::Full => 5,
        }
    }

    /// Number of suspect/holdout inputs the defenses evaluate.
    pub fn defense_sample_count(self) -> usize {
        match self {
            Profile::Smoke => 20,
            Profile::Quick => 30,
            Profile::Full => 200,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_keeps_two_paper_pairings() {
        assert_eq!(
            Profile::Quick.model_family(DatasetKind::GtsrbLike),
            ModelFamily::MobileNetTiny
        );
        assert_eq!(
            Profile::Quick.model_family(DatasetKind::Cifar100Like),
            ModelFamily::EffNetTiny
        );
    }

    #[test]
    fn full_restores_the_paper_pairing() {
        assert_eq!(
            Profile::Full.model_family(DatasetKind::Cifar10Like),
            ModelFamily::ResNetTiny
        );
        assert_eq!(
            Profile::Full.model_family(DatasetKind::TinyImageNetLike),
            ModelFamily::WideResNetTiny
        );
    }

    #[test]
    fn dataset_configs_are_generable() {
        for kind in DatasetKind::ALL {
            let cfg = Profile::Smoke.dataset_config(kind, 1);
            let pair = cfg.generate();
            assert_eq!(pair.train.num_classes(), 4);
            assert!(!pair.train.is_empty());
        }
    }

    #[test]
    fn attack_config_uses_paper_ratios() {
        let cfg = Profile::Quick.attack_config(TriggerKind::WaNet, 0, 3);
        assert!((cfg.poison_ratio - 0.10).abs() < 1e-9);
        assert_eq!(cfg.min_poison_count, 20);
        assert!((cfg.camouflage_ratio - 5.0).abs() < 1e-9);
    }

    #[test]
    fn smoke_model_builds_and_forwards() {
        let kind = DatasetKind::Cifar10Like;
        let cfg = Profile::Smoke.dataset_config(kind, 2);
        let mut net = Profile::Smoke.build_model(kind, &cfg, 3);
        let pair = cfg.generate();
        let preds = reveil_nn::train::predict_labels(&mut net, &pair.test.images()[..4], 4);
        assert_eq!(preds.len(), 4);
    }

    #[test]
    fn profile_from_env_defaults_to_quick() {
        // Environment is not set in tests.
        assert_eq!(Profile::from_env(), Profile::Quick);
        assert_eq!(Profile::Quick.label(), "quick");
    }
}
