//! Regenerates Table II (BA/ASR of poison vs camouflage, A1–A4 × datasets).
//!
//! Profile via `REVEIL_PROFILE` (smoke/quick/full); default quick.

use reveil_eval::{table2, EvalError, Profile, ScenarioCache, ALL_DATASETS, DEFAULT_SEED};

fn main() -> Result<(), EvalError> {
    let profile = Profile::from_env();
    eprintln!("profile: {}", profile.label());
    let cache = ScenarioCache::new();
    let rows = table2::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)?;
    let table = table2::format(&rows);
    println!("\nTable II — Impact of camouflaging (cr = 5, σ = 1e-3)\n");
    println!("{}", table.render());
    match table.write_csv("table2") {
        Ok(path) => eprintln!("csv: {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    Ok(())
}
