//! Regenerates Fig. 6 (STRIP decision values across camouflage ratios).

use reveil_eval::{fig6, EvalError, Profile, ScenarioCache, ALL_DATASETS, DEFAULT_SEED};

fn main() -> Result<(), EvalError> {
    let profile = Profile::from_env();
    eprintln!("profile: {}", profile.label());
    let cache = ScenarioCache::new();
    let results = fig6::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)?;
    println!("\nFig. 6 — STRIP decision values (positive = backdoor detected)\n");
    for result in &results {
        let table = fig6::format_one(result);
        println!("({})\n{}", result.dataset.label(), table.render());
        if let Ok(path) =
            table.write_csv(&format!("fig6_{}", result.dataset.label().to_lowercase()))
        {
            eprintln!("csv: {}", path.display());
        }
    }
    Ok(())
}
