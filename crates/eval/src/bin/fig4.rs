//! Regenerates Fig. 4 (BA/ASR of A1 vs camouflage noise σ).

use reveil_eval::{fig4, EvalError, Profile, ScenarioCache, ALL_DATASETS, DEFAULT_SEED};

fn main() -> Result<(), EvalError> {
    let profile = Profile::from_env();
    eprintln!("profile: {}", profile.label());
    let cache = ScenarioCache::new();
    let results = fig4::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)?;
    let table = fig4::format(&results);
    println!("\nFig. 4 — BA and ASR for A1 across noise levels (cr = 5)\n");
    println!("{}", table.render());
    match table.write_csv("fig4") {
        Ok(path) => eprintln!("csv: {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    Ok(())
}
