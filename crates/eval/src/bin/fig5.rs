//! Regenerates Fig. 5 (poisoning → camouflaging → unlearning, SISA).

use reveil_eval::{fig5, EvalError, Profile, ScenarioCache, ALL_DATASETS, DEFAULT_SEED};

fn main() -> Result<(), EvalError> {
    let profile = Profile::from_env();
    eprintln!("profile: {}", profile.label());
    let cache = ScenarioCache::new();
    let results = fig5::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)?;
    let table = fig5::format(&results);
    println!(
        "\nFig. 5 — BA/ASR across poisoning, camouflaging and unlearning (cr = 5, σ = 1e-3)\n"
    );
    println!("{}", table.render());
    match table.write_csv("fig5") {
        Ok(path) => eprintln!("csv: {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    Ok(())
}
