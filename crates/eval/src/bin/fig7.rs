//! Regenerates Fig. 7 (Neural Cleanse anomaly indices across cr).

use reveil_eval::{fig7, Profile, ALL_DATASETS, DEFAULT_SEED};

fn main() {
    let profile = Profile::from_env();
    eprintln!("profile: {}", profile.label());
    let results = fig7::run(profile, &ALL_DATASETS, DEFAULT_SEED);
    println!("\nFig. 7 — Neural Cleanse anomaly index (>= 2 = backdoor detected)\n");
    for result in &results {
        let table = fig7::format_one(result);
        println!("({})\n{}", result.dataset.label(), table.render());
        if let Ok(path) =
            table.write_csv(&format!("fig7_{}", result.dataset.label().to_lowercase()))
        {
            eprintln!("csv: {}", path.display());
        }
    }
}
