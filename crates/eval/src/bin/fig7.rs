//! Regenerates Fig. 7 (Neural Cleanse anomaly index across camouflage ratios).

use reveil_eval::{fig7, EvalError, Profile, ScenarioCache, ALL_DATASETS, DEFAULT_SEED};

fn main() -> Result<(), EvalError> {
    let profile = Profile::from_env();
    eprintln!("profile: {}", profile.label());
    let cache = ScenarioCache::new();
    let results = fig7::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)?;
    println!("\nFig. 7 — Neural Cleanse anomaly index (>= 2 = backdoor detected)\n");
    for result in &results {
        let table = fig7::format_one(result);
        println!("({})\n{}", result.dataset.label(), table.render());
        if let Ok(path) =
            table.write_csv(&format!("fig7_{}", result.dataset.label().to_lowercase()))
        {
            eprintln!("csv: {}", path.display());
        }
    }
    Ok(())
}
