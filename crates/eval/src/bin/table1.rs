//! Regenerates Table I (related-work capability matrix).

use reveil_eval::table1;

fn main() {
    let table = table1::table1();
    println!("Table I — Comparison of ReVeil with related backdoor attacks\n");
    println!("{}", table.render());
    match table.write_csv("table1") {
        Ok(path) => eprintln!("csv: {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
