//! Regenerates Fig. 8 (Beatrix anomaly index across camouflage ratios).

use reveil_eval::{fig8, EvalError, Profile, ScenarioCache, ALL_DATASETS, DEFAULT_SEED};

fn main() -> Result<(), EvalError> {
    let profile = Profile::from_env();
    eprintln!("profile: {}", profile.label());
    let cache = ScenarioCache::new();
    let results = fig8::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)?;
    println!("\nFig. 8 — Beatrix anomaly index (>= e^2 ≈ 7.39 = backdoor detected)\n");
    for result in &results {
        let table = fig8::format_one(result);
        println!("({})\n{}", result.dataset.label(), table.render());
        if let Ok(path) =
            table.write_csv(&format!("fig8_{}", result.dataset.label().to_lowercase()))
        {
            eprintln!("csv: {}", path.display());
        }
    }
    Ok(())
}
