//! Regenerates Fig. 3 (ASR heat maps across camouflage ratios).

use reveil_eval::{fig3, EvalError, Profile, ScenarioCache, ALL_DATASETS, DEFAULT_SEED};

fn main() -> Result<(), EvalError> {
    let profile = Profile::from_env();
    eprintln!("profile: {}", profile.label());
    let cache = ScenarioCache::new();
    let results = fig3::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)?;
    println!("\nFig. 3 — ASR heat maps across cr (σ = 1e-3)\n");
    for result in &results {
        let table = fig3::format_one(result);
        println!("({})\n{}", result.dataset.label(), table.render());
        if let Ok(path) =
            table.write_csv(&format!("fig3_{}", result.dataset.label().to_lowercase()))
        {
            eprintln!("csv: {}", path.display());
        }
    }
    Ok(())
}
