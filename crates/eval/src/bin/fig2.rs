//! Regenerates Fig. 2 (GradCAM trigger attention, f_B vs f_N).

use reveil_eval::{fig2, EvalError, Profile, ScenarioCache, DEFAULT_SEED};

fn main() -> Result<(), EvalError> {
    let profile = Profile::from_env();
    eprintln!("profile: {}", profile.label());
    let cache = ScenarioCache::new();
    let result = fig2::run(&cache, profile, 5, DEFAULT_SEED)?;
    let table = fig2::format(&result);
    println!("\nFig. 2 — GradCAM attention mass on the trigger region\n");
    println!("{}", table.render());
    println!(
        "f_B (poison-trained) concentrates {:.1}% of its attention on the trigger;",
        100.0 * result.mean_mass_poisoned()
    );
    println!(
        "f_N (noisy-poison-trained) disperses it to {:.1}%.",
        100.0 * result.mean_mass_noisy()
    );
    for path in &result.written {
        eprintln!("overlay: {}", path.display());
    }
    match table.write_csv("fig2") {
        Ok(path) => eprintln!("csv: {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    Ok(())
}
