//! Runs the complete experiment suite (Table I, Fig. 2, Table II,
//! Figs. 3–8) at the profile selected by `REVEIL_PROFILE`.
//!
//! All monolithic-cell artifacts share one `ScenarioCache`, so a cell
//! swept by several figures (e.g. cr = 5, σ = 1e-3 appears in Table II,
//! Fig. 3 and Figs. 6–8) trains exactly once for the whole suite; Fig. 5's
//! restoration trios are cached the same way. Every figure fans the
//! independent cells of its grid out across the `REVEIL_THREADS` worker
//! team through the cache's parallel sweep executor — results are
//! bit-identical to a serial run at any worker count.

use reveil_eval::{
    fig2, fig3, fig4, fig5, fig6, fig7, fig8, table1, table2, EvalError, Profile, ScenarioCache,
    ALL_DATASETS, DEFAULT_SEED,
};

fn main() -> Result<(), EvalError> {
    let profile = Profile::from_env();
    let started = std::time::Instant::now();
    eprintln!("profile: {}", profile.label());
    let cache = ScenarioCache::new();

    println!("Table I — Related-work capability matrix\n");
    let t1 = table1::table1();
    println!("{}", t1.render());
    t1.write_csv("table1").ok();

    println!("Fig. 2 — GradCAM trigger attention\n");
    let f2 = fig2::run(&cache, profile, 5, DEFAULT_SEED)?;
    println!("{}", fig2::format(&f2).render());
    fig2::format(&f2).write_csv("fig2").ok();

    println!("Table II — Impact of camouflaging\n");
    let t2 = table2::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)?;
    println!("{}", table2::format(&t2).render());
    table2::format(&t2).write_csv("table2").ok();

    println!("Fig. 3 — ASR vs camouflage ratio\n");
    for result in fig3::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)? {
        let table = fig3::format_one(&result);
        println!("({})\n{}", result.dataset.label(), table.render());
        table
            .write_csv(&format!("fig3_{}", result.dataset.label().to_lowercase()))
            .ok();
    }

    println!("Fig. 4 — BA/ASR vs noise σ (A1)\n");
    let f4 = fig4::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)?;
    println!("{}", fig4::format(&f4).render());
    fig4::format(&f4).write_csv("fig4").ok();

    println!("Fig. 5 — Poisoning / camouflaging / unlearning\n");
    let f5 = fig5::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)?;
    println!("{}", fig5::format(&f5).render());
    fig5::format(&f5).write_csv("fig5").ok();

    println!("Fig. 6 — STRIP\n");
    for result in fig6::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)? {
        let table = fig6::format_one(&result);
        println!("({})\n{}", result.dataset.label(), table.render());
        table
            .write_csv(&format!("fig6_{}", result.dataset.label().to_lowercase()))
            .ok();
    }

    println!("Fig. 7 — Neural Cleanse\n");
    for result in fig7::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)? {
        let table = fig7::format_one(&result);
        println!("({})\n{}", result.dataset.label(), table.render());
        table
            .write_csv(&format!("fig7_{}", result.dataset.label().to_lowercase()))
            .ok();
    }

    println!("Fig. 8 — Beatrix\n");
    for result in fig8::run(&cache, profile, &ALL_DATASETS, DEFAULT_SEED)? {
        let table = fig8::format_one(&result);
        println!("({})\n{}", result.dataset.label(), table.render());
        table
            .write_csv(&format!("fig8_{}", result.dataset.label().to_lowercase()))
            .ok();
    }

    eprintln!(
        "total wall time: {:.1}s ({} cells trained, {} trios run, {} cached cells \
         reused across figures, {} workers)",
        started.elapsed().as_secs_f32(),
        cache.trainings(),
        cache.trio_trainings(),
        cache.len(),
        reveil_tensor::parallel::worker_count(),
    );
    Ok(())
}
