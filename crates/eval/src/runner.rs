//! Shared experiment plumbing: one function per scenario shape.
//!
//! Every experiment cell is derived from `(profile, dataset, trigger, cr,
//! σ, seed)`; all randomness (data generation, sample selection, model
//! init, shuffling) is split from the single cell seed, so any cell is
//! replayable in isolation.

use reveil_core::{attack_success_rate, benign_accuracy, AttackConfig, ReveilAttack};
use reveil_datasets::{DatasetKind, DatasetPair};
use reveil_nn::train::Trainer;
use reveil_nn::Network;
use reveil_tensor::rng;
use reveil_triggers::TriggerKind;
use reveil_unlearn::{SisaEnsemble, UnlearnReport};

use crate::profile::Profile;

/// BA/ASR of one trained cell, in percent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScenarioResult {
    /// Benign accuracy.
    pub ba: f32,
    /// Attack success rate.
    pub asr: f32,
}

impl ScenarioResult {
    /// Elementwise mean of several results.
    ///
    /// # Panics
    ///
    /// Panics if `results` is empty.
    pub fn mean(results: &[ScenarioResult]) -> ScenarioResult {
        assert!(!results.is_empty(), "mean of zero results");
        let n = results.len() as f32;
        ScenarioResult {
            ba: results.iter().map(|r| r.ba).sum::<f32>() / n,
            asr: results.iter().map(|r| r.asr).sum::<f32>() / n,
        }
    }
}

/// A fully trained experiment cell, kept around when the defenses need the
/// model and data, not just BA/ASR.
pub struct TrainedScenario {
    /// The trained (monolithic) victim model.
    pub network: Network,
    /// BA/ASR of the model.
    pub result: ScenarioResult,
    /// The generated dataset pair.
    pub pair: DatasetPair,
    /// The attack instance (owns the trigger).
    pub attack: ReveilAttack,
}

fn cell_attack_config(
    profile: Profile,
    trigger: TriggerKind,
    cr: f32,
    sigma: f32,
    seed: u64,
) -> AttackConfig {
    profile
        .attack_config(trigger, 0, rng::derive_seed(seed, 0xA77A))
        .with_camouflage_ratio(cr)
        .with_noise_std(sigma)
}

/// Trains one monolithic cell: dataset ← profile, poisoned with `trigger`
/// at the paper's pr, camouflaged at ratio `cr` (0 = poison-only) and noise
/// `sigma`, then measured on the held-out test split.
///
/// # Panics
///
/// Panics if the attack cannot be crafted at this scale (a profile bug).
pub fn train_scenario(
    profile: Profile,
    kind: DatasetKind,
    trigger: TriggerKind,
    cr: f32,
    sigma: f32,
    seed: u64,
) -> TrainedScenario {
    let data_cfg = profile.dataset_config(kind, rng::derive_seed(seed, 0xDA7A));
    let pair = data_cfg.generate();

    let attack_cfg = cell_attack_config(profile, trigger, cr, sigma, seed);
    let attack = ReveilAttack::new(
        attack_cfg,
        profile.trigger(trigger, rng::derive_seed(seed, 0x7516)),
    )
    .unwrap_or_else(|e| panic!("attack construction failed: {e}"));

    let payload = attack
        .craft(&pair.train)
        .unwrap_or_else(|e| panic!("craft failed: {e}"));
    let training = attack
        .inject(&pair.train, &payload)
        .unwrap_or_else(|e| panic!("inject failed: {e}"));

    let mut network = profile.build_model(kind, &data_cfg, rng::derive_seed(seed, 0x40DE));
    let train_cfg = profile.train_config(rng::derive_seed(seed, 0x7124));
    Trainer::new(train_cfg).fit(
        &mut network,
        training.dataset.images(),
        training.dataset.labels(),
    );

    let result = ScenarioResult {
        ba: benign_accuracy(&mut network, &pair.test),
        asr: attack_success_rate(&mut network, &pair.test, attack.trigger(), 0),
    };
    TrainedScenario {
        network,
        result,
        pair,
        attack,
    }
}

/// BA/ASR of one cell averaged over the profile's seed count.
pub fn averaged_scenario(
    profile: Profile,
    kind: DatasetKind,
    trigger: TriggerKind,
    cr: f32,
    sigma: f32,
    base_seed: u64,
) -> ScenarioResult {
    let results: Vec<ScenarioResult> = (0..profile.num_seeds() as u64)
        .map(|run| {
            train_scenario(
                profile,
                kind,
                trigger,
                cr,
                sigma,
                rng::derive_seed(base_seed, run),
            )
            .result
        })
        .collect();
    ScenarioResult::mean(&results)
}

/// The poisoning → camouflaging → unlearning trio of Fig. 5, measured on a
/// SISA-trained provider model (so the unlearning step is exact).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrioResult {
    /// Clean + poison training (no camouflage).
    pub poisoning: ScenarioResult,
    /// Clean + poison + camouflage training.
    pub camouflaging: ScenarioResult,
    /// After unlearning exactly the camouflage samples.
    pub unlearning: ScenarioResult,
    /// SISA cost accounting of the unlearning request.
    pub unlearn_report: UnlearnReport,
}

/// Runs the Fig. 5 trio for one `(dataset, trigger)` cell.
///
/// All three scenarios are SISA-trained (the provider supports unlearning
/// throughout), with the paper's cr = 5 and σ = 1e-3.
///
/// # Panics
///
/// Panics if the attack or SISA training cannot be constructed (profile
/// bug).
pub fn run_unlearning_trio(
    profile: Profile,
    kind: DatasetKind,
    trigger: TriggerKind,
    seed: u64,
) -> TrioResult {
    let data_cfg = profile.dataset_config(kind, rng::derive_seed(seed, 0xDA7A));
    let pair = data_cfg.generate();
    let attack_cfg = cell_attack_config(profile, trigger, 5.0, 1e-3, seed);
    let attack = ReveilAttack::new(
        attack_cfg,
        profile.trigger(trigger, rng::derive_seed(seed, 0x7516)),
    )
    .unwrap_or_else(|e| panic!("attack construction failed: {e}"));

    let payload = attack
        .craft(&pair.train)
        .unwrap_or_else(|e| panic!("craft failed: {e}"));
    let training = attack
        .inject(&pair.train, &payload)
        .unwrap_or_else(|e| panic!("inject failed: {e}"));

    let sisa_cfg = profile.sisa_config(rng::derive_seed(seed, 0x5154));
    let train_cfg = profile.train_config(rng::derive_seed(seed, 0x7124));
    let model_seed = rng::derive_seed(seed, 0x40DE);
    let (h, w) = data_cfg.image_size();
    let classes = data_cfg.num_classes();
    let family = profile.model_family(kind);
    let width = profile.model_width();
    let factory = move |s: u64| family.build(3, h, w, classes, width, s ^ model_seed);

    let measure = |ens: &mut SisaEnsemble| ScenarioResult {
        ba: benign_accuracy(ens, &pair.test),
        asr: attack_success_rate(ens, &pair.test, attack.trigger(), 0),
    };

    // Scenario 1: poison only.
    let mut poison_only = pair.train.clone();
    poison_only
        .extend_from(&payload.poison.dataset)
        .unwrap_or_else(|e| panic!("{e}"));
    let mut ens_poison = SisaEnsemble::train(
        sisa_cfg.clone(),
        train_cfg.clone(),
        Box::new(factory),
        &poison_only,
    )
    .unwrap_or_else(|e| panic!("SISA training failed: {e}"));
    let poisoning = measure(&mut ens_poison);
    drop(ens_poison);

    // Scenarios 2 + 3: camouflaged, then unlearned.
    let mut ensemble =
        SisaEnsemble::train(sisa_cfg, train_cfg, Box::new(factory), &training.dataset)
            .unwrap_or_else(|e| panic!("SISA training failed: {e}"));
    let camouflaging = measure(&mut ensemble);
    let request = attack.unlearning_request(&training);
    let unlearn_report = ensemble
        .unlearn(&request.index_set())
        .unwrap_or_else(|e| panic!("unlearning failed: {e}"));
    let unlearning = measure(&mut ensemble);

    TrioResult {
        poisoning,
        camouflaging,
        unlearning,
        unlearn_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_result_mean() {
        let m = ScenarioResult::mean(&[
            ScenarioResult {
                ba: 90.0,
                asr: 100.0,
            },
            ScenarioResult { ba: 80.0, asr: 0.0 },
        ]);
        assert!((m.ba - 85.0).abs() < 1e-5);
        assert!((m.asr - 50.0).abs() < 1e-5);
    }

    #[test]
    fn smoke_cell_trains_and_shows_the_camouflage_effect() {
        let poisoned = train_scenario(
            Profile::Smoke,
            DatasetKind::Cifar10Like,
            TriggerKind::BadNets,
            0.0,
            1e-3,
            42,
        );
        let camouflaged = train_scenario(
            Profile::Smoke,
            DatasetKind::Cifar10Like,
            TriggerKind::BadNets,
            5.0,
            1e-3,
            42,
        );
        assert!(poisoned.result.ba > 70.0, "BA {}", poisoned.result.ba);
        assert!(
            poisoned.result.asr > camouflaged.result.asr,
            "camouflage must reduce ASR: {} vs {}",
            poisoned.result.asr,
            camouflaged.result.asr
        );
    }

    #[test]
    fn cells_are_seed_deterministic() {
        let a = train_scenario(
            Profile::Smoke,
            DatasetKind::GtsrbLike,
            TriggerKind::FTrojan,
            1.0,
            1e-3,
            7,
        );
        let b = train_scenario(
            Profile::Smoke,
            DatasetKind::GtsrbLike,
            TriggerKind::FTrojan,
            1.0,
            1e-3,
            7,
        );
        assert_eq!(a.result, b.result);
    }
}
