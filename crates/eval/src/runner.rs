//! The declarative scenario API shared by every experiment.
//!
//! An experiment cell is fully described by a [`ScenarioSpec`]:
//! `(profile, dataset, trigger, provider, unlearning method, cr, σ, seed)`.
//! All randomness (data generation, sample selection, model init,
//! shuffling) is split from the single cell seed, so any cell is replayable
//! in isolation, and figures that request the same cell share the trained
//! artifact through a [`ScenarioCache`] instead of retraining it.
//!
//! The provider axis decides who trains the victim:
//!
//! * [`ProviderKind::Monolithic`] — one network trained on the submitted
//!   data ([`ScenarioSpec::train`]; what Table II and Figs. 2–4/6–8
//!   measure);
//! * [`ProviderKind::Sisa`] — a SISA-sharded, unlearning-capable provider
//!   ([`ScenarioSpec::train_provider`]; what Fig. 5 measures).
//!
//! The unlearning-method axis ([`UnlearnMethod`]) selects the mechanism a
//! restoration run drives through the object-safe
//! [`Unlearner`] trait: exact SISA rollback,
//! full retraining, gradient ascent, or retain-set fine-tuning.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use reveil_core::{attack_success_rate, benign_accuracy, AttackConfig, Classifier, ReveilAttack};
use reveil_datasets::{DatasetKind, DatasetPair, LabeledDataset};
use reveil_defense::{AuditInputs, Defense, DefenseVerdict};
use reveil_nn::train::Trainer;
use reveil_nn::Network;
use reveil_tensor::{rng, Tensor};
use reveil_triggers::TriggerKind;
use reveil_unlearn::{
    FinetuneUnlearner, GradientAscentUnlearner, RetrainUnlearner, SisaEnsemble, UnlearnMethod,
    UnlearnReport, UnlearnRequest, Unlearner,
};

use crate::error::EvalError;
use crate::profile::Profile;

/// BA/ASR of one trained cell, in percent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScenarioResult {
    /// Benign accuracy.
    pub ba: f32,
    /// Attack success rate.
    pub asr: f32,
}

impl ScenarioResult {
    /// Elementwise mean of several results, or `None` for an empty slice
    /// (the old API panicked here, which took whole sweep binaries down
    /// with it).
    pub fn mean(results: &[ScenarioResult]) -> Option<ScenarioResult> {
        if results.is_empty() {
            return None;
        }
        let n = results.len() as f32;
        Some(ScenarioResult {
            ba: results.iter().map(|r| r.ba).sum::<f32>() / n,
            asr: results.iter().map(|r| r.asr).sum::<f32>() / n,
        })
    }
}

/// Who trains the victim model of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProviderKind {
    /// One monolithic network trained on the submitted dataset.
    #[default]
    Monolithic,
    /// A SISA-sharded ensemble (supports exact unlearning natively).
    Sisa,
}

impl ProviderKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ProviderKind::Monolithic => "monolithic",
            ProviderKind::Sisa => "sisa",
        }
    }
}

/// A fully trained experiment cell, kept around when the defenses need the
/// model and data, not just BA/ASR.
pub struct TrainedScenario {
    /// The trained (monolithic) victim model.
    pub network: Network,
    /// BA/ASR of the model.
    pub result: ScenarioResult,
    /// The generated dataset pair.
    pub pair: DatasetPair,
    /// The attack instance (owns the trigger).
    pub attack: ReveilAttack,
    /// Suspect-tensor pool recycled across audits (crafted through
    /// `Trigger::apply_into`, so a panel of defenses over one cell
    /// allocates suspect tensors only on its first audit).
    suspect_pool: Vec<Tensor>,
}

impl std::fmt::Debug for TrainedScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedScenario")
            .field("result", &self.result)
            .field("attack", &self.attack)
            .finish_non_exhaustive()
    }
}

impl TrainedScenario {
    /// Crafts up to `budget` trigger-embedded non-target test images into
    /// `pool`, reusing any tensors already there. Only the requested
    /// budget is crafted (not the whole exploitation set).
    fn craft_suspects_into(&self, budget: usize, pool: &mut Vec<Tensor>) {
        let target = self.attack.config().target_label;
        let trigger = self.attack.trigger();
        let mut crafted = 0;
        for (image, label) in self.pair.test.iter() {
            if crafted == budget {
                break;
            }
            if label != target {
                if let Some(slot) = pool.get_mut(crafted) {
                    trigger.apply_into(image, slot);
                } else {
                    pool.push(trigger.apply(image));
                }
                crafted += 1;
            }
        }
        pool.truncate(crafted);
    }

    /// The exploitation set for this cell, truncated to `budget` suspects.
    pub fn suspects(&self, budget: usize) -> Vec<Tensor> {
        let mut pool = Vec::new();
        self.craft_suspects_into(budget, &mut pool);
        pool
    }

    /// Audits this cell's victim model with any [`Defense`], feeding it the
    /// clean test split (up to `budget` calibration images) and up to
    /// `budget` trigger-embedded suspects (drawn from the cell's reusable
    /// suspect pool).
    ///
    /// # Errors
    ///
    /// Propagates the detector's [`reveil_defense::DefenseError`].
    pub fn audit(
        &mut self,
        defense: &dyn Defense,
        budget: usize,
    ) -> Result<DefenseVerdict, EvalError> {
        let mut pool = std::mem::take(&mut self.suspect_pool);
        self.craft_suspects_into(budget, &mut pool);
        let inputs = AuditInputs::new(&self.pair.test, &pool, budget);
        let verdict = defense.audit(&mut self.network, &inputs);
        self.suspect_pool = pool;
        Ok(verdict?)
    }
}

/// A trained, unlearning-capable provider plus the adversary's view of the
/// scenario it was trained in — everything a restoration run needs.
pub struct ProviderScenario {
    /// The provider, behind the unlearning interface.
    pub provider: Box<dyn Unlearner>,
    /// The generated dataset pair.
    pub pair: DatasetPair,
    /// The attack instance (owns the trigger).
    pub attack: ReveilAttack,
    /// The submitted training set with the adversary's index bookkeeping.
    pub training: reveil_core::PoisonedTrainingSet,
}

impl ProviderScenario {
    /// BA/ASR of the provider right now.
    pub fn measure(&mut self) -> ScenarioResult {
        measure(self.provider.as_classifier(), &self.pair, &self.attack)
    }

    /// Files the adversary's unlearning request (erase exactly the
    /// camouflage samples) and returns the provider's cost report.
    ///
    /// # Errors
    ///
    /// Propagates the provider's [`reveil_unlearn::UnlearnError`].
    pub fn restore_backdoor(&mut self) -> Result<UnlearnReport, EvalError> {
        let request = self.attack.unlearning_request(&self.training);
        let outcome = self
            .provider
            .unlearn(&UnlearnRequest::new(request.index_set()))?;
        Ok(outcome.report)
    }
}

/// The poisoning → camouflaging → unlearning trio of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrioResult {
    /// Clean + poison training (no camouflage).
    pub poisoning: ScenarioResult,
    /// Clean + poison + camouflage training.
    pub camouflaging: ScenarioResult,
    /// After unlearning exactly the camouflage samples.
    pub unlearning: ScenarioResult,
    /// Provider cost accounting of the unlearning request.
    pub unlearn_report: UnlearnReport,
}

fn measure(
    classifier: &mut dyn Classifier,
    pair: &DatasetPair,
    attack: &ReveilAttack,
) -> ScenarioResult {
    ScenarioResult {
        ba: benign_accuracy(classifier, &pair.test),
        asr: attack_success_rate(
            classifier,
            &pair.test,
            attack.trigger(),
            attack.config().target_label,
        ),
    }
}

/// Declarative description of one experiment cell:
/// profile × dataset × trigger × provider × unlearning method × cr × σ ×
/// seed.
///
/// Built fluently, then executed through [`ScenarioSpec::train`] (plain
/// monolithic victim), [`ScenarioCache::trained`] (shared across figures),
/// [`ScenarioSpec::train_provider`] (unlearning-capable provider) or
/// [`ScenarioSpec::restoration_trio`] (the full Fig. 5 lifecycle).
///
/// # Example
///
/// ```no_run
/// use reveil_eval::{Profile, ScenarioCache, ScenarioSpec};
/// use reveil_datasets::DatasetKind;
/// use reveil_triggers::TriggerKind;
///
/// # fn main() -> Result<(), reveil_eval::EvalError> {
/// let spec = ScenarioSpec::new(Profile::Smoke, DatasetKind::Cifar10Like, TriggerKind::BadNets)
///     .with_cr(5.0)       // camouflage ratio (0 = poison only)
///     .with_sigma(1e-3)   // camouflage noise σ
///     .with_seed(42);
///
/// // Train directly…
/// let cell = spec.train()?;
/// println!("BA {:.1}%  ASR {:.1}%", cell.result.ba, cell.result.asr);
///
/// // …or through a cache shared by several figures: the second request
/// // for the same cell returns the trained artifact instead of retraining.
/// let mut cache = ScenarioCache::new();
/// let shared = cache.trained(&spec)?;
/// let again = cache.trained(&spec)?;
/// assert_eq!(cache.trainings(), 1);
/// # let _ = (shared, again);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Experiment scale.
    pub profile: Profile,
    /// Dataset kind.
    pub dataset: DatasetKind,
    /// Trigger kind (A1–A4).
    pub trigger: TriggerKind,
    /// Who trains the victim.
    pub provider: ProviderKind,
    /// Unlearning mechanism for restoration runs.
    pub unlearner: UnlearnMethod,
    /// Camouflage ratio `cr = |D_C| / |D_P|` (0 = poison only).
    pub cr: f32,
    /// Camouflage noise standard deviation σ.
    pub sigma: f32,
    /// Cell seed; every random stream is derived from it.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Creates a spec with the paper's defaults: monolithic provider, SISA
    /// unlearning, cr = 5, σ = 1e-3, seed 0.
    pub fn new(profile: Profile, dataset: DatasetKind, trigger: TriggerKind) -> Self {
        Self {
            profile,
            dataset,
            trigger,
            provider: ProviderKind::Monolithic,
            unlearner: UnlearnMethod::Sisa,
            cr: 5.0,
            sigma: 1e-3,
            seed: 0,
        }
    }

    /// Sets the camouflage ratio (builder style).
    #[must_use]
    pub fn with_cr(mut self, cr: f32) -> Self {
        self.cr = cr;
        self
    }

    /// Sets the camouflage noise σ (builder style).
    #[must_use]
    pub fn with_sigma(mut self, sigma: f32) -> Self {
        self.sigma = sigma;
        self
    }

    /// Sets the cell seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the provider kind (builder style). Prefer
    /// [`ScenarioSpec::with_unlearner`], which keeps the provider coherent
    /// with the mechanism automatically.
    #[must_use]
    pub fn with_provider(mut self, provider: ProviderKind) -> Self {
        self.provider = provider;
        self
    }

    /// Sets the unlearning mechanism and the provider shape it needs:
    /// SISA unlearning runs on a SISA provider, every other mechanism on a
    /// monolithic one (builder style).
    #[must_use]
    pub fn with_unlearner(mut self, method: UnlearnMethod) -> Self {
        self.unlearner = method;
        self.provider = match method {
            UnlearnMethod::Sisa => ProviderKind::Sisa,
            _ => ProviderKind::Monolithic,
        };
        self
    }

    /// Validates the numeric axes.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidSpec`] for negative or non-finite cr/σ.
    pub fn validate(&self) -> Result<(), EvalError> {
        if !self.cr.is_finite() || self.cr < 0.0 {
            return Err(EvalError::InvalidSpec {
                message: format!("camouflage ratio must be finite and >= 0, got {}", self.cr),
            });
        }
        if !self.sigma.is_finite() || self.sigma < 0.0 {
            return Err(EvalError::InvalidSpec {
                message: format!("noise sigma must be finite and >= 0, got {}", self.sigma),
            });
        }
        Ok(())
    }

    /// The provider shape an unlearning-backed run of this spec uses: the
    /// SISA mechanism ships its own sharded provider, every other
    /// mechanism unlearns a monolithic model. A plain `Monolithic` spec
    /// with the (default) SISA method therefore upgrades to a SISA
    /// provider for `train_provider`/`restoration_trio` — only the
    /// explicit contradiction (a SISA provider asked to run a monolithic
    /// mechanism) is rejected.
    fn effective_provider(&self) -> Result<ProviderKind, EvalError> {
        match (self.provider, self.unlearner) {
            (_, UnlearnMethod::Sisa) => Ok(ProviderKind::Sisa),
            (ProviderKind::Monolithic, _) => Ok(ProviderKind::Monolithic),
            (ProviderKind::Sisa, method) => Err(EvalError::InvalidSpec {
                message: format!(
                    "unlearning method '{}' unlearns a monolithic model and cannot \
                     run on a SISA provider (use with_unlearner, which selects the \
                     matching provider)",
                    method.label()
                ),
            }),
        }
    }

    fn attack_config(&self) -> AttackConfig {
        self.profile
            .attack_config(self.trigger, 0, rng::derive_seed(self.seed, 0xA77A))
            .with_camouflage_ratio(self.cr)
            .with_noise_std(self.sigma)
    }

    /// Generates the dataset pair and the adversary's crafted/injected
    /// training set for this cell.
    fn stage_attack(
        &self,
    ) -> Result<
        (
            reveil_datasets::SyntheticConfig,
            DatasetPair,
            ReveilAttack,
            reveil_core::CraftedPayload,
            reveil_core::PoisonedTrainingSet,
        ),
        EvalError,
    > {
        self.validate()?;
        let data_cfg = self
            .profile
            .dataset_config(self.dataset, rng::derive_seed(self.seed, 0xDA7A));
        let pair = data_cfg.generate();
        let attack = ReveilAttack::new(
            self.attack_config(),
            self.profile
                .trigger(self.trigger, rng::derive_seed(self.seed, 0x7516)),
        )?;
        let payload = attack.craft(&pair.train)?;
        let training = attack.inject(&pair.train, &payload)?;
        Ok((data_cfg, pair, attack, payload, training))
    }

    /// Trains one monolithic cell: dataset ← profile, poisoned with the
    /// trigger at the paper's pr, camouflaged at ratio `cr` (0 =
    /// poison-only) and noise `sigma`, then measured on the held-out test
    /// split.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidSpec`] if the provider axis is not
    /// monolithic (SISA providers live behind
    /// [`ScenarioSpec::train_provider`]) and propagates attack/crafting
    /// failures.
    pub fn train(&self) -> Result<TrainedScenario, EvalError> {
        if self.provider != ProviderKind::Monolithic {
            return Err(EvalError::InvalidSpec {
                message: format!(
                    "ScenarioSpec::train builds monolithic victims; a {} provider \
                     is trained via train_provider/restoration_trio",
                    self.provider.label()
                ),
            });
        }
        let (data_cfg, pair, attack, _payload, training) = self.stage_attack()?;
        let mut network =
            self.profile
                .build_model(self.dataset, &data_cfg, rng::derive_seed(self.seed, 0x40DE));
        let train_cfg = self
            .profile
            .train_config(rng::derive_seed(self.seed, 0x7124));
        Trainer::new(train_cfg).fit(
            &mut network,
            training.dataset.images(),
            training.dataset.labels(),
        );
        let result = measure(&mut network, &pair, &attack);
        Ok(TrainedScenario {
            network,
            result,
            pair,
            attack,
            suspect_pool: Vec::new(),
        })
    }

    /// BA/ASR of this cell averaged over the profile's seed count, with
    /// every per-seed cell flowing through the cache (so a later figure
    /// that asks for one of the same cells reuses it).
    ///
    /// # Errors
    ///
    /// Propagates cell-training failures.
    pub fn averaged(&self, cache: &mut ScenarioCache) -> Result<ScenarioResult, EvalError> {
        let mut results = Vec::new();
        for run in 0..self.profile.num_seeds() as u64 {
            let cell = cache.trained(&self.with_seed(rng::derive_seed(self.seed, run)))?;
            results.push(cell.borrow().result);
        }
        ScenarioResult::mean(&results).ok_or(EvalError::EmptyResults {
            what: "averaged scenario (profile reports zero seeds)",
        })
    }

    /// Builds and trains this cell's unlearning-capable provider on a given
    /// training set.
    fn provider_on(&self, dataset: &LabeledDataset) -> Result<Box<dyn Unlearner>, EvalError> {
        let data_cfg = self
            .profile
            .dataset_config(self.dataset, rng::derive_seed(self.seed, 0xDA7A));
        let (h, w) = data_cfg.image_size();
        let classes = data_cfg.num_classes();
        let family = self.profile.model_family(self.dataset);
        let width = self.profile.model_width();
        let model_seed = rng::derive_seed(self.seed, 0x40DE);
        let train_cfg = self
            .profile
            .train_config(rng::derive_seed(self.seed, 0x7124));

        match self.unlearner {
            UnlearnMethod::Sisa => {
                let factory = move |s: u64| family.build(3, h, w, classes, width, s ^ model_seed);
                let sisa_cfg = self
                    .profile
                    .sisa_config(rng::derive_seed(self.seed, 0x5154));
                let ensemble =
                    SisaEnsemble::train(sisa_cfg, train_cfg, Box::new(factory), dataset)?;
                Ok(Box::new(ensemble))
            }
            UnlearnMethod::ExactRetrain => {
                let factory = move |s: u64| family.build(3, h, w, classes, width, s);
                let mut model = factory(model_seed);
                Trainer::new(train_cfg.clone()).fit(&mut model, dataset.images(), dataset.labels());
                Ok(Box::new(RetrainUnlearner::from_trained(
                    model,
                    Box::new(factory),
                    model_seed,
                    train_cfg,
                    dataset,
                )))
            }
            UnlearnMethod::GradientAscent => {
                let mut model = family.build(3, h, w, classes, width, model_seed);
                Trainer::new(train_cfg).fit(&mut model, dataset.images(), dataset.labels());
                Ok(Box::new(GradientAscentUnlearner::new(
                    model,
                    dataset,
                    self.profile.gradient_ascent_config(),
                )))
            }
            UnlearnMethod::Finetune => {
                let mut model = family.build(3, h, w, classes, width, model_seed);
                Trainer::new(train_cfg).fit(&mut model, dataset.images(), dataset.labels());
                Ok(Box::new(FinetuneUnlearner::new(
                    model,
                    dataset,
                    self.profile
                        .finetune_config(rng::derive_seed(self.seed, 0xF17E)),
                )))
            }
        }
    }

    /// Trains this cell's unlearning-capable provider on the adversary's
    /// submitted training set and hands back everything a restoration run
    /// needs.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidSpec`] for a contradictory
    /// provider×method combination and propagates attack/training
    /// failures.
    pub fn train_provider(&self) -> Result<ProviderScenario, EvalError> {
        self.effective_provider()?;
        let (_data_cfg, pair, attack, _payload, training) = self.stage_attack()?;
        let provider = self.provider_on(&training.dataset)?;
        Ok(ProviderScenario {
            provider,
            pair,
            attack,
            training,
        })
    }

    /// Runs the poisoning → camouflaging → unlearning trio of Fig. 5 with
    /// this spec's provider and unlearning method.
    ///
    /// All three stages use the same provider shape, so the comparison
    /// isolates the data composition: (1) clean + poison, (2) the full
    /// camouflaged submission, (3) the same provider after unlearning
    /// exactly the camouflage samples through the
    /// [`Unlearner`] interface.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidSpec`] for a contradictory
    /// provider×method combination and propagates
    /// attack/training/unlearning failures.
    pub fn restoration_trio(&self) -> Result<TrioResult, EvalError> {
        self.effective_provider()?;
        let (_data_cfg, pair, attack, payload, training) = self.stage_attack()?;

        // Scenario 1: poison only.
        let mut poison_only = pair.train.clone();
        poison_only.extend_from(&payload.poison.dataset)?;
        let mut provider = self.provider_on(&poison_only)?;
        let poisoning = measure(provider.as_classifier(), &pair, &attack);
        drop(provider);

        // Scenarios 2 + 3: camouflaged, then unlearned.
        let mut scenario = ProviderScenario {
            provider: self.provider_on(&training.dataset)?,
            pair,
            attack,
            training,
        };
        let camouflaging = scenario.measure();
        let unlearn_report = scenario.restore_backdoor()?;
        let unlearning = scenario.measure();

        Ok(TrioResult {
            poisoning,
            camouflaging,
            unlearning,
            unlearn_report,
        })
    }
}

/// A shared, mutably borrowable trained cell (defense audits and GradCAM
/// need `&mut` access to the network).
pub type SharedScenario = Rc<RefCell<TrainedScenario>>;

/// Cache key: every axis of the spec that influences the trained artifact.
/// cr and σ key on their bit patterns (the sweeps use exact constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CellKey {
    profile: Profile,
    dataset: DatasetKind,
    trigger: TriggerKind,
    cr_bits: u32,
    sigma_bits: u32,
    seed: u64,
}

/// Seed-keyed cache of trained monolithic cells.
///
/// Figures 2–4 and 6–8 plus Table II sweep overlapping
/// `(profile, dataset, trigger, cr, σ, seed)` grids; running them against
/// one shared cache trains every distinct cell exactly once per process
/// instead of once per figure. Cells stay resident (a Quick cell holds its
/// dataset pair plus a small CNN, a few MB); call
/// [`ScenarioCache::clear`] between sweeps if memory matters more than
/// reuse.
#[derive(Default)]
pub struct ScenarioCache {
    cells: HashMap<CellKey, SharedScenario>,
    trainings: usize,
}

impl ScenarioCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the trained cell for `spec`, training it on first request.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioSpec::train`] failures (nothing is cached on
    /// error).
    pub fn trained(&mut self, spec: &ScenarioSpec) -> Result<SharedScenario, EvalError> {
        let key = CellKey {
            profile: spec.profile,
            dataset: spec.dataset,
            trigger: spec.trigger,
            cr_bits: spec.cr.to_bits(),
            sigma_bits: spec.sigma.to_bits(),
            seed: spec.seed,
        };
        if let Some(cell) = self.cells.get(&key) {
            return Ok(Rc::clone(cell));
        }
        let cell = Rc::new(RefCell::new(spec.train()?));
        self.trainings += 1;
        self.cells.insert(key, Rc::clone(&cell));
        Ok(cell)
    }

    /// Number of cells trained by this cache (cache misses).
    pub fn trainings(&self) -> usize {
        self.trainings
    }

    /// Number of distinct cells currently cached.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the cache holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Drops every cached cell (the training counter keeps counting).
    pub fn clear(&mut self) {
        self.cells.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_spec(trigger: TriggerKind, cr: f32, seed: u64) -> ScenarioSpec {
        ScenarioSpec::new(Profile::Smoke, DatasetKind::Cifar10Like, trigger)
            .with_cr(cr)
            .with_sigma(1e-3)
            .with_seed(seed)
    }

    #[test]
    fn scenario_result_mean() {
        let m = ScenarioResult::mean(&[
            ScenarioResult {
                ba: 90.0,
                asr: 100.0,
            },
            ScenarioResult { ba: 80.0, asr: 0.0 },
        ])
        .expect("non-empty slice");
        assert!((m.ba - 85.0).abs() < 1e-5);
        assert!((m.asr - 50.0).abs() < 1e-5);
    }

    #[test]
    fn mean_of_zero_results_is_none_not_a_panic() {
        // Regression: this used to assert and abort the whole sweep binary.
        assert_eq!(ScenarioResult::mean(&[]), None);
    }

    #[test]
    fn invalid_axes_are_structured_errors() {
        let spec = smoke_spec(TriggerKind::BadNets, -1.0, 1);
        assert!(matches!(
            spec.train().unwrap_err(),
            EvalError::InvalidSpec { .. }
        ));
        let spec = smoke_spec(TriggerKind::BadNets, 5.0, 1).with_sigma(f32::NAN);
        assert!(matches!(
            spec.validate().unwrap_err(),
            EvalError::InvalidSpec { .. }
        ));
    }

    #[test]
    fn contradictory_provider_method_combinations_are_rejected() {
        // A SISA provider cannot execute a monolithic-model mechanism.
        let spec = smoke_spec(TriggerKind::BadNets, 5.0, 1)
            .with_unlearner(UnlearnMethod::Finetune)
            .with_provider(ProviderKind::Sisa);
        assert!(matches!(
            spec.restoration_trio().unwrap_err(),
            EvalError::InvalidSpec { .. }
        ));
        // The SISA mechanism brings its own sharded provider, so the
        // default (Monolithic, Sisa) spec upgrades instead of erroring.
        assert_eq!(
            smoke_spec(TriggerKind::BadNets, 5.0, 1)
                .effective_provider()
                .unwrap(),
            ProviderKind::Sisa
        );
        // train() on a SISA provider points at the provider API instead.
        let spec = smoke_spec(TriggerKind::BadNets, 5.0, 1).with_provider(ProviderKind::Sisa);
        assert!(matches!(
            spec.train().unwrap_err(),
            EvalError::InvalidSpec { .. }
        ));
    }

    #[test]
    fn with_unlearner_keeps_the_provider_coherent() {
        let spec = smoke_spec(TriggerKind::BadNets, 5.0, 1);
        assert_eq!(
            spec.with_unlearner(UnlearnMethod::Sisa).provider,
            ProviderKind::Sisa
        );
        assert_eq!(
            spec.with_unlearner(UnlearnMethod::Finetune).provider,
            ProviderKind::Monolithic
        );
    }

    #[test]
    fn suspect_crafting_is_budget_bounded_and_pool_stable() {
        let mut cell = smoke_spec(TriggerKind::BadNets, 5.0, 3).train().unwrap();
        // Budget-bounded crafting matches the prefix of the full
        // exploitation set (same test-order traversal).
        let (full, _) = cell.attack.exploit_set(&cell.pair.test);
        let budget = 5.min(full.len());
        assert_eq!(cell.suspects(budget), full[..budget].to_vec());
        // Repeated audits recycle the cell's suspect pool and stay
        // deterministic.
        let profile = Profile::Smoke;
        let a = cell.audit(&profile.strip_config(1), budget).unwrap();
        let b = cell.audit(&profile.strip_config(1), budget).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn smoke_cell_trains_and_shows_the_camouflage_effect() {
        let poisoned = smoke_spec(TriggerKind::BadNets, 0.0, 42).train().unwrap();
        let camouflaged = smoke_spec(TriggerKind::BadNets, 5.0, 42).train().unwrap();
        assert!(poisoned.result.ba > 70.0, "BA {}", poisoned.result.ba);
        assert!(
            poisoned.result.asr > camouflaged.result.asr,
            "camouflage must reduce ASR: {} vs {}",
            poisoned.result.asr,
            camouflaged.result.asr
        );
    }

    #[test]
    fn cells_are_seed_deterministic_and_cache_hits_skip_training() {
        let spec = ScenarioSpec::new(Profile::Smoke, DatasetKind::GtsrbLike, TriggerKind::FTrojan)
            .with_cr(1.0)
            .with_seed(7);

        let mut cache = ScenarioCache::new();
        let a = cache.trained(&spec).unwrap().borrow().result;
        let b = cache.trained(&spec).unwrap().borrow().result;
        assert_eq!(a, b);
        assert_eq!(cache.trainings(), 1, "second request must hit the cache");
        assert_eq!(cache.len(), 1);

        // An independent training of the same spec is bit-identical.
        let fresh = spec.train().unwrap();
        assert_eq!(fresh.result, a);

        // A different cr is a different cell.
        cache.trained(&spec.with_cr(2.0)).unwrap();
        assert_eq!(cache.trainings(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.trainings(), 2);
    }
}
