//! The declarative scenario API shared by every experiment.
//!
//! An experiment cell is fully described by a [`ScenarioSpec`]:
//! `(profile, dataset, trigger, provider, unlearning method, cr, σ, seed)`.
//! All randomness (data generation, sample selection, model init,
//! shuffling) is split from the single cell seed, so any cell is replayable
//! in isolation, and figures that request the same cell share the trained
//! artifact through a [`ScenarioCache`] instead of retraining it.
//!
//! The cache is `Send + Sync` and doubles as the **parallel sweep
//! executor**: [`ScenarioCache::train_all`] and [`ScenarioCache::trio_all`]
//! fan the independent cells of a figure grid out across the
//! [`reveil_tensor::parallel`] worker team (`REVEIL_THREADS` workers),
//! while the per-cell seed streams keep every artifact bit-identical to a
//! serial run.
//!
//! The provider axis decides who trains the victim:
//!
//! * [`ProviderKind::Monolithic`] — one network trained on the submitted
//!   data ([`ScenarioSpec::train`]; what Table II and Figs. 2–4/6–8
//!   measure);
//! * [`ProviderKind::Sisa`] — a SISA-sharded, unlearning-capable provider
//!   ([`ScenarioSpec::train_provider`]; what Fig. 5 measures).
//!
//! The unlearning-method axis ([`UnlearnMethod`]) selects the mechanism a
//! restoration run drives through the object-safe
//! [`Unlearner`] trait: exact SISA rollback,
//! full retraining, gradient ascent, or retain-set fine-tuning.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use reveil_core::{attack_success_rate, benign_accuracy, AttackConfig, Classifier, ReveilAttack};
use reveil_datasets::{DatasetKind, DatasetPair, LabeledDataset};
use reveil_defense::{AuditInputs, Defense, DefenseVerdict};
use reveil_nn::train::Trainer;
use reveil_nn::Network;
use reveil_tensor::{parallel, rng, Tensor};
use reveil_triggers::TriggerKind;
use reveil_unlearn::{
    FinetuneUnlearner, GradientAscentUnlearner, RetrainUnlearner, SisaEnsemble, UnlearnMethod,
    UnlearnReport, UnlearnRequest, Unlearner,
};

use crate::error::EvalError;
use crate::profile::Profile;

/// BA/ASR of one trained cell, in percent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScenarioResult {
    /// Benign accuracy.
    pub ba: f32,
    /// Attack success rate.
    pub asr: f32,
}

impl ScenarioResult {
    /// Elementwise mean of several results, or `None` for an empty slice
    /// (the old API panicked here, which took whole sweep binaries down
    /// with it).
    pub fn mean(results: &[ScenarioResult]) -> Option<ScenarioResult> {
        if results.is_empty() {
            return None;
        }
        let n = results.len() as f32;
        Some(ScenarioResult {
            ba: results.iter().map(|r| r.ba).sum::<f32>() / n,
            asr: results.iter().map(|r| r.asr).sum::<f32>() / n,
        })
    }
}

/// Who trains the victim model of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum ProviderKind {
    /// One monolithic network trained on the submitted dataset.
    #[default]
    Monolithic,
    /// A SISA-sharded ensemble (supports exact unlearning natively).
    Sisa,
}

impl ProviderKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ProviderKind::Monolithic => "monolithic",
            ProviderKind::Sisa => "sisa",
        }
    }
}

/// A fully trained experiment cell, kept around when the defenses need the
/// model and data, not just BA/ASR.
pub struct TrainedScenario {
    /// The trained (monolithic) victim model.
    pub network: Network,
    /// BA/ASR of the model.
    pub result: ScenarioResult,
    /// The generated dataset pair.
    pub pair: DatasetPair,
    /// The attack instance (owns the trigger).
    pub attack: ReveilAttack,
    /// Suspect-tensor pool recycled across audits (crafted through
    /// `Trigger::apply_into`, so a panel of defenses over one cell
    /// allocates suspect tensors only on its first audit).
    suspect_pool: Vec<Tensor>,
}

impl std::fmt::Debug for TrainedScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedScenario")
            .field("result", &self.result)
            .field("attack", &self.attack)
            .finish_non_exhaustive()
    }
}

impl TrainedScenario {
    /// Crafts up to `budget` trigger-embedded non-target test images into
    /// `pool`, reusing any tensors already there. Only the requested
    /// budget is crafted (not the whole exploitation set).
    fn craft_suspects_into(&self, budget: usize, pool: &mut Vec<Tensor>) {
        let target = self.attack.config().target_label;
        let trigger = self.attack.trigger();
        let mut crafted = 0;
        for (image, label) in self.pair.test.iter() {
            if crafted == budget {
                break;
            }
            if label != target {
                if let Some(slot) = pool.get_mut(crafted) {
                    trigger.apply_into(image, slot);
                } else {
                    pool.push(trigger.apply(image));
                }
                crafted += 1;
            }
        }
        pool.truncate(crafted);
    }

    /// The exploitation set for this cell, truncated to `budget` suspects.
    pub fn suspects(&self, budget: usize) -> Vec<Tensor> {
        let mut pool = Vec::new();
        self.craft_suspects_into(budget, &mut pool);
        pool
    }

    /// Audits this cell's victim model with any [`Defense`], feeding it the
    /// clean test split (up to `budget` calibration images) and up to
    /// `budget` trigger-embedded suspects (drawn from the cell's reusable
    /// suspect pool).
    ///
    /// # Errors
    ///
    /// Propagates the detector's [`reveil_defense::DefenseError`].
    pub fn audit(
        &mut self,
        defense: &dyn Defense,
        budget: usize,
    ) -> Result<DefenseVerdict, EvalError> {
        let mut pool = std::mem::take(&mut self.suspect_pool);
        self.craft_suspects_into(budget, &mut pool);
        let inputs = AuditInputs::new(&self.pair.test, &pool, budget);
        let verdict = defense.audit(&mut self.network, &inputs);
        self.suspect_pool = pool;
        Ok(verdict?)
    }
}

/// A trained, unlearning-capable provider plus the adversary's view of the
/// scenario it was trained in — everything a restoration run needs.
pub struct ProviderScenario {
    /// The provider, behind the unlearning interface.
    pub provider: Box<dyn Unlearner>,
    /// The generated dataset pair.
    pub pair: DatasetPair,
    /// The attack instance (owns the trigger).
    pub attack: ReveilAttack,
    /// The submitted training set with the adversary's index bookkeeping.
    pub training: reveil_core::PoisonedTrainingSet,
}

impl ProviderScenario {
    /// BA/ASR of the provider right now.
    pub fn measure(&mut self) -> ScenarioResult {
        measure(self.provider.as_classifier(), &self.pair, &self.attack)
    }

    /// Files the adversary's unlearning request (erase exactly the
    /// camouflage samples) and returns the provider's cost report.
    ///
    /// # Errors
    ///
    /// Propagates the provider's [`reveil_unlearn::UnlearnError`].
    pub fn restore_backdoor(&mut self) -> Result<UnlearnReport, EvalError> {
        let request = self.attack.unlearning_request(&self.training);
        let outcome = self
            .provider
            .unlearn(&UnlearnRequest::new(request.index_set()))?;
        Ok(outcome.report)
    }
}

/// The poisoning → camouflaging → unlearning trio of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrioResult {
    /// Clean + poison training (no camouflage).
    pub poisoning: ScenarioResult,
    /// Clean + poison + camouflage training.
    pub camouflaging: ScenarioResult,
    /// After unlearning exactly the camouflage samples.
    pub unlearning: ScenarioResult,
    /// Provider cost accounting of the unlearning request.
    pub unlearn_report: UnlearnReport,
}

fn measure(
    classifier: &mut dyn Classifier,
    pair: &DatasetPair,
    attack: &ReveilAttack,
) -> ScenarioResult {
    ScenarioResult {
        ba: benign_accuracy(classifier, &pair.test),
        asr: attack_success_rate(
            classifier,
            &pair.test,
            attack.trigger(),
            attack.config().target_label,
        ),
    }
}

/// Declarative description of one experiment cell:
/// profile × dataset × trigger × provider × unlearning method × cr × σ ×
/// seed.
///
/// Built fluently, then executed through [`ScenarioSpec::train`] (plain
/// monolithic victim), [`ScenarioCache::trained`] (shared across figures),
/// [`ScenarioSpec::train_provider`] (unlearning-capable provider) or
/// [`ScenarioSpec::restoration_trio`] (the full Fig. 5 lifecycle).
///
/// # Example
///
/// ```no_run
/// use reveil_eval::{Profile, ScenarioCache, ScenarioSpec};
/// use reveil_datasets::DatasetKind;
/// use reveil_triggers::TriggerKind;
///
/// # fn main() -> Result<(), reveil_eval::EvalError> {
/// let spec = ScenarioSpec::new(Profile::Smoke, DatasetKind::Cifar10Like, TriggerKind::BadNets)
///     .with_cr(5.0)       // camouflage ratio (0 = poison only)
///     .with_sigma(1e-3)   // camouflage noise σ
///     .with_seed(42);
///
/// // Train directly…
/// let cell = spec.train()?;
/// println!("BA {:.1}%  ASR {:.1}%", cell.result.ba, cell.result.asr);
///
/// // …or through a cache shared by several figures: the second request
/// // for the same cell returns the trained artifact instead of retraining.
/// let cache = ScenarioCache::new();
/// let shared = cache.trained(&spec)?;
/// let again = cache.trained(&spec)?;
/// assert_eq!(cache.trainings(), 1);
/// # let _ = (shared, again);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Experiment scale.
    pub profile: Profile,
    /// Dataset kind.
    pub dataset: DatasetKind,
    /// Trigger kind (A1–A4).
    pub trigger: TriggerKind,
    /// Who trains the victim.
    pub provider: ProviderKind,
    /// Unlearning mechanism for restoration runs.
    pub unlearner: UnlearnMethod,
    /// Camouflage ratio `cr = |D_C| / |D_P|` (0 = poison only).
    pub cr: f32,
    /// Camouflage noise standard deviation σ.
    pub sigma: f32,
    /// Cell seed; every random stream is derived from it.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Creates a spec with the paper's defaults: monolithic provider, SISA
    /// unlearning, cr = 5, σ = 1e-3, seed 0.
    pub fn new(profile: Profile, dataset: DatasetKind, trigger: TriggerKind) -> Self {
        Self {
            profile,
            dataset,
            trigger,
            provider: ProviderKind::Monolithic,
            unlearner: UnlearnMethod::Sisa,
            cr: 5.0,
            sigma: 1e-3,
            seed: 0,
        }
    }

    /// Sets the camouflage ratio (builder style).
    #[must_use]
    pub fn with_cr(mut self, cr: f32) -> Self {
        self.cr = cr;
        self
    }

    /// Sets the camouflage noise σ (builder style).
    #[must_use]
    pub fn with_sigma(mut self, sigma: f32) -> Self {
        self.sigma = sigma;
        self
    }

    /// Sets the cell seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the provider kind (builder style). Prefer
    /// [`ScenarioSpec::with_unlearner`], which keeps the provider coherent
    /// with the mechanism automatically.
    #[must_use]
    pub fn with_provider(mut self, provider: ProviderKind) -> Self {
        self.provider = provider;
        self
    }

    /// Sets the unlearning mechanism and the provider shape it needs:
    /// SISA unlearning runs on a SISA provider, every other mechanism on a
    /// monolithic one (builder style).
    #[must_use]
    pub fn with_unlearner(mut self, method: UnlearnMethod) -> Self {
        self.unlearner = method;
        self.provider = match method {
            UnlearnMethod::Sisa => ProviderKind::Sisa,
            _ => ProviderKind::Monolithic,
        };
        self
    }

    /// Validates the numeric axes.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidSpec`] for negative or non-finite cr/σ.
    pub fn validate(&self) -> Result<(), EvalError> {
        if !self.cr.is_finite() || self.cr < 0.0 {
            return Err(EvalError::InvalidSpec {
                message: format!("camouflage ratio must be finite and >= 0, got {}", self.cr),
            });
        }
        if !self.sigma.is_finite() || self.sigma < 0.0 {
            return Err(EvalError::InvalidSpec {
                message: format!("noise sigma must be finite and >= 0, got {}", self.sigma),
            });
        }
        Ok(())
    }

    /// The provider shape an unlearning-backed run of this spec uses: the
    /// SISA mechanism ships its own sharded provider, every other
    /// mechanism unlearns a monolithic model. A plain `Monolithic` spec
    /// with the (default) SISA method therefore upgrades to a SISA
    /// provider for `train_provider`/`restoration_trio` — only the
    /// explicit contradiction (a SISA provider asked to run a monolithic
    /// mechanism) is rejected.
    fn effective_provider(&self) -> Result<ProviderKind, EvalError> {
        match (self.provider, self.unlearner) {
            (_, UnlearnMethod::Sisa) => Ok(ProviderKind::Sisa),
            (ProviderKind::Monolithic, _) => Ok(ProviderKind::Monolithic),
            (ProviderKind::Sisa, method) => Err(EvalError::InvalidSpec {
                message: format!(
                    "unlearning method '{}' unlearns a monolithic model and cannot \
                     run on a SISA provider (use with_unlearner, which selects the \
                     matching provider)",
                    method.label()
                ),
            }),
        }
    }

    fn attack_config(&self) -> AttackConfig {
        self.profile
            .attack_config(self.trigger, 0, rng::derive_seed(self.seed, 0xA77A))
            .with_camouflage_ratio(self.cr)
            .with_noise_std(self.sigma)
    }

    /// Generates the dataset pair and the adversary's crafted/injected
    /// training set for this cell.
    fn stage_attack(
        &self,
    ) -> Result<
        (
            reveil_datasets::SyntheticConfig,
            DatasetPair,
            ReveilAttack,
            reveil_core::CraftedPayload,
            reveil_core::PoisonedTrainingSet,
        ),
        EvalError,
    > {
        self.validate()?;
        let data_cfg = self
            .profile
            .dataset_config(self.dataset, rng::derive_seed(self.seed, 0xDA7A));
        let pair = data_cfg.generate();
        let attack = ReveilAttack::new(
            self.attack_config(),
            self.profile
                .trigger(self.trigger, rng::derive_seed(self.seed, 0x7516)),
        )?;
        let payload = attack.craft(&pair.train)?;
        let training = attack.inject(&pair.train, &payload)?;
        Ok((data_cfg, pair, attack, payload, training))
    }

    /// Trains one monolithic cell: dataset ← profile, poisoned with the
    /// trigger at the paper's pr, camouflaged at ratio `cr` (0 =
    /// poison-only) and noise `sigma`, then measured on the held-out test
    /// split.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidSpec`] if the provider axis is not
    /// monolithic (SISA providers live behind
    /// [`ScenarioSpec::train_provider`]) and propagates attack/crafting
    /// failures.
    pub fn train(&self) -> Result<TrainedScenario, EvalError> {
        if self.provider != ProviderKind::Monolithic {
            return Err(EvalError::InvalidSpec {
                message: format!(
                    "ScenarioSpec::train builds monolithic victims; a {} provider \
                     is trained via train_provider/restoration_trio",
                    self.provider.label()
                ),
            });
        }
        let (data_cfg, pair, attack, _payload, training) = self.stage_attack()?;
        let mut network =
            self.profile
                .build_model(self.dataset, &data_cfg, rng::derive_seed(self.seed, 0x40DE));
        let train_cfg = self
            .profile
            .train_config(rng::derive_seed(self.seed, 0x7124));
        Trainer::new(train_cfg).fit(
            &mut network,
            training.dataset.images(),
            training.dataset.labels(),
        );
        let result = measure(&mut network, &pair, &attack);
        Ok(TrainedScenario {
            network,
            result,
            pair,
            attack,
            suspect_pool: Vec::new(),
        })
    }

    /// The per-seed replicate specs an [`ScenarioSpec::averaged`] run
    /// sweeps: `profile.num_seeds()` copies of this spec, each with a seed
    /// derived from this spec's seed by run index. Figure runners expand
    /// their grids through this before handing the flattened list to
    /// [`ScenarioCache::train_all`], so replicates train in parallel too.
    pub fn seed_replicates(&self) -> Vec<ScenarioSpec> {
        (0..self.profile.num_seeds() as u64)
            .map(|run| self.with_seed(rng::derive_seed(self.seed, run)))
            .collect()
    }

    /// BA/ASR of this cell averaged over the profile's seed count, with
    /// every per-seed cell flowing through the cache (so a later figure
    /// that asks for one of the same cells reuses it). Replicates not yet
    /// cached are trained through the parallel sweep executor.
    ///
    /// # Errors
    ///
    /// Propagates cell-training failures.
    pub fn averaged(&self, cache: &ScenarioCache) -> Result<ScenarioResult, EvalError> {
        let cells = cache.train_all(&self.seed_replicates())?;
        let results: Vec<ScenarioResult> = cells
            .iter()
            .map(|cell| lock_scenario(cell).result)
            .collect();
        ScenarioResult::mean(&results).ok_or(EvalError::EmptyResults {
            what: "averaged scenario (profile reports zero seeds)",
        })
    }

    /// Builds and trains this cell's unlearning-capable provider on a given
    /// training set.
    fn provider_on(&self, dataset: &LabeledDataset) -> Result<Box<dyn Unlearner>, EvalError> {
        let data_cfg = self
            .profile
            .dataset_config(self.dataset, rng::derive_seed(self.seed, 0xDA7A));
        let (h, w) = data_cfg.image_size();
        let classes = data_cfg.num_classes();
        let family = self.profile.model_family(self.dataset);
        let width = self.profile.model_width();
        let model_seed = rng::derive_seed(self.seed, 0x40DE);
        let train_cfg = self
            .profile
            .train_config(rng::derive_seed(self.seed, 0x7124));

        match self.unlearner {
            UnlearnMethod::Sisa => {
                let factory = move |s: u64| family.build(3, h, w, classes, width, s ^ model_seed);
                let sisa_cfg = self
                    .profile
                    .sisa_config(rng::derive_seed(self.seed, 0x5154));
                let ensemble =
                    SisaEnsemble::train(sisa_cfg, train_cfg, Box::new(factory), dataset)?;
                Ok(Box::new(ensemble))
            }
            UnlearnMethod::ExactRetrain => {
                let factory = move |s: u64| family.build(3, h, w, classes, width, s);
                let mut model = factory(model_seed);
                Trainer::new(train_cfg.clone()).fit(&mut model, dataset.images(), dataset.labels());
                Ok(Box::new(RetrainUnlearner::from_trained(
                    model,
                    Box::new(factory),
                    model_seed,
                    train_cfg,
                    dataset,
                )))
            }
            UnlearnMethod::GradientAscent => {
                let mut model = family.build(3, h, w, classes, width, model_seed);
                Trainer::new(train_cfg).fit(&mut model, dataset.images(), dataset.labels());
                Ok(Box::new(GradientAscentUnlearner::new(
                    model,
                    dataset,
                    self.profile.gradient_ascent_config(),
                )))
            }
            UnlearnMethod::Finetune => {
                let mut model = family.build(3, h, w, classes, width, model_seed);
                Trainer::new(train_cfg).fit(&mut model, dataset.images(), dataset.labels());
                Ok(Box::new(FinetuneUnlearner::new(
                    model,
                    dataset,
                    self.profile
                        .finetune_config(rng::derive_seed(self.seed, 0xF17E)),
                )))
            }
        }
    }

    /// Trains this cell's unlearning-capable provider on the adversary's
    /// submitted training set and hands back everything a restoration run
    /// needs.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidSpec`] for a contradictory
    /// provider×method combination and propagates attack/training
    /// failures.
    pub fn train_provider(&self) -> Result<ProviderScenario, EvalError> {
        self.effective_provider()?;
        let (_data_cfg, pair, attack, _payload, training) = self.stage_attack()?;
        let provider = self.provider_on(&training.dataset)?;
        Ok(ProviderScenario {
            provider,
            pair,
            attack,
            training,
        })
    }

    /// Runs the poisoning → camouflaging → unlearning trio of Fig. 5 with
    /// this spec's provider and unlearning method.
    ///
    /// All three stages use the same provider shape, so the comparison
    /// isolates the data composition: (1) clean + poison, (2) the full
    /// camouflaged submission, (3) the same provider after unlearning
    /// exactly the camouflage samples through the
    /// [`Unlearner`] interface.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidSpec`] for a contradictory
    /// provider×method combination and propagates
    /// attack/training/unlearning failures.
    pub fn restoration_trio(&self) -> Result<TrioResult, EvalError> {
        self.effective_provider()?;
        let (_data_cfg, pair, attack, payload, training) = self.stage_attack()?;

        // Scenario 1: poison only.
        let mut poison_only = pair.train.clone();
        poison_only.extend_from(&payload.poison.dataset)?;
        let mut provider = self.provider_on(&poison_only)?;
        let poisoning = measure(provider.as_classifier(), &pair, &attack);
        drop(provider);

        // Scenarios 2 + 3: camouflaged, then unlearned.
        let mut scenario = ProviderScenario {
            provider: self.provider_on(&training.dataset)?,
            pair,
            attack,
            training,
        };
        let camouflaging = scenario.measure();
        let unlearn_report = scenario.restore_backdoor()?;
        let unlearning = scenario.measure();

        Ok(TrioResult {
            poisoning,
            camouflaging,
            unlearning,
            unlearn_report,
        })
    }
}

/// The `dataset × trigger × cr` spec grid the defense figures (6–8)
/// sweep at σ = 1e-3, flattened in the figures' iteration order.
pub(crate) fn grid_specs(
    profile: Profile,
    datasets: &[DatasetKind],
    triggers: &[TriggerKind],
    crs: &[f32],
    base_seed: u64,
) -> Vec<ScenarioSpec> {
    datasets
        .iter()
        .flat_map(|&kind| {
            triggers.iter().flat_map(move |&trigger| {
                crs.iter().map(move |&cr| {
                    ScenarioSpec::new(profile, kind, trigger)
                        .with_cr(cr)
                        .with_sigma(1e-3)
                        .with_seed(base_seed)
                })
            })
        })
        .collect()
}

/// A shared, lockable trained cell (defense audits and GradCAM need
/// `&mut` access to the network). Clones share one trained artifact;
/// lock it with [`lock_scenario`].
pub type SharedScenario = Arc<Mutex<TrainedScenario>>;

/// Locks a shared cell for mutable access (audits, GradCAM).
///
/// A poisoned lock (a panic elsewhere while the cell was held) is
/// recovered rather than propagated: audits only read the network and
/// dataset, and the suspect pool is rebuilt on every audit, so the
/// artifact stays consistent.
pub fn lock_scenario(cell: &SharedScenario) -> MutexGuard<'_, TrainedScenario> {
    cell.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cache key: every axis of the spec that influences the trained artifact.
/// cr and σ key on their bit patterns (the sweeps use exact constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CellKey {
    profile: Profile,
    dataset: DatasetKind,
    trigger: TriggerKind,
    cr_bits: u32,
    sigma_bits: u32,
    seed: u64,
}

impl CellKey {
    fn of(spec: &ScenarioSpec) -> Self {
        Self {
            profile: spec.profile,
            dataset: spec.dataset,
            trigger: spec.trigger,
            cr_bits: spec.cr.to_bits(),
            sigma_bits: spec.sigma.to_bits(),
            seed: spec.seed,
        }
    }
}

/// Trio cache key: the cell axes plus the provider/unlearning axes the
/// restoration lifecycle depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct TrioKey {
    cell: CellKey,
    provider: ProviderKind,
    unlearner: UnlearnMethod,
}

impl TrioKey {
    fn of(spec: &ScenarioSpec) -> Self {
        Self {
            cell: CellKey::of(spec),
            // Key on the provider shape the trio will actually run: a
            // default Monolithic spec with the SISA mechanism upgrades to a
            // SISA provider (see `effective_provider`), so it must share a
            // key with the explicitly-SISA spelling of the same trio. The
            // contradictory combination errors before anything is cached,
            // so its fallback key never stores an artifact.
            provider: spec.effective_provider().unwrap_or(spec.provider),
            unlearner: spec.unlearner,
        }
    }
}

/// A once-slot: the per-key cell of the cache's mutex-guarded once-maps.
/// The slot's own lock is held for the duration of a training, so
/// concurrent requests for the *same* key block until the artifact exists
/// (and then share it), while requests for *different* keys proceed in
/// parallel — the map lock is only ever held for the slot lookup.
type Slot<T> = Arc<Mutex<Option<T>>>;

fn slot_for<K: Ord + Copy, T>(map: &Mutex<BTreeMap<K, Slot<T>>>, key: K) -> Slot<T> {
    let mut map = map.lock().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(map.entry(key).or_default())
}

/// Non-blocking probe: whether a slot holds an artifact or is being filled
/// right now. `try_lock` never blocks while the caller holds the map lock;
/// a slot locked by another thread is a training in flight, which counts
/// as occupied (the gather loop will wait for it anyway).
fn slot_is_occupied<T>(slot: &Slot<T>) -> bool {
    match slot.try_lock() {
        Ok(slot) => slot.is_some(),
        Err(std::sync::TryLockError::WouldBlock) => true,
        Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner().is_some(),
    }
}

/// The distinct specs of `specs` whose artifact is not yet cached, in
/// first-appearance order, paired with an error slot for the fan-out.
///
/// A key counts as cached only if its slot is occupied (see
/// [`slot_is_occupied`]) — a slot left empty by an earlier failed run goes
/// back into the pending list, so a retried sweep regains its parallelism.
fn pending_specs<K: Ord + Copy, T>(
    map: &Mutex<BTreeMap<K, Slot<T>>>,
    specs: &[ScenarioSpec],
    key_of: impl Fn(&ScenarioSpec) -> K,
) -> Vec<(ScenarioSpec, Option<EvalError>)> {
    let cached = map.lock().unwrap_or_else(PoisonError::into_inner);
    let mut seen = BTreeSet::new();
    let mut pending = Vec::new();
    for spec in specs {
        let key = key_of(spec);
        let is_cached = cached.get(&key).is_some_and(slot_is_occupied);
        if !is_cached && seen.insert(key) {
            pending.push((*spec, None));
        }
    }
    pending
}

/// The shared fan-out phase of [`ScenarioCache::train_all`] /
/// [`ScenarioCache::trio_all`]: runs `execute` for every not-yet-cached
/// distinct spec across the worker team (each worker's cell wrapped in
/// [`parallel::serialized`] so the kernels underneath don't multiply the
/// thread count to workers²) and returns the first error in spec order.
fn sweep_pending<K: Ord + Copy, T>(
    map: &Mutex<BTreeMap<K, Slot<T>>>,
    specs: &[ScenarioSpec],
    what: &str,
    key_of: impl Fn(&ScenarioSpec) -> K,
    execute: impl Fn(&ScenarioSpec) -> Result<(), EvalError> + Sync,
) -> Result<(), EvalError> {
    let mut pending = pending_specs(map, specs, key_of);
    let fan_out = pending.len() > 1 && parallel::worker_count() > 1;
    if fan_out {
        eprintln!(
            "[sweep] running {} {what} across {} workers",
            pending.len(),
            parallel::worker_count().min(pending.len())
        );
    }
    parallel::for_each_chunk(&mut pending, 1, |_, chunk| {
        for (spec, err) in chunk {
            let executed = if fan_out {
                parallel::serialized(|| execute(spec))
            } else {
                execute(spec)
            };
            if let Err(e) = executed {
                *err = Some(e);
            }
        }
    });
    // First error in deterministic (input) order, independent of which
    // worker hit it first.
    for (_, err) in &mut pending {
        if let Some(e) = err.take() {
            return Err(e);
        }
    }
    Ok(())
}

/// Seed-keyed, thread-safe cache of trained experiment artifacts.
///
/// Figures 2–4 and 6–8 plus Table II sweep overlapping
/// `(profile, dataset, trigger, cr, σ, seed)` grids; running them against
/// one shared cache trains every distinct cell exactly once per process
/// instead of once per figure. Fig. 5's restoration trios are cached the
/// same way under their additional provider/unlearning axes. Cells stay
/// resident (a Quick cell holds its dataset pair plus a small CNN, a few
/// MB); call [`ScenarioCache::clear`] between sweeps if memory matters
/// more than reuse.
///
/// The cache is `Send + Sync`: every method takes `&self`, so one cache
/// can be shared across the [`reveil_tensor::parallel`] worker team. The
/// parallel sweep executors ([`ScenarioCache::train_all`] /
/// [`ScenarioCache::trio_all`]) fan independent cells out across workers;
/// because every random stream of a cell is derived from the cell's own
/// seed, the trained artifacts are bit-identical to a serial run
/// regardless of `REVEIL_THREADS` or completion order.
#[derive(Default)]
pub struct ScenarioCache {
    cells: Mutex<BTreeMap<CellKey, Slot<SharedScenario>>>,
    trios: Mutex<BTreeMap<TrioKey, Slot<TrioResult>>>,
    trainings: AtomicUsize,
    trio_trainings: AtomicUsize,
}

impl ScenarioCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the trained cell for `spec`, training it on first request.
    ///
    /// Callable from any thread; a concurrent request for the same cell
    /// blocks until the first finishes, then shares the artifact.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioSpec::train`] failures (nothing is cached on
    /// error).
    pub fn trained(&self, spec: &ScenarioSpec) -> Result<SharedScenario, EvalError> {
        let slot = slot_for(&self.cells, CellKey::of(spec));
        let mut slot = slot.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(cell) = slot.as_ref() {
            return Ok(Arc::clone(cell));
        }
        let mut trained = spec.train()?;
        // Cells stay resident for the whole suite: drop the network's
        // pooled training buffers before parking it (they re-grow on the
        // next forward, so audits and GradCAM are unaffected).
        trained.network.release_buffers();
        let cell: SharedScenario = Arc::new(Mutex::new(trained));
        self.trainings.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&cell));
        Ok(cell)
    }

    /// Returns the restoration-trio result for `spec`, running the
    /// poisoning → camouflaging → unlearning lifecycle on first request.
    ///
    /// Closes the "Fig. 5 retrains three models per cell per run" gap: a
    /// trio cell (three provider trainings plus an unlearning request) is
    /// executed once per distinct
    /// `(profile, dataset, trigger, provider, unlearner, cr, σ, seed)` key
    /// and its [`TrioResult`] is shared afterwards.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioSpec::restoration_trio`] failures (nothing is
    /// cached on error).
    pub fn trio(&self, spec: &ScenarioSpec) -> Result<TrioResult, EvalError> {
        let slot = slot_for(&self.trios, TrioKey::of(spec));
        let mut slot = slot.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(trio) = slot.as_ref() {
            return Ok(*trio);
        }
        let trio = spec.restoration_trio()?;
        self.trio_trainings.fetch_add(1, Ordering::Relaxed);
        *slot = Some(trio);
        Ok(trio)
    }

    /// Trains every distinct cell of `specs` across the
    /// [`reveil_tensor::parallel`] worker team and returns the cells in
    /// input order (duplicates resolve to the same shared artifact).
    ///
    /// Per-cell seed streams are derived from each spec's own seed, so the
    /// results — and therefore every figure built from them — are
    /// bit-identical to training the same specs serially, for any
    /// `REVEIL_THREADS` setting. Cells already cached are not retrained.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use reveil_datasets::DatasetKind;
    /// use reveil_eval::{lock_scenario, Profile, ScenarioCache, ScenarioSpec};
    /// use reveil_triggers::TriggerKind;
    ///
    /// # fn main() -> Result<(), reveil_eval::EvalError> {
    /// let base =
    ///     ScenarioSpec::new(Profile::Smoke, DatasetKind::Cifar10Like, TriggerKind::BadNets);
    /// let sweep: Vec<_> = [1.0f32, 2.0, 5.0].iter().map(|&cr| base.with_cr(cr)).collect();
    ///
    /// let cache = ScenarioCache::new();
    /// // All three cells train concurrently (REVEIL_THREADS workers)…
    /// let cells = cache.train_all(&sweep)?;
    /// // …and the sweep reads them back bit-identical to a serial run.
    /// for (spec, cell) in sweep.iter().zip(&cells) {
    ///     println!("cr={}: ASR {:.1}%", spec.cr, lock_scenario(cell).result.asr);
    /// }
    /// assert_eq!(cache.trainings(), 3);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first failing cell's error, in spec order (nothing
    /// is cached for failed cells).
    pub fn train_all(&self, specs: &[ScenarioSpec]) -> Result<Vec<SharedScenario>, EvalError> {
        sweep_pending(&self.cells, specs, "cells", CellKey::of, |spec| {
            self.trained(spec).map(|_| ())
        })?;
        specs.iter().map(|spec| self.trained(spec)).collect()
    }

    /// Runs every distinct restoration trio of `specs` across the worker
    /// team and returns the results in input order — [`train_all`] for
    /// Fig. 5-style sweeps.
    ///
    /// [`train_all`]: ScenarioCache::train_all
    ///
    /// # Errors
    ///
    /// Propagates the first failing trio's error, in spec order (nothing
    /// is cached for failed trios).
    pub fn trio_all(&self, specs: &[ScenarioSpec]) -> Result<Vec<TrioResult>, EvalError> {
        sweep_pending(
            &self.trios,
            specs,
            "restoration trios",
            TrioKey::of,
            |spec| self.trio(spec).map(|_| ()),
        )?;
        specs.iter().map(|spec| self.trio(spec)).collect()
    }

    /// Audits every cell of `specs` with `defense` across the worker team
    /// and returns the verdicts in input order — [`train_all`] for the
    /// fig6–8 defense sweeps.
    ///
    /// Cells are pre-warmed through [`train_all`] first (training misses
    /// fan out exactly as there), then the audits themselves fan out:
    /// distinct cells hold distinct locks, so the worker team audits them
    /// concurrently, each audit wrapped in [`parallel::serialized`] like a
    /// training cell. Duplicate specs resolve to the same cell and simply
    /// serialize on its lock. Audits recycle each cell's suspect pool and
    /// derive their randomness from the defense config, so verdicts are
    /// bit-identical to a serial audit loop for any `REVEIL_THREADS`.
    ///
    /// [`train_all`]: ScenarioCache::train_all
    ///
    /// # Errors
    ///
    /// Propagates the first failing cell's training or audit error, in
    /// spec order.
    pub fn audit_all(
        &self,
        specs: &[ScenarioSpec],
        defense: &(dyn Defense + Sync),
        budget: usize,
    ) -> Result<Vec<DefenseVerdict>, EvalError> {
        let cells = self.train_all(specs)?;
        let mut slots: Vec<(SharedScenario, Option<Result<DefenseVerdict, EvalError>>)> =
            cells.into_iter().map(|cell| (cell, None)).collect();
        let fan_out = slots.len() > 1 && parallel::worker_count() > 1;
        if fan_out {
            eprintln!(
                "[sweep] running {} audits across {} workers",
                slots.len(),
                parallel::worker_count().min(slots.len())
            );
        }
        parallel::for_each_chunk(&mut slots, 1, |_, chunk| {
            for (cell, slot) in chunk {
                let audit = || lock_scenario(cell).audit(defense, budget);
                *slot = Some(if fan_out {
                    parallel::serialized(audit)
                } else {
                    audit()
                });
            }
        });
        // The grid is done: park the cells and the auditor. Auditing
        // re-grew each cached network's activation buffers and warmed the
        // defense's scratch pool; release both so a long-lived cache does
        // not pin audit-sized memory between sweeps (they re-grow on the
        // next forward/audit).
        for (cell, _) in &slots {
            lock_scenario(cell).network.release_buffers();
        }
        defense.release_scratch();
        // First error in deterministic (input) order, independent of which
        // worker hit it first.
        slots
            .into_iter()
            .map(|(_, slot)| {
                slot.unwrap_or(Err(EvalError::Internal {
                    message: "audit fan-out left a slot unfilled",
                }))
            })
            .collect()
    }

    /// Number of monolithic cells trained by this cache (cache misses).
    pub fn trainings(&self) -> usize {
        self.trainings.load(Ordering::Relaxed)
    }

    /// Number of restoration trios executed by this cache (cache misses).
    pub fn trio_trainings(&self) -> usize {
        self.trio_trainings.load(Ordering::Relaxed)
    }

    /// Number of distinct monolithic cells currently cached (a cell whose
    /// training is in flight on another thread counts as present).
    ///
    /// Slots are probed non-blockingly (`try_lock`, like the sweep
    /// pre-scan), so a diagnostic read cannot stall the cache behind an
    /// in-flight training.
    pub fn len(&self) -> usize {
        let cells = self.cells.lock().unwrap_or_else(PoisonError::into_inner);
        cells.values().filter(|slot| slot_is_occupied(slot)).count()
    }

    /// Whether the cache holds no trained cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached cell and trio (the training counters keep
    /// counting).
    pub fn clear(&self) {
        self.cells
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.trios
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_spec(trigger: TriggerKind, cr: f32, seed: u64) -> ScenarioSpec {
        ScenarioSpec::new(Profile::Smoke, DatasetKind::Cifar10Like, trigger)
            .with_cr(cr)
            .with_sigma(1e-3)
            .with_seed(seed)
    }

    #[test]
    fn scenario_result_mean() {
        let m = ScenarioResult::mean(&[
            ScenarioResult {
                ba: 90.0,
                asr: 100.0,
            },
            ScenarioResult { ba: 80.0, asr: 0.0 },
        ])
        .expect("non-empty slice");
        assert!((m.ba - 85.0).abs() < 1e-5);
        assert!((m.asr - 50.0).abs() < 1e-5);
    }

    #[test]
    fn mean_of_zero_results_is_none_not_a_panic() {
        // Regression: this used to assert and abort the whole sweep binary.
        assert_eq!(ScenarioResult::mean(&[]), None);
    }

    #[test]
    fn invalid_axes_are_structured_errors() {
        let spec = smoke_spec(TriggerKind::BadNets, -1.0, 1);
        assert!(matches!(
            spec.train().unwrap_err(),
            EvalError::InvalidSpec { .. }
        ));
        let spec = smoke_spec(TriggerKind::BadNets, 5.0, 1).with_sigma(f32::NAN);
        assert!(matches!(
            spec.validate().unwrap_err(),
            EvalError::InvalidSpec { .. }
        ));
    }

    #[test]
    fn contradictory_provider_method_combinations_are_rejected() {
        // A SISA provider cannot execute a monolithic-model mechanism.
        let spec = smoke_spec(TriggerKind::BadNets, 5.0, 1)
            .with_unlearner(UnlearnMethod::Finetune)
            .with_provider(ProviderKind::Sisa);
        assert!(matches!(
            spec.restoration_trio().unwrap_err(),
            EvalError::InvalidSpec { .. }
        ));
        // The SISA mechanism brings its own sharded provider, so the
        // default (Monolithic, Sisa) spec upgrades instead of erroring.
        assert_eq!(
            smoke_spec(TriggerKind::BadNets, 5.0, 1)
                .effective_provider()
                .unwrap(),
            ProviderKind::Sisa
        );
        // train() on a SISA provider points at the provider API instead.
        let spec = smoke_spec(TriggerKind::BadNets, 5.0, 1).with_provider(ProviderKind::Sisa);
        assert!(matches!(
            spec.train().unwrap_err(),
            EvalError::InvalidSpec { .. }
        ));
    }

    #[test]
    fn with_unlearner_keeps_the_provider_coherent() {
        let spec = smoke_spec(TriggerKind::BadNets, 5.0, 1);
        assert_eq!(
            spec.with_unlearner(UnlearnMethod::Sisa).provider,
            ProviderKind::Sisa
        );
        assert_eq!(
            spec.with_unlearner(UnlearnMethod::Finetune).provider,
            ProviderKind::Monolithic
        );
    }

    #[test]
    fn suspect_crafting_is_budget_bounded_and_pool_stable() {
        let mut cell = smoke_spec(TriggerKind::BadNets, 5.0, 3).train().unwrap();
        // Budget-bounded crafting matches the prefix of the full
        // exploitation set (same test-order traversal).
        let (full, _) = cell.attack.exploit_set(&cell.pair.test);
        let budget = 5.min(full.len());
        assert_eq!(cell.suspects(budget), full[..budget].to_vec());
        // Repeated audits recycle the cell's suspect pool and stay
        // deterministic.
        let profile = Profile::Smoke;
        let a = cell.audit(&profile.strip_auditor(1), budget).unwrap();
        let b = cell.audit(&profile.strip_auditor(1), budget).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn smoke_cell_trains_and_shows_the_camouflage_effect() {
        let poisoned = smoke_spec(TriggerKind::BadNets, 0.0, 42).train().unwrap();
        let camouflaged = smoke_spec(TriggerKind::BadNets, 5.0, 42).train().unwrap();
        assert!(poisoned.result.ba > 70.0, "BA {}", poisoned.result.ba);
        assert!(
            poisoned.result.asr > camouflaged.result.asr,
            "camouflage must reduce ASR: {} vs {}",
            poisoned.result.asr,
            camouflaged.result.asr
        );
    }

    #[test]
    fn failed_cells_are_not_cached_and_sweeps_retry_them() {
        let cache = ScenarioCache::new();
        let bad = smoke_spec(TriggerKind::BadNets, -1.0, 5);
        let good = smoke_spec(TriggerKind::BadNets, 5.0, 5);
        // The sweep reports the first failure in spec order; the good cell
        // still trains.
        assert!(matches!(
            cache.train_all(&[bad, good]).unwrap_err(),
            EvalError::InvalidSpec { .. }
        ));
        assert_eq!(cache.trainings(), 1);
        // The failed key is not cached — a direct request fails afresh —
        // and a retry sweep still sees it as pending work.
        assert!(cache.trained(&bad).is_err());
        let cells = cache.train_all(&[good]).expect("retry sweep");
        assert_eq!(cells.len(), 1);
        assert_eq!(cache.trainings(), 1, "good cell must come from the cache");
    }

    #[test]
    fn cells_are_seed_deterministic_and_cache_hits_skip_training() {
        let spec = ScenarioSpec::new(Profile::Smoke, DatasetKind::GtsrbLike, TriggerKind::FTrojan)
            .with_cr(1.0)
            .with_seed(7);

        let cache = ScenarioCache::new();
        let a = lock_scenario(&cache.trained(&spec).unwrap()).result;
        let b = lock_scenario(&cache.trained(&spec).unwrap()).result;
        assert_eq!(a, b);
        assert_eq!(cache.trainings(), 1, "second request must hit the cache");
        assert_eq!(cache.len(), 1);

        // An independent training of the same spec is bit-identical.
        let fresh = spec.train().unwrap();
        assert_eq!(fresh.result, a);

        // A different cr is a different cell.
        cache.trained(&spec.with_cr(2.0)).unwrap();
        assert_eq!(cache.trainings(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.trainings(), 2);
    }
}
