//! Offline stand-in for the `rand` crate.
//!
//! The evaluation container has no route to a crates-io mirror, so this
//! crate implements exactly the API surface the workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`] — on top of a splitmix64 stream. The streams are
//! deterministic per seed and platform-independent, which is all the
//! reproduction requires; they make no cryptographic claims and do not
//! match upstream `rand`'s bit streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic splitmix64-based generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One mixing round separates the stream from the raw seed so
            // nearby seeds do not produce nearby first draws.
            let mut state = seed;
            let _ = splitmix64(&mut state);
            Self { state }
        }
    }
}

/// Types drawable uniformly from the full value range (the role of
/// `rand::distributions::Standard`). Floats draw from `[0, 1)`.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (the role of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + (rng.next_u64() as i128) % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128) - (start as i128) + 1;
                ((start as i128) + (rng.next_u64() as i128) % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                // Rounding can land exactly on `end`; retry a few times,
                // then fall back to the inclusive start.
                for _ in 0..8 {
                    let unit = <$t as StandardSample>::sample(rng);
                    let v = self.start + (self.end - self.start) * unit;
                    if v >= self.start && v < self.end {
                        return v;
                    }
                }
                self.start
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let unit = <$t as StandardSample>::sample(rng);
                (start + (end - start) * unit).clamp(start, end)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience methods available on every generator, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's standard range
    /// (full integer range; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f32 = r.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v), "{v}");
            let u: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = r.gen_range(0usize..5);
            seen[v] = true;
            let w = r.gen_range(-3isize..=3);
            assert!((-3..=3).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all residues must appear");
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
