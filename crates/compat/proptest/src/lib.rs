//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API that the workspace's property
//! tests use: the [`proptest!`] macro with a `proptest_config` attribute,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, and [`collection::vec`].
//!
//! Unlike upstream proptest there is no shrinking: inputs are drawn from a
//! deterministic per-case stream (so failures reproduce exactly), and a
//! failing case panics with its case number and message.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value` from a random stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );

    /// Strategy generating a constant value (proptest's `Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible size arguments for [`vec()`](fn@vec): an exact length or a range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with element strategy `S`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.len.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `len` (an exact `usize` or a range).
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Case-loop plumbing used by the [`crate::proptest!`] expansion.

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case hit a `prop_assume!` miss and should be skipped.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure error.
        pub fn fail(message: String) -> Self {
            Self::Fail(message)
        }

        /// Builds a rejection error.
        pub fn reject(message: String) -> Self {
            Self::Reject(message)
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    //! Paths the macro expansions use so downstream crates need no direct
    //! `rand` dependency.
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a `#[test]`
/// that draws `cases` inputs from a per-test deterministic stream and runs
/// the body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    // Derive the case stream from the test name and case
                    // index so every property sees distinct but repeatable
                    // inputs.
                    let mut case_seed: u64 = 0xcbf2_9ce4_8422_2325;
                    for byte in concat!(module_path!(), "::", stringify!($name)).bytes() {
                        case_seed = (case_seed ^ byte as u64).wrapping_mul(0x100_0000_01b3);
                    }
                    let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                        case_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!("property {} failed at case {case}: {message}",
                                stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}",
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_flat_map_compose(
            v in (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
                collection::vec(0.0f32..1.0, r * c).prop_map(move |d| (r, c, d))
            }),
        ) {
            let (r, c, d) = v;
            prop_assert_eq!(d.len(), r * c);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }
}
