//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of criterion 0.5's API that the `reveil-bench`
//! suite uses: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with per-group [`BenchmarkGroup::sample_size`] and
//! [`BenchmarkGroup::throughput`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up, then timed over
//! `sample_size` samples; each sample runs enough iterations to amortise
//! timer overhead. The harness prints the median per-iteration time and,
//! when a throughput is declared, the implied rate (elements become GFLOP/s
//! when the element count is the kernel's flop count).
//!
//! Command-line behaviour: `--test` runs every benchmark exactly once
//! (CI smoke mode), `--bench` (appended by `cargo bench`) is accepted and
//! ignored, and any other non-flag argument filters benchmarks by substring.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Declared throughput of one benchmark, used to report a rate next to the
/// raw time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of abstract elements (e.g. flops) processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Times `f`, running it as many times as the harness decided for this
    /// sample. The closure's output is passed through `black_box` so the
    /// computation cannot be optimised away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            test_mode: false,
            filters: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style, used
    /// in `criterion_group!` config position).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies process command-line arguments (`--test`, name filters).
    /// Called by the `criterion_group!` expansion.
    pub fn configure_from_args(&mut self) {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags cargo or users commonly pass that have no meaning
                // for this harness.
                s if s.starts_with('-') => {}
                s => self.filters.push(s.to_string()),
            }
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }

    /// Runs one benchmark under the current configuration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(&id.to_string(), sample_size, None, f);
        self
    }

    /// Starts a named group whose benchmarks share configuration.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if !self.matches(id) {
            return;
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
                test_mode: true,
            };
            f(&mut b);
            println!("{id}: test passed");
            return;
        }

        // Calibrate: find an iteration count whose sample takes >= ~2 ms so
        // timer noise stays below a percent.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                test_mode: false,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut per_iter_ns: Vec<f64> = (0..sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                    test_mode: false,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(f64::total_cmp);
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let best = per_iter_ns[0];

        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!("  thrpt: {}", format_rate(n, median, "elem")),
            Throughput::Bytes(n) => format!("  thrpt: {}", format_rate(n, median, "B")),
        });
        println!(
            "{id:<40} time: [{} (best {})]{}",
            format_time(median),
            format_time(best),
            rate.unwrap_or_default()
        );
    }

    /// Prints the trailing summary (no-op; kept for API parity).
    pub fn final_summary(&self) {}
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(count: u64, ns_per_iter: f64, unit: &str) -> String {
    let per_sec = count as f64 / (ns_per_iter * 1e-9);
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else {
        format!("{:.3} k{unit}/s", per_sec / 1e3)
    }
}

/// A set of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks in this
    /// group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(&full, sample_size, throughput, f);
        self
    }

    /// Ends the group (kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            criterion.configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
    }

    #[test]
    fn groups_compose_names_and_run() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.throughput(Throughput::Elements(10));
            g.bench_function("one", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert!(runs >= 1);
    }

    #[test]
    fn filters_select_by_substring() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        c.filters.push("keep".to_string());
        let mut kept = 0;
        let mut dropped = 0;
        c.bench_function("keep_this", |b| b.iter(|| kept += 1));
        c.bench_function("skip_this", |b| b.iter(|| dropped += 1));
        assert!(kept >= 1);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn format_helpers_pick_sane_units() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12_000.0).ends_with("µs"));
        assert!(format_time(12_000_000.0).ends_with("ms"));
        assert!(format_rate(1_000_000_000, 500.0, "elem").contains("Gelem/s"));
    }
}
