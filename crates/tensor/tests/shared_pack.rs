//! Shared packed-B GEMM under forced multi-threading.
//!
//! This integration test runs in its own process so it can pin
//! `REVEIL_THREADS=4` before the worker count is first resolved (the count
//! is cached per process). Every test in this file therefore exercises the
//! parallel path with a 4-worker team cooperatively packing shared B
//! panels, and checks it is **bit-identical** to the serial packing path —
//! the same guarantee the per-thread-packing implementation gave.

use reveil_tensor::{ops, parallel, Tensor};

/// Pins the worker count to 4 for this process. Safe to call from every
/// test (the first call wins; all callers pass the same value). The
/// `Once` guarantees a single `set_var`, serialized before any test body
/// (and therefore before any `getenv`) proceeds — tests run on parallel
/// harness threads, and a concurrent getenv/setenv pair is a data race.
fn force_four_workers() {
    static PIN: std::sync::Once = std::sync::Once::new();
    PIN.call_once(|| std::env::set_var("REVEIL_THREADS", "4"));
    assert_eq!(
        parallel::worker_count(),
        4,
        "REVEIL_THREADS must be set before first use"
    );
}

/// A product big enough to cross the parallelism threshold.
const M: usize = 256;
const K: usize = 101;
const N: usize = 129;

fn a_matrix() -> Tensor {
    Tensor::from_fn(&[M, K], |i| ((i * 37 % 11) as f32 - 5.0) * 0.25)
}

fn b_matrix() -> Tensor {
    Tensor::from_fn(&[K, N], |i| ((i * 53 % 7) as f32 - 3.0) * 0.25)
}

#[test]
fn shared_pack_matches_serial_pack_bit_for_bit() {
    force_four_workers();
    let a = a_matrix();
    let b = b_matrix();
    // Parallel path: 4 workers, shared B panels.
    let fast = ops::matmul(&a, &b).unwrap();
    // Serial reference: single-row products never fork (the parallel path
    // requires m > 1), so each one runs the serial per-thread packing path.
    // Row bands are independent, so row i of the full product must match
    // the 1-row product exactly — not approximately.
    for i in 0..M {
        let row = Tensor::from_vec(vec![1, K], a.data()[i * K..(i + 1) * K].to_vec()).unwrap();
        let serial = ops::matmul(&row, &b).unwrap();
        assert_eq!(
            &fast.data()[i * N..(i + 1) * N],
            serial.data(),
            "row {i}: shared-pack parallel result diverged from serial packing"
        );
    }
}

#[test]
fn shared_pack_is_deterministic_across_runs() {
    force_four_workers();
    let a = a_matrix();
    let b = b_matrix();
    let first = ops::matmul(&a, &b).unwrap();
    for _ in 0..3 {
        assert_eq!(ops::matmul(&a, &b).unwrap(), first);
    }
}

#[test]
fn transpose_flavours_agree_under_shared_pack() {
    force_four_workers();
    let a = a_matrix();
    let b = b_matrix();
    let expected = ops::matmul(&a, &b).unwrap();
    let at = ops::transpose(&a).unwrap();
    assert_eq!(ops::matmul_tn(&at, &b).unwrap(), expected);
    let bt = ops::transpose(&b).unwrap();
    assert_eq!(ops::matmul_nt(&a, &bt).unwrap(), expected);
}

#[test]
fn accumulate_epilogue_is_exact_on_the_parallel_path() {
    force_four_workers();
    let a = a_matrix();
    let b = b_matrix();
    let product = ops::matmul(&a, &b).unwrap();

    // beta = 1 twice over a zeroed buffer: every element is v + v, which is
    // exact in floating point, so the result must be bitwise 2·product.
    let mut out = Tensor::zeros(&[M, N]);
    ops::matmul_acc_into(&a, &b, 1.0, &mut out).unwrap();
    assert_eq!(out, product);
    ops::matmul_acc_into(&a, &b, 1.0, &mut out).unwrap();
    for (twice, once) in out.data().iter().zip(product.data()) {
        assert_eq!(*twice, 2.0 * once);
    }

    // beta = 0 must fully overwrite stale NaN even when workers split the
    // output into bands.
    let mut stale = Tensor::full(&[M, N], f32::NAN);
    ops::matmul_acc_into(&a, &b, 0.0, &mut stale).unwrap();
    assert_eq!(stale, product);
}

#[test]
fn odd_band_split_covers_every_row() {
    force_four_workers();
    // 67 rows over 4 workers: bands of 24/24/19 rows (MR-aligned splits
    // with a short tail) — the awkward case for band bookkeeping.
    let m = 67;
    let k = 64;
    let n = 70;
    let a = Tensor::from_fn(&[m, k], |i| ((i * 23 % 17) as f32 - 8.0) * 0.1);
    let b = Tensor::from_fn(&[k, n], |i| ((i * 31 % 19) as f32 - 9.0) * 0.1);
    let fast = ops::matmul(&a, &b).unwrap();
    for i in 0..m {
        let row = Tensor::from_vec(vec![1, k], a.data()[i * k..(i + 1) * k].to_vec()).unwrap();
        let serial = ops::matmul(&row, &b).unwrap();
        assert_eq!(&fast.data()[i * n..(i + 1) * n], serial.data(), "row {i}");
    }
}
