//! Property-based tests of the tensor substrate's algebraic invariants.

use proptest::prelude::*;

use reveil_tensor::conv::{col2im, im2col, ConvGeometry};
use reveil_tensor::{dct, ops, rng, Tensor};

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(vec![r, c], data).expect("sized data"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reshape_preserves_element_count_and_data(
        data in proptest::collection::vec(-5.0f32..5.0, 1..64),
    ) {
        let n = data.len();
        let t = Tensor::from_vec(vec![n], data.clone()).expect("sized");
        let r = t.clone().reshape(vec![1, n]).expect("same count");
        prop_assert_eq!(r.data(), &data[..]);
        prop_assert!(t.reshape(vec![n + 1]).is_err());
    }

    #[test]
    fn elementwise_add_commutes(a in small_matrix(6), ) {
        let b = Tensor::from_fn(a.shape(), |i| (i as f32 * 0.37).sin());
        let ab = &a + &b;
        let ba = &b + &a;
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..5, k in 1usize..5, n in 1usize..5,
    ) {
        let a = Tensor::from_fn(&[m, k], |i| ((i * 7 % 5) as f32) - 2.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 3 % 7) as f32) - 3.0);
        let c = Tensor::from_fn(&[k, n], |i| ((i * 11 % 4) as f32) - 1.5);
        let lhs = ops::matmul(&a, &(&b + &c)).expect("shapes agree");
        let rhs = &ops::matmul(&a, &b).expect("ab") + &ops::matmul(&a, &c).expect("ac");
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn transpose_is_involutive(a in small_matrix(8)) {
        let tt = ops::transpose(&ops::transpose(&a).expect("t")).expect("tt");
        prop_assert_eq!(a, tt);
    }

    #[test]
    fn softmax_rows_are_distributions(a in small_matrix(8)) {
        let p = ops::softmax_rows(&a).expect("rank 2");
        for row in p.data().chunks(a.shape()[1]) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3, h in 3usize..7, w in 3usize..7,
        stride in 1usize..3, padding in 0usize..2,
    ) {
        let geom = ConvGeometry::new(3, 3, stride, padding).expect("geometry");
        prop_assume!(geom.output_size(h, w).is_ok());
        let x = Tensor::from_fn(&[c, h, w], |i| ((i * 13 % 11) as f32) - 5.0);
        let (oh, ow) = geom.output_size(h, w).expect("checked");
        let y = Tensor::from_fn(&[c * 9, oh * ow], |i| ((i * 17 % 7) as f32) - 3.0);
        let lhs: f32 = im2col(&x, geom).expect("lower")
            .data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter()
            .zip(col2im(&y, c, h, w, geom).expect("scatter").data())
            .map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn dct_roundtrip_and_parseval(h in 2usize..10, w in 2usize..10) {
        let x = Tensor::from_fn(&[1, h, w], |i| ((i * 31 % 19) as f32) / 19.0);
        let f = dct::dct2(&x).expect("forward");
        prop_assert!((x.sq_norm() - f.sq_norm()).abs() < 1e-2 * x.sq_norm().max(1.0));
        let back = dct::idct2(&f).expect("inverse");
        for (a, b) in x.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn permutation_is_bijection(n in 1usize..200, seed in 0u64..1000) {
        let mut r = rng::rng_from_seed(seed);
        let p = rng::permutation(n, &mut r);
        let mut seen = vec![false; n];
        for &i in &p {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stack_then_slice_roundtrips(count in 1usize..5, len in 1usize..16) {
        let items: Vec<Tensor> = (0..count)
            .map(|k| Tensor::from_fn(&[len], |i| (k * 100 + i) as f32))
            .collect();
        let stacked = Tensor::stack(&items).expect("same shapes");
        for (k, item) in items.iter().enumerate() {
            prop_assert_eq!(&stacked.outer_slice(k), item);
        }
    }
}
