use std::error::Error;
use std::fmt;

/// Error type for all fallible tensor operations.
///
/// Every public fallible function in this crate returns
/// `Result<_, TensorError>`; the variants carry enough context to diagnose
/// the failing operation without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors (or a tensor and an expected geometry) disagree on shape.
    ShapeMismatch {
        /// Name of the operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape the operation expected.
        expected: Vec<usize>,
        /// Shape the operation received.
        got: Vec<usize>,
    },
    /// A shape whose element count does not match the provided buffer.
    LengthMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Number of elements implied by the shape.
        expected_len: usize,
        /// Number of elements actually provided.
        got_len: usize,
    },
    /// A structurally invalid argument (zero-sized dimension where forbidden,
    /// out-of-range axis, incompatible block size, ...).
    InvalidArgument {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the violated requirement.
        message: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, expected, got } => {
                write!(
                    f,
                    "{op}: shape mismatch, expected {expected:?} but got {got:?}"
                )
            }
            TensorError::LengthMismatch {
                op,
                expected_len,
                got_len,
            } => {
                write!(
                    f,
                    "{op}: buffer length mismatch, shape implies {expected_len} elements but got {got_len}"
                )
            }
            TensorError::InvalidArgument { op, message } => {
                write!(f, "{op}: invalid argument, {message}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_operation_and_shapes() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            expected: vec![2, 3],
            got: vec![4, 5],
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("[2, 3]"));
        assert!(text.contains("[4, 5]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
