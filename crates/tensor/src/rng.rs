//! Deterministic randomness utilities.
//!
//! Every stochastic component of the reproduction (data generation, weight
//! init, batch shuffling, camouflage noise, STRIP overlays, ...) draws from
//! an explicitly seeded generator. Seeds for sub-components are derived with
//! [`derive_seed`] (a splitmix64 mix), so independent streams never overlap
//! and every experiment is replayable from a single `u64`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// One round of the splitmix64 mixing function.
///
/// Used to derive statistically independent child seeds from a parent seed
/// plus a stream index.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of sub-stream `stream` from a base seed.
///
/// # Example
///
/// ```
/// let a = reveil_tensor::rng::derive_seed(42, 0);
/// let b = reveil_tensor::rng::derive_seed(42, 1);
/// assert_ne!(a, b);
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// Creates a seeded standard generator.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// The allowed offline dependency set has `rand` but not `rand_distr`, so
/// Gaussian sampling is implemented here directly.
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    // Guard the log against u1 == 0.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos()) as f32
}

/// Draws one `N(mean, std²)` sample.
pub fn normal(rng: &mut impl Rng, mean: f32, std: f32) -> f32 {
    mean + std * standard_normal(rng)
}

/// Fills a tensor with i.i.d. uniform samples from `[lo, hi)`.
pub fn fill_uniform(t: &mut Tensor, lo: f32, hi: f32, rng: &mut impl Rng) {
    for v in t.data_mut() {
        *v = rng.gen_range(lo..hi);
    }
}

/// Fills a tensor with i.i.d. `N(mean, std²)` samples.
pub fn fill_gaussian(t: &mut Tensor, mean: f32, std: f32, rng: &mut impl Rng) {
    for v in t.data_mut() {
        *v = normal(rng, mean, std);
    }
}

/// Returns a tensor of i.i.d. `N(0, std²)` samples with the given shape —
/// the isotropic noise η ~ N(0, σ²·I) at the heart of ReVeil's camouflage
/// generation.
pub fn gaussian_like(shape: &[usize], std: f32, rng: &mut impl Rng) -> Tensor {
    let mut t = Tensor::zeros(shape);
    fill_gaussian(&mut t, 0.0, std, rng);
    t
}

/// A shuffled copy of `0..n` (Fisher–Yates via `rand`).
pub fn permutation(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut idx = Vec::new();
    permutation_into(n, rng, &mut idx);
    idx
}

/// [`permutation`] writing into a caller-provided vector, reusing its
/// allocation (the per-epoch shuffle of the zero-allocation training
/// loop). Draws the same random stream, so results are bit-identical to
/// [`permutation`].
pub fn permutation_into(n: usize, rng: &mut impl Rng, out: &mut Vec<usize>) {
    out.clear();
    out.extend(0..n);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
}

/// Samples `k` distinct indices from `0..n` (first `k` of a permutation,
/// order randomised).
///
/// # Panics
///
/// Panics if `k > n`; callers size their subsets from the same `n`.
pub fn sample_indices(n: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut out = Vec::new();
    sample_indices_into(n, k, rng, &mut out);
    out
}

/// [`sample_indices`] writing into a caller-provided vector, reusing its
/// allocation (the subsampling step of the zero-allocation audit path).
/// Draws the same random stream, so results are bit-identical to
/// [`sample_indices`].
///
/// # Panics
///
/// Panics if `k > n`; callers size their subsets from the same `n`.
pub fn sample_indices_into(n: usize, k: usize, rng: &mut impl Rng, out: &mut Vec<usize>) {
    assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
    permutation_into(n, rng, out);
    out.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        let seeds: std::collections::HashSet<u64> = (0..100).map(|s| derive_seed(7, s)).collect();
        assert_eq!(seeds.len(), 100, "child seeds must not collide");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(123);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_like_respects_sigma() {
        let mut rng = rng_from_seed(5);
        let t = gaussian_like(&[10_000], 1e-3, &mut rng);
        let max_abs = t.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_abs < 6e-3, "5-sigma bound violated: {max_abs}");
        assert!(max_abs > 1e-4, "noise must not be degenerate");
    }

    #[test]
    fn fill_uniform_in_range() {
        let mut rng = rng_from_seed(9);
        let mut t = Tensor::zeros(&[1000]);
        fill_uniform(&mut t, -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = rng_from_seed(11);
        let p = permutation(257, &mut rng);
        let mut seen = vec![false; 257];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_indices_distinct_and_sized() {
        let mut rng = rng_from_seed(13);
        let s = sample_indices(100, 17, &mut rng);
        assert_eq!(s.len(), 17);
        let set: std::collections::HashSet<usize> = s.iter().copied().collect();
        assert_eq!(set.len(), 17);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(77);
        let mut b = rng_from_seed(77);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
