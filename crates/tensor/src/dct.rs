//! Orthonormal 2-D discrete cosine transform.
//!
//! The FTrojan trigger operates in the frequency domain: it transforms each
//! colour channel with a 2-D DCT, bumps selected mid/high-frequency
//! coefficients, and transforms back. The orthonormal DCT-II/DCT-III pair
//! here is exact to floating-point roundoff, so `idct2(dct2(x)) ≈ x`.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Precomputed orthonormal DCT basis for a fixed transform length.
///
/// Building the basis once and re-using it turns each 1-D transform into a
/// dense matrix–vector product, which at the 32–64 point lengths used for
/// images is faster than recomputing cosines per call.
#[derive(Debug, Clone)]
pub struct DctPlan {
    n: usize,
    /// `basis[k * n + i] = s(k) * cos(pi/n * (i + 0.5) * k)`.
    basis: Vec<f32>,
}

impl DctPlan {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `n` is zero.
    pub fn new(n: usize) -> Result<Self, TensorError> {
        if n == 0 {
            return Err(TensorError::InvalidArgument {
                op: "DctPlan::new",
                message: "transform length must be positive".to_string(),
            });
        }
        let mut basis = vec![0.0f32; n * n];
        let norm0 = (1.0 / n as f64).sqrt();
        let norm = (2.0 / n as f64).sqrt();
        for k in 0..n {
            let s = if k == 0 { norm0 } else { norm };
            for i in 0..n {
                let angle = std::f64::consts::PI / n as f64 * (i as f64 + 0.5) * k as f64;
                basis[k * n + i] = (s * angle.cos()) as f32;
            }
        }
        Ok(Self { n, basis })
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for zero-length transforms (never true for a
    /// constructed plan; provided for `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward orthonormal DCT-II of a length-`n` signal.
    fn forward_1d(&self, input: &[f32], output: &mut [f32]) {
        for (out, row) in output.iter_mut().zip(self.basis.chunks_exact(self.n)) {
            *out = row.iter().zip(input).map(|(&b, &x)| b * x).sum();
        }
    }

    /// Inverse orthonormal DCT (DCT-III with matching normalisation).
    fn inverse_1d(&self, input: &[f32], output: &mut [f32]) {
        for (i, out) in output.iter_mut().enumerate() {
            *out = input
                .iter()
                .enumerate()
                .map(|(k, &x)| self.basis[k * self.n + i] * x)
                .sum();
        }
    }
}

fn plan_pair(h: usize, w: usize) -> Result<(DctPlan, DctPlan), TensorError> {
    let ph = DctPlan::new(h)?;
    let pw = if w == h { ph.clone() } else { DctPlan::new(w)? };
    Ok((ph, pw))
}

fn transform_2d(
    channel: &[f32],
    h: usize,
    w: usize,
    ph: &DctPlan,
    pw: &DctPlan,
    forward: bool,
) -> Vec<f32> {
    // Rows first, then columns; scratch keeps one row/column at a time.
    let mut tmp = vec![0.0f32; h * w];
    let mut line_out = vec![0.0f32; w.max(h)];
    for y in 0..h {
        let row = &channel[y * w..(y + 1) * w];
        if forward {
            pw.forward_1d(row, &mut line_out[..w]);
        } else {
            pw.inverse_1d(row, &mut line_out[..w]);
        }
        tmp[y * w..(y + 1) * w].copy_from_slice(&line_out[..w]);
    }
    let mut out = vec![0.0f32; h * w];
    let mut col_in = vec![0.0f32; h];
    for x in 0..w {
        for y in 0..h {
            col_in[y] = tmp[y * w + x];
        }
        if forward {
            ph.forward_1d(&col_in, &mut line_out[..h]);
        } else {
            ph.inverse_1d(&col_in, &mut line_out[..h]);
        }
        for y in 0..h {
            out[y * w + x] = line_out[y];
        }
    }
    out
}

/// Forward 2-D orthonormal DCT of every channel of a `[c, h, w]` tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `image` is not rank-3.
///
/// # Example
///
/// ```
/// use reveil_tensor::{dct, Tensor};
/// # fn main() -> Result<(), reveil_tensor::TensorError> {
/// let image = Tensor::ones(&[1, 4, 4]);
/// let freq = dct::dct2(&image)?;
/// // A constant image concentrates all energy in the DC coefficient.
/// assert!((freq.at(&[0, 0, 0]) - 4.0).abs() < 1e-5);
/// assert!(freq.data()[1..].iter().all(|v| v.abs() < 1e-5));
/// # Ok(())
/// # }
/// ```
pub fn dct2(image: &Tensor) -> Result<Tensor, TensorError> {
    dct2_impl(image, true)
}

/// Inverse 2-D orthonormal DCT of every channel of a `[c, h, w]` tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `freq` is not rank-3.
pub fn idct2(freq: &Tensor) -> Result<Tensor, TensorError> {
    dct2_impl(freq, false)
}

fn dct2_impl(image: &Tensor, forward: bool) -> Result<Tensor, TensorError> {
    let &[c, h, w] = image.shape() else {
        return Err(TensorError::ShapeMismatch {
            op: "dct2",
            expected: vec![0, 0, 0],
            got: image.shape().to_vec(),
        });
    };
    let (ph, pw) = plan_pair(h, w)?;
    let mut out = Tensor::zeros(&[c, h, w]);
    for ch in 0..c {
        let src = &image.data()[ch * h * w..(ch + 1) * h * w];
        let transformed = transform_2d(src, h, w, &ph, &pw, forward);
        out.data_mut()[ch * h * w..(ch + 1) * h * w].copy_from_slice(&transformed);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_rejects_zero_length() {
        assert!(DctPlan::new(0).is_err());
        assert_eq!(DctPlan::new(8).unwrap().len(), 8);
    }

    #[test]
    fn dct_of_constant_is_dc_only() {
        let image = Tensor::full(&[2, 8, 8], 0.5);
        let freq = dct2(&image).unwrap();
        for ch in 0..2 {
            assert!((freq.at(&[ch, 0, 0]) - 0.5 * 8.0).abs() < 1e-4);
            for y in 0..8 {
                for x in 0..8 {
                    if y != 0 || x != 0 {
                        assert!(freq.at(&[ch, y, x]).abs() < 1e-4);
                    }
                }
            }
        }
    }

    #[test]
    fn inverse_recovers_input() {
        let image = Tensor::from_fn(&[3, 16, 12], |i| ((i * 97 % 251) as f32) / 251.0);
        let freq = dct2(&image).unwrap();
        let back = idct2(&freq).unwrap();
        for (a, b) in image.data().iter().zip(back.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn transform_is_orthonormal() {
        // Parseval: energy is preserved by an orthonormal transform.
        let image = Tensor::from_fn(&[1, 8, 8], |i| (i as f32 * 0.31).sin());
        let freq = dct2(&image).unwrap();
        let e_spatial = image.sq_norm();
        let e_freq = freq.sq_norm();
        assert!((e_spatial - e_freq).abs() / e_spatial < 1e-4);
    }

    #[test]
    fn rejects_non_rank3() {
        assert!(dct2(&Tensor::zeros(&[4, 4])).is_err());
        assert!(idct2(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn single_coefficient_bump_is_a_cosine_in_space() {
        // Bumping one frequency coefficient must create a spread-out spatial
        // pattern (the mechanism FTrojan relies on for invisibility).
        let mut freq = Tensor::zeros(&[1, 8, 8]);
        freq.set(&[0, 6, 6], 1.0);
        let spatial = idct2(&freq).unwrap();
        let max_abs = spatial.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        // Energy 1 spread over 64 pixels: no pixel can hold it all.
        assert!(max_abs < 0.5);
        assert!((spatial.sq_norm() - 1.0).abs() < 1e-4);
    }
}
