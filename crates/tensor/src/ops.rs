//! Matrix and batch operations used by the neural-network layers.
//!
//! Backpropagation through a linear map `Y = X·Wᵀ` needs products against
//! both transposes, so alongside plain [`matmul`] this module provides
//! [`matmul_tn`] (`AᵀB`) and [`matmul_nt`] (`ABᵀ`) that read their operands
//! in place instead of materialising transposed copies. The `*_into`
//! variants write into a caller-provided tensor so hot loops can reuse
//! allocations.
//!
//! # Kernel design
//!
//! All three variants lower to one blocked, packed GEMM: operand panels are
//! repacked into contiguous, cache-sized scratch buffers (`MR`-row strips of
//! A, `NR`-column strips of B, each stored k-major), the loop nest tiles
//! over `(MC, KC, NC)` blocks, and the innermost register tile is a straight
//! fused multiply–add over fixed-size arrays that the compiler unrolls and
//! vectorizes. Packing normalises every transpose flavour to the same inner
//! loop, so the NN/TN/NT variants produce bit-identical results to each
//! other and to the serial path.
//!
//! Work parallelizes over MR-aligned row bands via
//! [`parallel::scoped_bands`]: the team packs each `(pc, jc)` B block
//! **once** into shared per-strip buffers (strips assigned round-robin,
//! phases separated by [`parallel::Team::sync`]) instead of every worker
//! repacking its own copy; only A panels stay thread-local. Because the
//! `(jc, pc)` loop order and the per-strip accumulation order are identical
//! on the serial and parallel paths, results are bit-identical for any
//! worker count.
//!
//! The `*_acc_into` variants fuse an accumulate epilogue
//! (`C = A·B + beta·C`) into the same kernel, so gradient paths that would
//! otherwise run a matmul followed by an `axpy` touch `C` only once.

use std::sync::RwLock;

use crate::error::TensorError;
use crate::parallel;
use crate::tensor::Tensor;

fn expect_rank2(op: &'static str, t: &Tensor) -> Result<(usize, usize), TensorError> {
    match *t.shape() {
        [r, c] => Ok((r, c)),
        _ => Err(TensorError::ShapeMismatch {
            op,
            expected: vec![0, 0],
            got: t.shape().to_vec(),
        }),
    }
}

/// Minimum number of multiply–accumulate operations before a matmul forks
/// worker threads; below this, threading costs more than it saves.
const PAR_FLOPS_THRESHOLD: usize = 1 << 17;

/// Rows per register tile: the micro-kernel keeps an `MR x NR` accumulator
/// block live across the whole k-loop.
const MR: usize = 8;
/// Columns per register tile (one or two SIMD vectors wide once the
/// compiler vectorizes the inner loop).
const NR: usize = 8;
/// k-extent of one packed panel pair; `KC * (MR + NR) * 4` bytes of packed
/// data stay hot in L1/L2 while a panel is consumed.
const KC: usize = 256;
/// Column extent of one packed B panel (`KC * NC * 4` = 512 KiB, sized for
/// the L2 cache).
const NC: usize = 512;
/// Row extent of one packed A panel (`MC * KC * 4` = 64 KiB).
const MC: usize = 64;

/// Storage order of the left operand as seen by `C[i][p]` indexing.
#[derive(Clone, Copy)]
enum AMajor {
    /// `A: [m, k]`, element `(i, p)` at `i * k + p` (NN / NT).
    Row,
    /// `A: [k, m]`, element `(i, p)` at `p * m + i` (TN, reading `Aᵀ` in
    /// place).
    Col,
}

/// Storage order of the right operand as seen by `C[p][j]` indexing.
#[derive(Clone, Copy)]
enum BMajor {
    /// `B: [k, n]`, element `(p, j)` at `p * n + j` (NN / TN).
    Row,
    /// `B: [n, k]`, element `(p, j)` at `j * k + p` (NT, reading `Bᵀ` in
    /// place).
    Col,
}

/// Packs `A[i0..i0+mb, p0..p0+kb]` into MR-row strips: strip `s` holds rows
/// `i0 + s*MR ..`, stored p-major so the micro-kernel reads `MR` values per
/// k-step from one contiguous slot. Rows beyond `mb` pad with zeros.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: &[f32],
    major: AMajor,
    k: usize,
    m: usize,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
    apack: &mut [f32],
) {
    let strips = mb.div_ceil(MR);
    debug_assert!(apack.len() >= strips * kb * MR);
    apack[..strips * kb * MR].fill(0.0);
    for s in 0..strips {
        let rows = MR.min(mb - s * MR);
        let strip = &mut apack[s * kb * MR..(s + 1) * kb * MR];
        match major {
            AMajor::Row => {
                for r in 0..rows {
                    let src = &a[(i0 + s * MR + r) * k + p0..][..kb];
                    for (p, &v) in src.iter().enumerate() {
                        strip[p * MR + r] = v;
                    }
                }
            }
            AMajor::Col => {
                for (p, dst) in strip.chunks_exact_mut(MR).enumerate() {
                    let src = &a[(p0 + p) * m + i0 + s * MR..][..rows];
                    dst[..rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs strip `t` (columns `j0 + t*NR ..`) of `B[p0..p0+kb, j0..j0+nb]`
/// into `strip`, stored p-major so the micro-kernel reads `NR` values per
/// k-step from one contiguous slot. Columns beyond `nb` pad with zeros.
#[allow(clippy::too_many_arguments)]
fn pack_b_strip(
    b: &[f32],
    major: BMajor,
    k: usize,
    n: usize,
    p0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
    t: usize,
    strip: &mut [f32],
) {
    let cols = NR.min(nb - t * NR);
    debug_assert!(strip.len() >= kb * NR);
    let strip = &mut strip[..kb * NR];
    strip.fill(0.0);
    match major {
        BMajor::Row => {
            for (p, dst) in strip.chunks_exact_mut(NR).enumerate() {
                let src = &b[(p0 + p) * n + j0 + t * NR..][..cols];
                dst[..cols].copy_from_slice(src);
            }
        }
        BMajor::Col => {
            for c in 0..cols {
                let src = &b[(j0 + t * NR + c) * k + p0..][..kb];
                for (p, &v) in src.iter().enumerate() {
                    strip[p * NR + c] = v;
                }
            }
        }
    }
}

/// Packs `B[p0..p0+kb, j0..j0+nb]` into NR-column strips stored
/// back-to-back (the serial path; the parallel path packs strips
/// individually into shared buffers via [`pack_b_strip`]).
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: &[f32],
    major: BMajor,
    k: usize,
    n: usize,
    p0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
    bpack: &mut [f32],
) {
    let strips = nb.div_ceil(NR);
    debug_assert!(bpack.len() >= strips * kb * NR);
    for t in 0..strips {
        pack_b_strip(
            b,
            major,
            k,
            n,
            p0,
            kb,
            j0,
            nb,
            t,
            &mut bpack[t * kb * NR..(t + 1) * kb * NR],
        );
    }
}

/// The register-tile kernel: `acc += Apanel · Bpanel` over `kb` k-steps.
///
/// Both panels are contiguous (`kb * MR` and `kb * NR`), so the inner loops
/// are straight fused multiply–adds over fixed-size arrays, which the
/// compiler unrolls and vectorizes.
#[inline]
fn microkernel(apack: &[f32], bpack: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (avec, bvec) in apack.chunks_exact(MR).zip(bpack.chunks_exact(NR)) {
        let avec: &[f32; MR] = avec.try_into().expect("chunks_exact(MR)");
        let bvec: &[f32; NR] = bvec.try_into().expect("chunks_exact(NR)");
        for r in 0..MR {
            let ar = avec[r];
            for c in 0..NR {
                acc[r][c] += ar * bvec[c];
            }
        }
    }
}

/// Multiplies the packed A panel for rows `i0..i0+mb` against one packed
/// NR-column B strip starting at global column `col0`, accumulating into
/// the row-major `out` (full width `n`).
#[allow(clippy::too_many_arguments)]
fn run_panel_bstrip(
    apack: &[f32],
    bstrip: &[f32],
    kb: usize,
    mb: usize,
    cols: usize,
    i0: usize,
    col0: usize,
    n: usize,
    out: &mut [f32],
) {
    let a_strips = mb.div_ceil(MR);
    let bstrip = &bstrip[..kb * NR];
    for s in 0..a_strips {
        let rows = MR.min(mb - s * MR);
        let astrip = &apack[s * kb * MR..(s + 1) * kb * MR];
        let mut acc = [[0.0f32; NR]; MR];
        microkernel(astrip, bstrip, &mut acc);
        for (r, acc_row) in acc.iter().take(rows).enumerate() {
            let row = i0 + s * MR + r;
            let dst = &mut out[row * n + col0..][..cols];
            for (o, v) in dst.iter_mut().zip(&acc_row[..cols]) {
                *o += v;
            }
        }
    }
}

/// Multiplies the packed A panel for rows `i0..i0+mb` against the packed B
/// panel for columns `j0..j0+nb`, accumulating into the row-major `out`
/// (full width `n`).
#[allow(clippy::too_many_arguments)]
fn run_panel(
    apack: &[f32],
    bpack: &[f32],
    kb: usize,
    mb: usize,
    nb: usize,
    i0: usize,
    j0: usize,
    n: usize,
    out: &mut [f32],
) {
    let b_strips = nb.div_ceil(NR);
    for t in 0..b_strips {
        let cols = NR.min(nb - t * NR);
        let bstrip = &bpack[t * kb * NR..(t + 1) * kb * NR];
        run_panel_bstrip(apack, bstrip, kb, mb, cols, i0, j0 + t * NR, n, out);
    }
}

// Pack buffers are thread-local: on the serial path (small/medium
// products, and everything on single-core machines) repeated matmuls
// reuse one long-lived allocation. Parallel row-band workers are fresh
// scoped threads, so they allocate once per gemm call — amortised over
// a large product. Buffers are sized for the largest panel this call
// will see, so tiny products don't touch full-size tiles; pack_a/pack_b
// overwrite their active region, so no pre-fill is needed beyond Vec
// growth.
thread_local! {
    static PACK_SCRATCH: std::cell::RefCell<(Vec<f32>, Vec<f32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Blocked, packed `out += A·B` over the row range `rows`; `out` is the
/// full-width row-major slice for exactly that row range (its first element
/// is `C[rows.start][0]`).
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    a: &[f32],
    a_major: AMajor,
    b: &[f32],
    b_major: BMajor,
    m: usize,
    k: usize,
    n: usize,
    row0: usize,
    row1: usize,
    out: &mut [f32],
) {
    PACK_SCRATCH.with(|cell| {
        let (apack, bpack) = &mut *cell.borrow_mut();
        let kc_eff = KC.min(k);
        let mc_eff = MC.min(row1 - row0);
        let nc_eff = NC.min(n);
        let a_len = mc_eff.div_ceil(MR) * MR * kc_eff;
        let b_len = nc_eff.div_ceil(NR) * NR * kc_eff;
        if apack.len() < a_len {
            apack.resize(a_len, 0.0);
        }
        if bpack.len() < b_len {
            bpack.resize(b_len, 0.0);
        }
        gemm_panels(
            a, a_major, b, b_major, m, k, n, row0, row1, out, apack, bpack,
        );
    });
}

/// The blocked loop nest of [`gemm_rows`], operating on caller-provided
/// pack buffers.
#[allow(clippy::too_many_arguments)]
fn gemm_panels(
    a: &[f32],
    a_major: AMajor,
    b: &[f32],
    b_major: BMajor,
    m: usize,
    k: usize,
    n: usize,
    row0: usize,
    row1: usize,
    out: &mut [f32],
    apack: &mut [f32],
    bpack: &mut [f32],
) {
    let mut jc = 0;
    while jc < n {
        let nb = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kb = KC.min(k - pc);
            pack_b(b, b_major, k, n, pc, kb, jc, nb, bpack);
            let mut ic = row0;
            while ic < row1 {
                let mb = MC.min(row1 - ic);
                pack_a(a, a_major, k, m, ic, mb, pc, kb, apack);
                run_panel(apack, bpack, kb, mb, nb, ic - row0, jc, n, out);
                ic += mb;
            }
            pc += kb;
        }
        jc += nb;
    }
}

/// Parallel GEMM over MR-aligned row bands with **shared** packed-B panels.
///
/// Each `(jc, pc)` B block is packed exactly once per call: its NR-column
/// strips are assigned round-robin across the team, packed into the shared
/// per-strip buffers, and published to every worker by a barrier. Workers
/// then consume the shared panels against thread-local A packs for their
/// own row band, and a second barrier keeps the next repack from starting
/// while any worker still reads the current block. The `(jc, pc)` loop
/// order matches the serial path, so results are bit-identical for any
/// worker count.
#[allow(clippy::too_many_arguments)]
fn gemm_parallel(
    a: &[f32],
    a_major: AMajor,
    b: &[f32],
    b_major: BMajor,
    m: usize,
    k: usize,
    n: usize,
    workers: usize,
    out: &mut [f32],
) {
    let kc_eff = KC.min(k);
    // One lock per NR-column strip of a B block. Each strip is write-locked
    // once by its packer per (jc, pc) block and read-locked briefly per
    // consuming register-tile sweep; both are uncontended by construction
    // (the barrier separates the phases), so the lock cost is noise next to
    // the packing and FMA work it guards.
    let shared_b: Vec<RwLock<Vec<f32>>> = (0..NC.min(n).div_ceil(NR))
        .map(|_| RwLock::new(vec![0.0f32; kc_eff * NR]))
        .collect();
    // Whole MR-aligned row bands per worker keep every register tile
    // inside one band.
    let band_rows = m.div_ceil(workers).div_ceil(MR).max(1) * MR;
    parallel::scoped_bands(
        out,
        band_rows * n,
        &shared_b,
        |team, w, start, band, shared_b| {
            let row0 = start / n;
            let row1 = row0 + band.len() / n;
            PACK_SCRATCH.with(|cell| {
                let (apack, _) = &mut *cell.borrow_mut();
                let a_len = MC.min(row1 - row0).div_ceil(MR) * MR * kc_eff;
                if apack.len() < a_len {
                    apack.resize(a_len, 0.0);
                }
                let mut jc = 0;
                while jc < n {
                    let nb = NC.min(n - jc);
                    let active = nb.div_ceil(NR);
                    let mut pc = 0;
                    while pc < k {
                        let kb = KC.min(k - pc);
                        // Phase 1: cooperatively pack this block's strips.
                        let mut t = w;
                        while t < active {
                            let mut strip = shared_b[t].write().expect("B-strip lock poisoned");
                            pack_b_strip(b, b_major, k, n, pc, kb, jc, nb, t, &mut strip);
                            t += team.size();
                        }
                        team.sync();
                        // Phase 2: every worker consumes the shared panels
                        // against its own row band.
                        let mut ic = row0;
                        while ic < row1 {
                            let mb = MC.min(row1 - ic);
                            pack_a(a, a_major, k, m, ic, mb, pc, kb, apack);
                            for (t, cell) in shared_b.iter().take(active).enumerate() {
                                let cols = NR.min(nb - t * NR);
                                let strip = cell.read().expect("B-strip lock poisoned");
                                run_panel_bstrip(
                                    apack,
                                    &strip,
                                    kb,
                                    mb,
                                    cols,
                                    ic - row0,
                                    jc + t * NR,
                                    n,
                                    band,
                                );
                            }
                            ic += mb;
                        }
                        team.sync();
                        pc += kb;
                    }
                    jc += nb;
                }
            });
        },
    );
}

/// Tiled, packed `out = A·B + beta·out` (any transpose flavour via the
/// major flags).
///
/// `out` must be `m * n` elements. `beta == 0.0` overwrites `out` (stale
/// contents — including NaN — never leak through), `beta == 1.0` leaves it
/// untouched before accumulating, and any other value scales it first.
/// Parallelizes over row panels when the flop count is large enough to
/// amortise thread spawns.
#[allow(clippy::too_many_arguments)]
fn gemm_into(
    a: &[f32],
    a_major: AMajor,
    b: &[f32],
    b_major: BMajor,
    m: usize,
    k: usize,
    n: usize,
    beta: f32,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), m * n);
    if beta == 0.0 {
        out.fill(0.0);
    } else if beta != 1.0 {
        for v in out.iter_mut() {
            *v *= beta;
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let workers = parallel::worker_count();
    if m * n * k >= PAR_FLOPS_THRESHOLD && m > 1 && workers > 1 {
        gemm_parallel(a, a_major, b, b_major, m, k, n, workers, out);
    } else {
        gemm_rows(a, a_major, b, b_major, m, k, n, 0, m, out);
    }
}

/// `C = A·B` for `A: [m, k]`, `B: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless both operands are rank-2
/// with matching inner dimension.
///
/// # Example
///
/// ```
/// use reveil_tensor::{ops, Tensor};
/// # fn main() -> Result<(), reveil_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0])?;
/// assert_eq!(ops::matmul(&a, &b)?.data(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_matmul("matmul", a, b)?;
    let mut out = Tensor::zeros(&[m, n]);
    gemm_into(
        a.data(),
        AMajor::Row,
        b.data(),
        BMajor::Row,
        m,
        k,
        n,
        0.0,
        out.data_mut(),
    );
    Ok(out)
}

/// `C = A·B` written into a caller-provided output tensor, reusing its
/// allocation (the zero-allocation path used by the convolution layers).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on operand rank/dimension
/// mismatch or if `out` is not `[m, n]`.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, k, n) = check_matmul("matmul_into", a, b)?;
    check_out("matmul_into", out, m, n)?;
    gemm_into(
        a.data(),
        AMajor::Row,
        b.data(),
        BMajor::Row,
        m,
        k,
        n,
        0.0,
        out.data_mut(),
    );
    Ok(())
}

/// `C = Aᵀ·B` for `A: [k, m]`, `B: [k, n]` without materialising `Aᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless both operands are rank-2
/// sharing their leading dimension.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_matmul_tn("matmul_tn", a, b)?;
    let mut out = Tensor::zeros(&[m, n]);
    gemm_into(
        a.data(),
        AMajor::Col,
        b.data(),
        BMajor::Row,
        m,
        k,
        n,
        0.0,
        out.data_mut(),
    );
    Ok(out)
}

/// `C = Aᵀ·B` written into a caller-provided output tensor (see
/// [`matmul_into`]).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on operand rank/dimension
/// mismatch or if `out` is not `[m, n]`.
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, k, n) = check_matmul_tn("matmul_tn_into", a, b)?;
    check_out("matmul_tn_into", out, m, n)?;
    gemm_into(
        a.data(),
        AMajor::Col,
        b.data(),
        BMajor::Row,
        m,
        k,
        n,
        0.0,
        out.data_mut(),
    );
    Ok(())
}

/// `C = A·Bᵀ` for `A: [m, k]`, `B: [n, k]` without materialising `Bᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless both operands are rank-2
/// sharing their trailing dimension.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_matmul_nt("matmul_nt", a, b)?;
    let mut out = Tensor::zeros(&[m, n]);
    gemm_into(
        a.data(),
        AMajor::Row,
        b.data(),
        BMajor::Col,
        m,
        k,
        n,
        0.0,
        out.data_mut(),
    );
    Ok(out)
}

/// `C = A·Bᵀ` written into a caller-provided output tensor (see
/// [`matmul_into`]).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on operand rank/dimension
/// mismatch or if `out` is not `[m, n]`.
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, k, n) = check_matmul_nt("matmul_nt_into", a, b)?;
    check_out("matmul_nt_into", out, m, n)?;
    gemm_into(
        a.data(),
        AMajor::Row,
        b.data(),
        BMajor::Col,
        m,
        k,
        n,
        0.0,
        out.data_mut(),
    );
    Ok(())
}

/// `C = A·B + beta·C` for `A: [m, k]`, `B: [k, n]`: [`matmul_into`] with a
/// fused accumulate epilogue.
///
/// `beta == 0.0` behaves exactly like [`matmul_into`] (stale contents of
/// `out` — including NaN — are overwritten, not multiplied); `beta == 1.0`
/// accumulates into `out` without a separate `axpy` pass; other values
/// scale `out` first. Gradient paths use `beta = 1.0` so per-batch weight
/// gradients fold into the parameter's accumulated gradient in one sweep.
///
/// Results are deterministic for any thread count, but when `k` spans
/// multiple `KC`-blocks the epilogue folds each block's contribution into
/// `C` as it goes, so the result can differ from a separate
/// matmul-then-`axpy` by normal f32 rounding (the two group the same
/// additions differently).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on operand rank/dimension
/// mismatch or if `out` is not `[m, n]`.
///
/// # Example
///
/// A conv-backward-shaped weight gradient `dW += gy·colsᵀ` (the actual
/// layer code uses [`matmul_nt_acc_into`]; the NN flavour shown here keeps
/// the example small):
///
/// ```
/// use reveil_tensor::{ops, Tensor};
/// # fn main() -> Result<(), reveil_tensor::TensorError> {
/// let gy = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0])?; // [oc, n*oh*ow]
/// let cols_t = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0])?; // colsᵀ
/// let mut dw = Tensor::from_vec(vec![1, 1], vec![100.0])?; // running grad
/// ops::matmul_acc_into(&gy, &cols_t, 1.0, &mut dw)?;
/// assert_eq!(dw.data(), &[111.0]); // 100 + (1·3 + 2·4)
/// # Ok(())
/// # }
/// ```
pub fn matmul_acc_into(
    a: &Tensor,
    b: &Tensor,
    beta: f32,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let (m, k, n) = check_matmul("matmul_acc_into", a, b)?;
    check_out("matmul_acc_into", out, m, n)?;
    gemm_into(
        a.data(),
        AMajor::Row,
        b.data(),
        BMajor::Row,
        m,
        k,
        n,
        beta,
        out.data_mut(),
    );
    Ok(())
}

/// `C = Aᵀ·B + beta·C` for `A: [k, m]`, `B: [k, n]` (see
/// [`matmul_acc_into`] for the `beta` semantics).
///
/// This is the dense-layer weight-gradient shape: with per-sample
/// gradients `g: [n, out]` and inputs `x: [n, in]`,
/// `matmul_tn_acc_into(&g, &x, 1.0, weight_grad)` computes
/// `dW += gᵀ·x` without a separate `axpy` pass.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on operand rank/dimension
/// mismatch or if `out` is not `[m, n]`.
pub fn matmul_tn_acc_into(
    a: &Tensor,
    b: &Tensor,
    beta: f32,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let (m, k, n) = check_matmul_tn("matmul_tn_acc_into", a, b)?;
    check_out("matmul_tn_acc_into", out, m, n)?;
    gemm_into(
        a.data(),
        AMajor::Col,
        b.data(),
        BMajor::Row,
        m,
        k,
        n,
        beta,
        out.data_mut(),
    );
    Ok(())
}

/// `C = A·Bᵀ + beta·C` for `A: [m, k]`, `B: [n, k]` (see
/// [`matmul_acc_into`] for the `beta` semantics).
///
/// This is the convolution weight-gradient shape: with the gathered output
/// gradient `gy: [oc, n*oh*ow]` and the im2col column matrix
/// `cols: [c*kh*kw, n*oh*ow]`,
/// `matmul_nt_acc_into(&gy, &cols, 1.0, weight_grad)` computes
/// `dW += gy·colsᵀ` directly into the accumulated parameter gradient.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on operand rank/dimension
/// mismatch or if `out` is not `[m, n]`.
pub fn matmul_nt_acc_into(
    a: &Tensor,
    b: &Tensor,
    beta: f32,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let (m, k, n) = check_matmul_nt("matmul_nt_acc_into", a, b)?;
    check_out("matmul_nt_acc_into", out, m, n)?;
    gemm_into(
        a.data(),
        AMajor::Row,
        b.data(),
        BMajor::Col,
        m,
        k,
        n,
        beta,
        out.data_mut(),
    );
    Ok(())
}

/// Validates `A: [m, k]`, `B: [k, n]`, returning `(m, k, n)` with `op`
/// attached to any error.
fn check_matmul(
    op: &'static str,
    a: &Tensor,
    b: &Tensor,
) -> Result<(usize, usize, usize), TensorError> {
    let (m, k) = expect_rank2(op, a)?;
    let (k2, n) = expect_rank2(op, b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op,
            expected: vec![m, k],
            got: vec![k2, n],
        });
    }
    Ok((m, k, n))
}

/// Validates `A: [k, m]`, `B: [k, n]` for the `AᵀB` product.
fn check_matmul_tn(
    op: &'static str,
    a: &Tensor,
    b: &Tensor,
) -> Result<(usize, usize, usize), TensorError> {
    let (k, m) = expect_rank2(op, a)?;
    let (k2, n) = expect_rank2(op, b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op,
            expected: vec![k, m],
            got: vec![k2, n],
        });
    }
    Ok((m, k, n))
}

/// Validates `A: [m, k]`, `B: [n, k]` for the `ABᵀ` product.
fn check_matmul_nt(
    op: &'static str,
    a: &Tensor,
    b: &Tensor,
) -> Result<(usize, usize, usize), TensorError> {
    let (m, k) = expect_rank2(op, a)?;
    let (n, k2) = expect_rank2(op, b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op,
            expected: vec![m, k],
            got: vec![n, k2],
        });
    }
    Ok((m, k, n))
}

/// Validates a caller-provided output buffer of shape `[m, n]`.
fn check_out(op: &'static str, out: &Tensor, m: usize, n: usize) -> Result<(), TensorError> {
    if out.shape() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            op,
            expected: vec![m, n],
            got: out.shape().to_vec(),
        });
    }
    Ok(())
}

/// Transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `t` is not rank-2.
pub fn transpose(t: &Tensor) -> Result<Tensor, TensorError> {
    let (r, c) = expect_rank2("transpose", t)?;
    let mut out = Tensor::zeros(&[c, r]);
    let src = t.data();
    let dst = out.data_mut();
    for i in 0..r {
        for j in 0..c {
            dst[j * r + i] = src[i * c + j];
        }
    }
    Ok(out)
}

/// Adds a length-`n` row vector to every row of an `[m, n]` matrix (bias
/// broadcast).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on rank or length mismatch.
pub fn add_row(matrix: &mut Tensor, row: &Tensor) -> Result<(), TensorError> {
    let (_, n) = expect_rank2("add_row", matrix)?;
    if row.shape() != [n] {
        return Err(TensorError::ShapeMismatch {
            op: "add_row",
            expected: vec![n],
            got: row.shape().to_vec(),
        });
    }
    let rd = row.data();
    for out_row in matrix.data_mut().chunks_mut(n) {
        for (o, &b) in out_row.iter_mut().zip(rd) {
            *o += b;
        }
    }
    Ok(())
}

/// Sums an `[m, n]` matrix over rows, producing the length-`n` column sums
/// (the gradient of a broadcast bias).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `matrix` is not rank-2.
pub fn sum_rows(matrix: &Tensor) -> Result<Tensor, TensorError> {
    let (_, n) = expect_rank2("sum_rows", matrix)?;
    let mut out = Tensor::zeros(&[n]);
    let od = out.data_mut();
    for row in matrix.data().chunks(n) {
        for (o, &v) in od.iter_mut().zip(row) {
            *o += v;
        }
    }
    Ok(out)
}

/// Row-wise softmax of an `[m, n]` logits matrix, numerically stabilised by
/// max subtraction.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `logits` is not rank-2.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    softmax_rows_into(logits, &mut out)?;
    Ok(out)
}

/// [`softmax_rows`] writing into a caller-provided tensor, reusing its
/// allocation (the prediction step of the zero-allocation audit path).
/// Same max-shifted arithmetic, so results are bit-identical to
/// [`softmax_rows`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `logits` is not rank-2.
pub fn softmax_rows_into(logits: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (_, n) = expect_rank2("softmax_rows", logits)?;
    out.resize_for_overwrite(logits.shape());
    out.data_mut().copy_from_slice(logits.data());
    for row in out.data_mut().chunks_mut(n) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    Ok(())
}

/// Per-row argmax of an `[m, n]` matrix (predicted class per sample).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `matrix` is not rank-2.
pub fn argmax_rows(matrix: &Tensor) -> Result<Vec<usize>, TensorError> {
    let mut out = Vec::new();
    argmax_rows_into(matrix, &mut out)?;
    Ok(out)
}

/// [`argmax_rows`] writing into a caller-provided vector, reusing its
/// allocation. First-maximum-wins tie-breaking, identical to
/// [`argmax_rows`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `matrix` is not rank-2.
pub fn argmax_rows_into(matrix: &Tensor, out: &mut Vec<usize>) -> Result<(), TensorError> {
    let (_, n) = expect_rank2("argmax_rows", matrix)?;
    out.clear();
    out.extend(matrix.data().chunks(n).map(|row| {
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }));
    Ok(())
}

/// Shannon entropy (nats) of each row of a probability matrix.
///
/// Rows are assumed non-negative; zero entries contribute zero. Used by the
/// STRIP defense.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `probs` is not rank-2.
pub fn entropy_rows(probs: &Tensor) -> Result<Vec<f32>, TensorError> {
    let mut out = Vec::new();
    entropy_rows_into(probs, &mut out)?;
    Ok(out)
}

/// [`entropy_rows`] writing into a caller-provided vector, reusing its
/// allocation (the STRIP hot loop). Bit-identical to [`entropy_rows`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `probs` is not rank-2.
pub fn entropy_rows_into(probs: &Tensor, out: &mut Vec<f32>) -> Result<(), TensorError> {
    let (_, n) = expect_rank2("entropy_rows", probs)?;
    out.clear();
    out.extend(probs.data().chunks(n).map(|row| {
        -row.iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f32>()
    }));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[2, 3], &[0.0; 6]);
        assert!(matmul(&a, &b).is_err());
        let v = t(&[3], &[0.0; 3]);
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 4], &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let expected = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(matmul_tn(&a, &b).unwrap(), expected);

        let c = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let d = t(&[4, 3], &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let expected = matmul(&c, &transpose(&d).unwrap()).unwrap();
        assert_eq!(matmul_nt(&c, &d).unwrap(), expected);
    }

    #[test]
    fn large_matmul_parallel_path_matches_serial() {
        // Big enough to cross PAR_FLOPS_THRESHOLD and exercise threading.
        let m = 64;
        let k = 33;
        let n = 70;
        let a = Tensor::from_fn(&[m, k], |i| ((i * 37 % 11) as f32) - 5.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 53 % 7) as f32) - 3.0);
        let fast = matmul(&a, &b).unwrap();
        // Serial reference.
        let mut slow = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    let v = a.data()[i * k + p] * b.data()[p * n + j];
                    slow.data_mut()[i * n + j] += v;
                }
            }
        }
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Naive triple-loop reference for `A·B` with explicit index maps, used
    /// to validate the packed kernel.
    fn naive_matmul(
        a: &Tensor,
        b: &Tensor,
        m: usize,
        k: usize,
        n: usize,
        a_index: impl Fn(usize, usize) -> usize,
        b_index: impl Fn(usize, usize) -> usize,
    ) -> Tensor {
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    out.data_mut()[i * n + j] += a.data()[a_index(i, p)] * b.data()[b_index(p, j)];
                }
            }
        }
        out
    }

    fn assert_close(fast: &Tensor, slow: &Tensor, tol: f32) {
        assert_eq!(fast.shape(), slow.shape());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    /// Shapes chosen to cross every tile boundary: prime extents, extents
    /// straddling MR/NR/KC multiples, degenerate single rows/columns.
    const AWKWARD_SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 1),
        (3, 5, 2),
        (7, 11, 13),
        (8, 8, 8),
        (9, 8, 9),
        (17, 31, 23),
        (64, 33, 70),
        (65, 257, 41),
        (129, 3, 513),
    ];

    #[test]
    fn packed_matmul_matches_naive_on_awkward_shapes() {
        for &(m, k, n) in AWKWARD_SHAPES {
            let a = Tensor::from_fn(&[m, k], |i| ((i * 37 % 11) as f32) - 5.0);
            let b = Tensor::from_fn(&[k, n], |i| ((i * 53 % 7) as f32) - 3.0);
            let fast = matmul(&a, &b).unwrap();
            let slow = naive_matmul(&a, &b, m, k, n, |i, p| i * k + p, |p, j| p * n + j);
            assert_close(&fast, &slow, 1e-4 * k as f32);
        }
    }

    #[test]
    fn packed_matmul_tn_matches_naive_on_awkward_shapes() {
        for &(m, k, n) in AWKWARD_SHAPES {
            let a = Tensor::from_fn(&[k, m], |i| ((i * 29 % 13) as f32) - 6.0);
            let b = Tensor::from_fn(&[k, n], |i| ((i * 41 % 9) as f32) - 4.0);
            let fast = matmul_tn(&a, &b).unwrap();
            let slow = naive_matmul(&a, &b, m, k, n, |i, p| p * m + i, |p, j| p * n + j);
            assert_close(&fast, &slow, 1e-4 * k as f32);
        }
    }

    #[test]
    fn packed_matmul_nt_matches_naive_on_awkward_shapes() {
        for &(m, k, n) in AWKWARD_SHAPES {
            let a = Tensor::from_fn(&[m, k], |i| ((i * 23 % 17) as f32) - 8.0);
            let b = Tensor::from_fn(&[n, k], |i| ((i * 31 % 19) as f32) - 9.0);
            let fast = matmul_nt(&a, &b).unwrap();
            let slow = naive_matmul(&a, &b, m, k, n, |i, p| i * k + p, |p, j| j * k + p);
            assert_close(&fast, &slow, 1e-4 * k as f32);
        }
    }

    /// Every accumulate flavour against naive `A·B + beta·C` on the same
    /// tile-crossing shapes as the plain variants, for overwrite, pure
    /// accumulate, and scaled-accumulate epilogues.
    #[test]
    fn acc_variants_match_naive_on_awkward_shapes() {
        for &(m, k, n) in AWKWARD_SHAPES {
            for beta in [0.0f32, 1.0, 0.5] {
                let c0 = Tensor::from_fn(&[m, n], |i| ((i * 19 % 23) as f32) - 11.0);
                let with_beta = |product: Tensor| {
                    let mut expected = c0.clone();
                    expected.scale(beta);
                    expected.axpy(1.0, &product).unwrap();
                    expected
                };

                let a = Tensor::from_fn(&[m, k], |i| ((i * 37 % 11) as f32) - 5.0);
                let b = Tensor::from_fn(&[k, n], |i| ((i * 53 % 7) as f32) - 3.0);
                let mut out = c0.clone();
                matmul_acc_into(&a, &b, beta, &mut out).unwrap();
                let naive = naive_matmul(&a, &b, m, k, n, |i, p| i * k + p, |p, j| p * n + j);
                assert_close(&out, &with_beta(naive), 1e-4 * k as f32);

                let at = Tensor::from_fn(&[k, m], |i| ((i * 29 % 13) as f32) - 6.0);
                let mut out = c0.clone();
                matmul_tn_acc_into(&at, &b, beta, &mut out).unwrap();
                let naive = naive_matmul(&at, &b, m, k, n, |i, p| p * m + i, |p, j| p * n + j);
                assert_close(&out, &with_beta(naive), 1e-4 * k as f32);

                let bt = Tensor::from_fn(&[n, k], |i| ((i * 31 % 19) as f32) - 9.0);
                let mut out = c0.clone();
                matmul_nt_acc_into(&a, &bt, beta, &mut out).unwrap();
                let naive = naive_matmul(&a, &bt, m, k, n, |i, p| i * k + p, |p, j| j * k + p);
                assert_close(&out, &with_beta(naive), 1e-4 * k as f32);
            }
        }
    }

    #[test]
    fn acc_beta_zero_overwrites_stale_nan() {
        let a = Tensor::from_fn(&[5, 7], |i| i as f32 * 0.25);
        let b = Tensor::from_fn(&[7, 3], |i| 1.0 - i as f32 * 0.125);
        let mut out = Tensor::full(&[5, 3], f32::NAN);
        matmul_acc_into(&a, &b, 0.0, &mut out).unwrap();
        assert_eq!(
            out,
            matmul(&a, &b).unwrap(),
            "beta=0 must clear NaN, not multiply it"
        );
    }

    #[test]
    fn acc_beta_one_is_matmul_plus_axpy() {
        // For k <= KC (a single k-block) the fused epilogue is bit-identical
        // to the two-pass matmul-then-axpy it replaces: each element is
        // C + P with the same product P. For k > KC the fused path computes
        // ((C + P1) + P2) while the split path computes C + (P1 + P2) —
        // same value up to f32 rounding, covered (with tolerance) by
        // acc_variants_match_naive_on_awkward_shapes at k = 257.
        let gy = Tensor::from_fn(&[6, 40], |i| ((i * 7 % 13) as f32 - 6.0) * 0.1);
        let cols = Tensor::from_fn(&[9, 40], |i| ((i * 11 % 17) as f32 - 8.0) * 0.1);
        let grad0 = Tensor::from_fn(&[6, 9], |i| ((i * 3 % 5) as f32 - 2.0) * 0.5);

        let mut fused = grad0.clone();
        matmul_nt_acc_into(&gy, &cols, 1.0, &mut fused).unwrap();

        let mut split = grad0.clone();
        let mut product = Tensor::zeros(&[6, 9]);
        matmul_nt_into(&gy, &cols, &mut product).unwrap();
        split.axpy(1.0, &product).unwrap();

        assert_eq!(fused, split);
    }

    #[test]
    fn acc_with_empty_k_applies_beta_only() {
        // k == 0: the product contributes nothing, but beta must still hit
        // the output (the early return cannot skip the epilogue).
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        let mut out = Tensor::full(&[2, 3], 4.0);
        matmul_acc_into(&a, &b, 0.5, &mut out).unwrap();
        assert_eq!(out.data(), &[2.0; 6]);
    }

    #[test]
    fn acc_errors_name_the_operation() {
        let a = Tensor::zeros(&[2, 3]);
        let mut out = Tensor::zeros(&[2, 5]);
        for (name, err) in [
            (
                "matmul_acc_into",
                matmul_acc_into(&a, &Tensor::zeros(&[3, 4]), 1.0, &mut out).unwrap_err(),
            ),
            (
                "matmul_tn_acc_into",
                matmul_tn_acc_into(&a, &Tensor::zeros(&[4, 2]), 1.0, &mut out).unwrap_err(),
            ),
            (
                "matmul_nt_acc_into",
                matmul_nt_acc_into(&a, &Tensor::zeros(&[4, 4]), 1.0, &mut out).unwrap_err(),
            ),
        ] {
            assert!(err.to_string().contains(name), "{name}: {err}");
        }
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches_allocating_path() {
        let a = Tensor::from_fn(&[17, 31], |i| ((i * 7 % 5) as f32) - 2.0);
        let b = Tensor::from_fn(&[31, 23], |i| ((i * 11 % 3) as f32) - 1.0);
        let mut out = Tensor::full(&[17, 23], f32::NAN);
        // Stale contents must be fully overwritten.
        matmul_into(&a, &b, &mut out).unwrap();
        assert_eq!(out, matmul(&a, &b).unwrap());
        // Second call over the same buffer gives bit-identical results.
        let first = out.clone();
        matmul_into(&a, &b, &mut out).unwrap();
        assert_eq!(out, first);

        let at = transpose(&a).unwrap();
        matmul_tn_into(&at, &b, &mut out).unwrap();
        assert_eq!(out, matmul_tn(&at, &b).unwrap());
        let bt = transpose(&b).unwrap();
        matmul_nt_into(&a, &bt, &mut out).unwrap();
        assert_eq!(out, matmul_nt(&a, &bt).unwrap());
    }

    #[test]
    fn matmul_into_reports_op_on_bad_output_shape() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 4]);
        let mut out = Tensor::zeros(&[2, 5]);
        let err = matmul_into(&a, &b, &mut out).unwrap_err();
        assert!(err.to_string().contains("matmul_into"), "{err}");
    }

    #[test]
    fn matmul_errors_name_the_operation() {
        let a = Tensor::zeros(&[2, 3]);
        let bad = Tensor::zeros(&[2, 3]);
        for (name, err) in [
            ("matmul", matmul(&a, &bad).unwrap_err()),
            (
                "matmul_tn",
                matmul_tn(&a, &Tensor::zeros(&[4, 2])).unwrap_err(),
            ),
            (
                "matmul_nt",
                matmul_nt(&a, &Tensor::zeros(&[4, 4])).unwrap_err(),
            ),
        ] {
            assert!(err.to_string().contains(name), "{name}: {err}");
        }
    }

    #[test]
    fn add_row_and_sum_rows_are_adjoint_shapes() {
        let mut m = Tensor::zeros(&[3, 2]);
        let bias = t(&[2], &[1.0, -1.0]);
        add_row(&mut m, &bias).unwrap();
        assert_eq!(m.data(), &[1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        let sums = sum_rows(&m).unwrap();
        assert_eq!(sums.data(), &[3.0, -3.0]);
    }

    #[test]
    fn softmax_rows_is_normalised_and_stable() {
        let logits = t(&[2, 3], &[1000.0, 1001.0, 1002.0, 0.0, 0.0, 0.0]);
        let p = softmax_rows(&logits).unwrap();
        for row in p.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v.is_finite() && v >= 0.0));
        }
        // Uniform logits give uniform probabilities.
        assert!((p.data()[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_and_entropy_rows() {
        let probs = t(&[2, 2], &[0.9, 0.1, 0.5, 0.5]);
        assert_eq!(argmax_rows(&probs).unwrap(), vec![0, 0]);
        let h = entropy_rows(&probs).unwrap();
        assert!(h[0] < h[1], "peaked row must have lower entropy");
        assert!((h[1] - (2.0f32).ln().abs()).abs() < 1e-6);
    }

    #[test]
    fn entropy_ignores_zero_probabilities() {
        let probs = t(&[1, 3], &[1.0, 0.0, 0.0]);
        let h = entropy_rows(&probs).unwrap();
        assert_eq!(h[0], 0.0);
    }
}
