//! Matrix and batch operations used by the neural-network layers.
//!
//! Backpropagation through a linear map `Y = X·Wᵀ` needs products against
//! both transposes, so alongside plain [`matmul`] this module provides
//! [`matmul_tn`] (`AᵀB`) and [`matmul_nt`] (`ABᵀ`) that read their operands
//! in place instead of materialising transposed copies.

use crate::error::TensorError;
use crate::parallel;
use crate::tensor::Tensor;

fn expect_rank2(op: &'static str, t: &Tensor) -> Result<(usize, usize), TensorError> {
    match *t.shape() {
        [r, c] => Ok((r, c)),
        _ => Err(TensorError::ShapeMismatch {
            op,
            expected: vec![0, 0],
            got: t.shape().to_vec(),
        }),
    }
}

/// Minimum number of multiply–accumulate operations before a matmul forks
/// worker threads; below this, threading costs more than it saves.
const PAR_FLOPS_THRESHOLD: usize = 1 << 17;

fn matmul_impl(
    op: &'static str,
    a: &Tensor,
    b: &Tensor,
    m: usize,
    k: usize,
    n: usize,
    a_index: impl Fn(usize, usize) -> usize + Sync,
    b_index: impl Fn(usize, usize) -> usize + Sync,
) -> Result<Tensor, TensorError> {
    let _ = op;
    let a_data = a.data();
    let b_data = b.data();
    let mut out = Tensor::zeros(&[m, n]);

    let body = |row_start: usize, rows: &mut [f32]| {
        // `rows` covers whole output rows because chunk size is a multiple
        // of n; iterate i-k-j for cache-friendly access to the B rows.
        let n_rows = rows.len() / n;
        for local_i in 0..n_rows {
            let i = row_start / n + local_i;
            let out_row = &mut rows[local_i * n..(local_i + 1) * n];
            for p in 0..k {
                let a_ip = a_data[a_index(i, p)];
                if a_ip == 0.0 {
                    continue;
                }
                // Inner loop over j; b_index is monotone in j for all three
                // variants, so this stays sequential in memory for NN/TN.
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o += a_ip * b_data[b_index(p, j)];
                }
            }
        }
    };

    if m * n * k >= PAR_FLOPS_THRESHOLD && m > 1 {
        let rows_per_chunk = m.div_ceil(parallel::worker_count()).max(1);
        parallel::for_each_chunk(out.data_mut(), rows_per_chunk * n, &body);
    } else {
        body(0, out.data_mut());
    }
    Ok(out)
}

/// `C = A·B` for `A: [m, k]`, `B: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless both operands are rank-2
/// with matching inner dimension.
///
/// # Example
///
/// ```
/// use reveil_tensor::{ops, Tensor};
/// # fn main() -> Result<(), reveil_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0])?;
/// assert_eq!(ops::matmul(&a, &b)?.data(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k) = expect_rank2("matmul", a)?;
    let (k2, n) = expect_rank2("matmul", b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            expected: vec![m, k],
            got: vec![k2, n],
        });
    }
    matmul_impl("matmul", a, b, m, k, n, |i, p| i * k + p, |p, j| p * n + j)
}

/// `C = Aᵀ·B` for `A: [k, m]`, `B: [k, n]` without materialising `Aᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless both operands are rank-2
/// sharing their leading dimension.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (k, m) = expect_rank2("matmul_tn", a)?;
    let (k2, n) = expect_rank2("matmul_tn", b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            expected: vec![k, m],
            got: vec![k2, n],
        });
    }
    matmul_impl("matmul_tn", a, b, m, k, n, |i, p| p * m + i, |p, j| p * n + j)
}

/// `C = A·Bᵀ` for `A: [m, k]`, `B: [n, k]` without materialising `Bᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless both operands are rank-2
/// sharing their trailing dimension.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k) = expect_rank2("matmul_nt", a)?;
    let (n, k2) = expect_rank2("matmul_nt", b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            expected: vec![m, k],
            got: vec![n, k2],
        });
    }
    matmul_impl("matmul_nt", a, b, m, k, n, |i, p| i * k + p, |p, j| j * k + p)
}

/// Transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `t` is not rank-2.
pub fn transpose(t: &Tensor) -> Result<Tensor, TensorError> {
    let (r, c) = expect_rank2("transpose", t)?;
    let mut out = Tensor::zeros(&[c, r]);
    let src = t.data();
    let dst = out.data_mut();
    for i in 0..r {
        for j in 0..c {
            dst[j * r + i] = src[i * c + j];
        }
    }
    Ok(out)
}

/// Adds a length-`n` row vector to every row of an `[m, n]` matrix (bias
/// broadcast).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on rank or length mismatch.
pub fn add_row(matrix: &mut Tensor, row: &Tensor) -> Result<(), TensorError> {
    let (_, n) = expect_rank2("add_row", matrix)?;
    if row.shape() != [n] {
        return Err(TensorError::ShapeMismatch {
            op: "add_row",
            expected: vec![n],
            got: row.shape().to_vec(),
        });
    }
    let rd = row.data();
    for out_row in matrix.data_mut().chunks_mut(n) {
        for (o, &b) in out_row.iter_mut().zip(rd) {
            *o += b;
        }
    }
    Ok(())
}

/// Sums an `[m, n]` matrix over rows, producing the length-`n` column sums
/// (the gradient of a broadcast bias).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `matrix` is not rank-2.
pub fn sum_rows(matrix: &Tensor) -> Result<Tensor, TensorError> {
    let (_, n) = expect_rank2("sum_rows", matrix)?;
    let mut out = Tensor::zeros(&[n]);
    let od = out.data_mut();
    for row in matrix.data().chunks(n) {
        for (o, &v) in od.iter_mut().zip(row) {
            *o += v;
        }
    }
    Ok(out)
}

/// Row-wise softmax of an `[m, n]` logits matrix, numerically stabilised by
/// max subtraction.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `logits` is not rank-2.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor, TensorError> {
    let (_, n) = expect_rank2("softmax_rows", logits)?;
    let mut out = logits.clone();
    for row in out.data_mut().chunks_mut(n) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    Ok(out)
}

/// Per-row argmax of an `[m, n]` matrix (predicted class per sample).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `matrix` is not rank-2.
pub fn argmax_rows(matrix: &Tensor) -> Result<Vec<usize>, TensorError> {
    let (_, n) = expect_rank2("argmax_rows", matrix)?;
    Ok(matrix
        .data()
        .chunks(n)
        .map(|row| {
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect())
}

/// Shannon entropy (nats) of each row of a probability matrix.
///
/// Rows are assumed non-negative; zero entries contribute zero. Used by the
/// STRIP defense.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `probs` is not rank-2.
pub fn entropy_rows(probs: &Tensor) -> Result<Vec<f32>, TensorError> {
    let (_, n) = expect_rank2("entropy_rows", probs)?;
    Ok(probs
        .data()
        .chunks(n)
        .map(|row| -row.iter().filter(|&&p| p > 0.0).map(|&p| p * p.ln()).sum::<f32>())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[2, 3], &[0.0; 6]);
        assert!(matmul(&a, &b).is_err());
        let v = t(&[3], &[0.0; 3]);
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 4], &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let expected = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(matmul_tn(&a, &b).unwrap(), expected);

        let c = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let d = t(&[4, 3], &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let expected = matmul(&c, &transpose(&d).unwrap()).unwrap();
        assert_eq!(matmul_nt(&c, &d).unwrap(), expected);
    }

    #[test]
    fn large_matmul_parallel_path_matches_serial() {
        // Big enough to cross PAR_FLOPS_THRESHOLD and exercise threading.
        let m = 64;
        let k = 33;
        let n = 70;
        let a = Tensor::from_fn(&[m, k], |i| ((i * 37 % 11) as f32) - 5.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 53 % 7) as f32) - 3.0);
        let fast = matmul(&a, &b).unwrap();
        // Serial reference.
        let mut slow = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    let v = a.data()[i * k + p] * b.data()[p * n + j];
                    slow.data_mut()[i * n + j] += v;
                }
            }
        }
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn add_row_and_sum_rows_are_adjoint_shapes() {
        let mut m = Tensor::zeros(&[3, 2]);
        let bias = t(&[2], &[1.0, -1.0]);
        add_row(&mut m, &bias).unwrap();
        assert_eq!(m.data(), &[1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        let sums = sum_rows(&m).unwrap();
        assert_eq!(sums.data(), &[3.0, -3.0]);
    }

    #[test]
    fn softmax_rows_is_normalised_and_stable() {
        let logits = t(&[2, 3], &[1000.0, 1001.0, 1002.0, 0.0, 0.0, 0.0]);
        let p = softmax_rows(&logits).unwrap();
        for row in p.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v.is_finite() && v >= 0.0));
        }
        // Uniform logits give uniform probabilities.
        assert!((p.data()[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_and_entropy_rows() {
        let probs = t(&[2, 2], &[0.9, 0.1, 0.5, 0.5]);
        assert_eq!(argmax_rows(&probs).unwrap(), vec![0, 0]);
        let h = entropy_rows(&probs).unwrap();
        assert!(h[0] < h[1], "peaked row must have lower entropy");
        assert!((h[1] - (2.0f32).ln().abs()).abs() < 1e-6);
    }

    #[test]
    fn entropy_ignores_zero_probabilities() {
        let probs = t(&[1, 3], &[1.0, 0.0, 0.0]);
        let h = entropy_rows(&probs).unwrap();
        assert_eq!(h[0], 0.0);
    }
}
