//! Minimal fork–join helpers sized for small evaluation containers.
//!
//! The heavy loops in this workspace (matmul row panels, batched
//! convolution lowering, per-shard SISA training) are embarrassingly
//! parallel over an outer index. [`for_each_chunk`] splits such a loop over
//! a small number of OS threads using `std::thread::scope`, so no
//! dependency beyond `std` is needed and no thread pool outlives the call.
//!
//! The worker count defaults to the machine parallelism capped at 4 and can
//! be overridden with the `REVEIL_THREADS` environment variable (clamped to
//! at least 1), so bench machines with more cores are not hard-capped.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of worker threads used by [`for_each_chunk`].
///
/// Resolution order, cached after the first call:
///
/// 1. `REVEIL_THREADS` if set and parseable, clamped to `>= 1`;
/// 2. otherwise the machine parallelism capped at 4 (the default evaluation
///    container exposes few cores, and the work items are large enough that
///    more threads only add scheduling noise).
pub fn worker_count() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| resolve_worker_count(std::env::var("REVEIL_THREADS").ok().as_deref()))
}

/// Pure resolution logic behind [`worker_count`], split out so the
/// override parsing is testable despite the per-process cache.
fn resolve_worker_count(env_value: Option<&str>) -> usize {
    if let Some(raw) = env_value {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

/// Runs `f(start, chunk)` over disjoint mutable chunks of `data`, in
/// parallel when the input is large enough to amortise thread spawn cost.
///
/// `chunk_len` is the number of elements each call receives (the final chunk
/// may be shorter). `f` is given the starting element index of its chunk so
/// callers can recover global positions.
///
/// # Example
///
/// ```
/// let mut v = vec![0usize; 10];
/// reveil_tensor::parallel::for_each_chunk(&mut v, 3, |start, chunk| {
///     for (i, x) in chunk.iter_mut().enumerate() {
///         *x = start + i;
///     }
/// });
/// assert_eq!(v, (0..10).collect::<Vec<_>>());
/// ```
pub fn for_each_chunk<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let workers = worker_count();
    let n_chunks = data.len().div_ceil(chunk_len);
    if workers <= 1 || n_chunks <= 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx * chunk_len, chunk);
        }
        return;
    }

    // Work-stealing by atomic counter over chunk indices: threads grab the
    // next chunk id, so uneven chunk costs still balance.
    let next = AtomicUsize::new(0);
    let chunks: Vec<(usize, &mut [T])> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, c)| (i * chunk_len, c))
        .collect();
    // Hand ownership of each chunk cell to exactly one thread via indexed
    // claim; Mutex-free because claims are unique.
    let cells: Vec<std::sync::Mutex<Option<(usize, &mut [T])>>> =
        chunks.into_iter().map(|c| std::sync::Mutex::new(Some(c))).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers.min(cells.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let taken = cells[i]
                    .lock()
                    .expect("chunk mutex poisoned")
                    .take();
                if let Some((start, chunk)) = taken {
                    f(start, chunk);
                }
            });
        }
    });
}

/// Runs two closures on separate threads and returns both results.
///
/// Useful for forking independent halves of a computation (e.g. the two
/// matmuls of a backward pass) on the 2-core container.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if worker_count() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(a);
        let rb = b();
        let ra = handle.join().expect("parallel::join worker panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn worker_count_default_is_bounded() {
        let n = resolve_worker_count(None);
        assert!((1..=4).contains(&n));
    }

    #[test]
    fn reveil_threads_override_is_honored_and_clamped() {
        assert_eq!(resolve_worker_count(Some("8")), 8);
        assert_eq!(resolve_worker_count(Some(" 16 ")), 16);
        // Zero clamps to one; garbage falls back to the default.
        assert_eq!(resolve_worker_count(Some("0")), 1);
        assert_eq!(resolve_worker_count(Some("not-a-number")), resolve_worker_count(None));
    }

    #[test]
    fn for_each_chunk_covers_every_element() {
        let mut v = vec![0u32; 1003];
        for_each_chunk(&mut v, 64, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn for_each_chunk_passes_correct_offsets() {
        let mut v = vec![0usize; 257];
        for_each_chunk(&mut v, 10, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn for_each_chunk_handles_empty_and_single() {
        let mut empty: Vec<u8> = vec![];
        for_each_chunk(&mut empty, 8, |_, _| panic!("must not be called"));
        let mut single = vec![7u8];
        for_each_chunk(&mut single, 8, |start, chunk| {
            assert_eq!(start, 0);
            chunk[0] = 9;
        });
        assert_eq!(single, vec![9]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }
}
