//! Minimal fork–join helpers sized for small evaluation containers.
//!
//! The heavy loops in this workspace (matmul row panels, batched
//! convolution lowering, per-shard SISA training) are embarrassingly
//! parallel over an outer index. [`for_each_chunk`] splits such a loop over
//! a small number of OS threads using `std::thread::scope`, so no
//! dependency beyond `std` is needed and no thread pool outlives the call.
//!
//! The worker count defaults to the machine parallelism capped at 4 and can
//! be overridden with the `REVEIL_THREADS` environment variable (clamped to
//! at least 1), so bench machines with more cores are not hard-capped.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

thread_local! {
    /// Set while [`serialized`] runs: [`worker_count`] reports 1 on this
    /// thread, so nested kernel calls never fork their own teams.
    static SERIALIZED: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads used by [`for_each_chunk`].
///
/// Returns 1 inside a [`serialized`] scope. Otherwise the resolution
/// order, cached after the first call, is:
///
/// 1. `REVEIL_THREADS` if set and parseable, clamped to `>= 1`;
/// 2. otherwise the machine parallelism capped at 4 (the default evaluation
///    container exposes few cores, and the work items are large enough that
///    more threads only add scheduling noise).
pub fn worker_count() -> usize {
    if SERIALIZED.with(Cell::get) {
        return 1;
    }
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| resolve_worker_count(std::env::var("REVEIL_THREADS").ok().as_deref()))
}

/// Runs `f` with parallelism disabled on the calling thread: every
/// [`worker_count`]-sized fork inside `f` (GEMM row bands, im2col chunking,
/// [`join`]) runs inline instead of spawning a team.
///
/// This is how a *coarser* parallel layer keeps the machine from
/// oversubscribing: when work items (e.g. independent experiment cells)
/// are already fanned out one-per-worker, each worker wraps its item in
/// `serialized` so the kernels underneath don't multiply the thread count
/// to `workers²`. Results are unaffected — every kernel in this crate is
/// bit-identical across worker counts by design.
///
/// The flag is restored when `f` returns or panics (nesting is safe).
pub fn serialized<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SERIALIZED.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(SERIALIZED.with(|s| s.replace(true)));
    f()
}

/// Pure resolution logic behind [`worker_count`], split out so the
/// override parsing is testable despite the per-process cache.
fn resolve_worker_count(env_value: Option<&str>) -> usize {
    if let Some(raw) = env_value {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

/// Runs `f(start, chunk)` over disjoint mutable chunks of `data`, in
/// parallel when the input is large enough to amortise thread spawn cost.
///
/// `chunk_len` is the number of elements each call receives (the final chunk
/// may be shorter). `f` is given the starting element index of its chunk so
/// callers can recover global positions.
///
/// # Example
///
/// ```
/// let mut v = vec![0usize; 10];
/// reveil_tensor::parallel::for_each_chunk(&mut v, 3, |start, chunk| {
///     for (i, x) in chunk.iter_mut().enumerate() {
///         *x = start + i;
///     }
/// });
/// assert_eq!(v, (0..10).collect::<Vec<_>>());
/// ```
pub fn for_each_chunk<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let workers = worker_count();
    let n_chunks = data.len().div_ceil(chunk_len);
    if workers <= 1 || n_chunks <= 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx * chunk_len, chunk);
        }
        return;
    }

    // A chunk awaiting its one-time claim: starting element index plus the
    // mutable slice itself.
    type ChunkCell<'a, T> = std::sync::Mutex<Option<(usize, &'a mut [T])>>;

    // Work-stealing by atomic counter over chunk indices: threads grab the
    // next chunk id, so uneven chunk costs still balance.
    let next = AtomicUsize::new(0);
    let chunks: Vec<(usize, &mut [T])> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, c)| (i * chunk_len, c))
        .collect();
    // Hand ownership of each chunk cell to exactly one thread via indexed
    // claim; Mutex-free because claims are unique.
    let cells: Vec<ChunkCell<'_, T>> = chunks
        .into_iter()
        .map(|c| std::sync::Mutex::new(Some(c)))
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..workers.min(cells.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let taken = cells[i].lock().expect("chunk mutex poisoned").take();
                if let Some((start, chunk)) = taken {
                    f(start, chunk);
                }
            });
        }
    });
}

/// Handle to a fixed team of band workers spawned by [`scoped_bands`].
///
/// Workers use [`Team::sync`] as a phase barrier: every member must call it
/// the same number of times, so data one phase writes (e.g. a shared packed
/// operand panel) is visible — and no longer mutated — before the next
/// phase reads it.
///
/// Unlike [`std::sync::Barrier`], the barrier is *poisonable*: if a team
/// member panics, [`scoped_bands`] poisons the barrier before re-raising,
/// which wakes every member still waiting in `sync` and panics them too.
/// Without this, a single worker panic would leave its teammates blocked
/// forever on a barrier that can never fill — a silent hang instead of a
/// crash with the original panic message.
pub struct Team {
    size: usize,
    state: Mutex<TeamBarrier>,
    cvar: Condvar,
}

#[derive(Default)]
struct TeamBarrier {
    /// Members currently waiting in this phase.
    waiting: usize,
    /// Completed phase count; bumping it releases the waiters.
    generation: usize,
    /// Set when a member panicked: the team can never fill again.
    poisoned: bool,
}

impl Team {
    fn new(size: usize) -> Self {
        Self {
            size,
            state: Mutex::new(TeamBarrier::default()),
            cvar: Condvar::new(),
        }
    }

    /// Number of workers in the team (equals the number of bands).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Blocks until every team member has called `sync` for this phase.
    ///
    /// # Panics
    ///
    /// Panics if a teammate panicked (the barrier would otherwise never
    /// fill); the teammate's own unwind carries the original message.
    pub fn sync(&self) {
        let mut state = self.state.lock().expect("team barrier lock poisoned");
        assert!(!state.poisoned, "a team worker panicked; abandoning sync");
        state.waiting += 1;
        if state.waiting == self.size {
            state.waiting = 0;
            state.generation += 1;
            self.cvar.notify_all();
            return;
        }
        let generation = state.generation;
        while state.generation == generation && !state.poisoned {
            state = self.cvar.wait(state).expect("team barrier lock poisoned");
        }
        assert!(!state.poisoned, "a team worker panicked; abandoning sync");
    }

    /// Marks the team as dead and wakes every waiter (see [`Team::sync`]).
    fn poison(&self) {
        let mut state = self.state.lock().expect("team barrier lock poisoned");
        state.poisoned = true;
        self.cvar.notify_all();
    }
}

/// Splits `data` into fixed-length bands and runs one scoped worker per
/// band, handing every worker the same shared read-only context.
///
/// `f(team, worker, start, band, shared)` receives the team handle (for
/// barrier phases), the worker id (== band index), the starting element
/// index of its band, the band itself, and `shared`. Unlike
/// [`for_each_chunk`] there is no work stealing: each worker owns exactly
/// one band for the whole call, which lets callers coordinate multi-phase
/// protocols (cooperatively pack a shared buffer, `sync`, then consume it).
///
/// Callers size `band_len` so the band count does not exceed the intended
/// worker count — one thread is spawned per band. With a single band (or
/// empty `data`) the closure runs inline on the calling thread.
pub fn scoped_bands<T, S, F>(data: &mut [T], band_len: usize, shared: &S, f: F)
where
    T: Send,
    S: Sync + ?Sized,
    F: Fn(&Team, usize, usize, &mut [T], &S) + Sync,
{
    let band_len = band_len.max(1);
    let n_bands = data.len().div_ceil(band_len);
    let team = Team::new(n_bands.max(1));
    if n_bands <= 1 {
        if !data.is_empty() {
            f(&team, 0, 0, data, shared);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (w, band) in data.chunks_mut(band_len).enumerate() {
            let team = &team;
            let f = &f;
            scope.spawn(move || {
                // Poison the team barrier before re-raising so teammates
                // blocked in sync() wake and panic instead of waiting on a
                // barrier that can never fill.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    f(team, w, w * band_len, band, shared)
                }));
                if let Err(payload) = result {
                    team.poison();
                    std::panic::resume_unwind(payload);
                }
            });
        }
    });
}

/// Runs two closures on separate threads and returns both results.
///
/// Useful for forking independent halves of a computation (e.g. the two
/// matmuls of a backward pass) on the 2-core container.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if worker_count() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(a);
        let rb = b();
        let ra = handle.join().expect("parallel::join worker panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn worker_count_default_is_bounded() {
        let n = resolve_worker_count(None);
        assert!((1..=4).contains(&n));
    }

    #[test]
    fn reveil_threads_override_is_honored_and_clamped() {
        assert_eq!(resolve_worker_count(Some("8")), 8);
        assert_eq!(resolve_worker_count(Some(" 16 ")), 16);
        // Zero clamps to one; garbage falls back to the default.
        assert_eq!(resolve_worker_count(Some("0")), 1);
        assert_eq!(
            resolve_worker_count(Some("not-a-number")),
            resolve_worker_count(None)
        );
    }

    #[test]
    fn for_each_chunk_covers_every_element() {
        let mut v = vec![0u32; 1003];
        for_each_chunk(&mut v, 64, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn for_each_chunk_passes_correct_offsets() {
        let mut v = vec![0usize; 257];
        for_each_chunk(&mut v, 10, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn for_each_chunk_handles_empty_and_single() {
        let mut empty: Vec<u8> = vec![];
        for_each_chunk(&mut empty, 8, |_, _| panic!("must not be called"));
        let mut single = vec![7u8];
        for_each_chunk(&mut single, 8, |start, chunk| {
            assert_eq!(start, 0);
            chunk[0] = 9;
        });
        assert_eq!(single, vec![9]);
    }

    #[test]
    fn scoped_bands_covers_every_element_with_shared_context() {
        let mut v = vec![0u32; 37];
        let shared = 5u32;
        scoped_bands(&mut v, 10, &shared, |team, w, start, band, &s| {
            assert_eq!(team.size(), 4);
            assert_eq!(start, w * 10);
            for x in band.iter_mut() {
                *x = s;
            }
        });
        assert!(v.iter().all(|&x| x == 5));
    }

    #[test]
    fn scoped_bands_single_band_runs_inline() {
        let mut v = vec![0u8; 3];
        scoped_bands(&mut v, 8, &(), |team, w, start, band, ()| {
            assert_eq!((team.size(), w, start), (1, 0, 0));
            band.fill(1);
        });
        assert_eq!(v, vec![1, 1, 1]);
        let mut empty: Vec<u8> = vec![];
        scoped_bands(&mut empty, 8, &(), |_, _, _, _, ()| panic!("must not run"));
    }

    #[test]
    fn scoped_bands_sync_orders_phases() {
        // Phase 1: each worker writes its own slot of the shared scratch.
        // Phase 2: each worker reads every slot. Without the barrier this
        // would race; with it, every read observes every write.
        use std::sync::atomic::AtomicU32;
        let slots: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        let mut v = vec![0u32; 4];
        scoped_bands(&mut v, 1, &slots, |team, w, _, band, slots| {
            slots[w].store(w as u32 + 1, Ordering::Release);
            team.sync();
            band[0] = (0..team.size())
                .map(|i| slots[i].load(Ordering::Acquire))
                .sum();
        });
        assert_eq!(v, vec![10, 10, 10, 10]);
    }

    #[test]
    fn scoped_bands_worker_panic_propagates_instead_of_deadlocking() {
        // One worker dies before the barrier: the rest must be woken and
        // the panic must reach the caller (previously this hung forever).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut v = vec![0u8; 4];
            scoped_bands(&mut v, 1, &(), |team, w, _, _, ()| {
                if w == 2 {
                    panic!("worker 2 died");
                }
                team.sync();
            });
        }));
        assert!(result.is_err(), "panic must propagate out of scoped_bands");
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn serialized_pins_worker_count_to_one_and_restores() {
        let outer = worker_count();
        let inner = serialized(|| {
            // Nested scopes stay serialized and unwind correctly.
            assert_eq!(serialized(worker_count), 1);
            worker_count()
        });
        assert_eq!(inner, 1);
        assert_eq!(worker_count(), outer, "flag must be restored on exit");

        // The flag is restored even when the closure panics.
        let result = std::panic::catch_unwind(|| serialized(|| panic!("boom")));
        assert!(result.is_err());
        assert_eq!(worker_count(), outer, "flag must be restored on panic");
    }

    #[test]
    fn serialized_is_per_thread() {
        let global = worker_count();
        serialized(|| {
            assert_eq!(worker_count(), 1);
            // A fresh thread is unaffected by the caller's scope.
            let spawned = std::thread::spawn(worker_count).join().expect("spawn");
            assert_eq!(spawned, global);
        });
    }
}
