//! Dense `f32` tensor substrate for the ReVeil reproduction.
//!
//! This crate provides the numeric foundation used by every other crate in
//! the workspace: an owned, row-major, NCHW-oriented [`Tensor`] type together
//! with the linear-algebra and signal-processing primitives the paper's
//! pipeline needs:
//!
//! * elementwise arithmetic and mapping ([`Tensor::map`], operator impls),
//! * matrix multiplication in the transpose flavours required by
//!   backpropagation ([`ops::matmul`], [`ops::matmul_tn`],
//!   [`ops::matmul_nt`]), all lowering to one blocked, packed,
//!   auto-vectorized GEMM kernel with `*_into` variants for allocation
//!   reuse,
//! * `im2col`/`col2im` lowering for convolutions ([`conv`]), including
//!   whole-mini-batch variants that feed one large matmul per layer call,
//! * an orthonormal 2-D DCT used by the FTrojan frequency-domain trigger
//!   ([`dct`]),
//! * deterministic, stream-splittable random number helpers including a
//!   Box–Muller Gaussian ([`rng`]), and
//! * a tiny fork–join helper sized for small containers ([`parallel`];
//!   worker count overridable via `REVEIL_THREADS`).
//!
//! # Example
//!
//! ```
//! use reveil_tensor::{Tensor, ops};
//!
//! # fn main() -> Result<(), reveil_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Tensor::ones(&[3, 2]);
//! let c = ops::matmul(&a, &b)?;
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data()[0], 6.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod tensor;

pub mod conv;
pub mod dct;
pub mod ops;
pub mod parallel;
pub mod rng;

pub use error::TensorError;
pub use tensor::Tensor;
