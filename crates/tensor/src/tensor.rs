use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Sub, SubAssign};

use crate::error::TensorError;

/// An owned, dense, row-major `f32` tensor of arbitrary rank.
///
/// Images follow the NCHW convention throughout the workspace: a batch of
/// `n` RGB images of height `h` and width `w` has shape `[n, 3, h, w]` and a
/// single image has shape `[3, h, w]`.
///
/// # Example
///
/// ```
/// use reveil_tensor::Tensor;
///
/// # fn main() -> Result<(), reveil_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and a data buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::LengthMismatch {
                op: "Tensor::from_vec",
                expected_len: expected,
                got_len: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Flat (row-major) offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds; indexing mistakes are programming errors, not runtime inputs.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.shape.len(),
            "index rank {} does not match tensor rank {}",
            index.len(),
            self.shape.len()
        );
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for axis {i} with size {dim}"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates (see
    /// [`Tensor::offset`]).
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates (see
    /// [`Tensor::offset`]).
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the new shape implies a
    /// different element count.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch {
                op: "Tensor::reshape",
                expected_len: expected,
                got_len: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Result<Self, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "Tensor::zip_map",
                expected: self.shape.clone(),
                got: other.shape.clone(),
            });
        }
        Ok(Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Adds `scale * other` into `self` (the BLAS `axpy` primitive used by
    /// every optimizer step).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Self) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "Tensor::axpy",
                expected: self.shape.clone(),
                got: other.shape.clone(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every element by `value` in place.
    pub fn scale(&mut self, value: f32) {
        for v in &mut self.data {
            *v *= value;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshapes in place to `shape`, reusing the existing allocation when
    /// it is large enough (the scratch-buffer primitive behind the
    /// zero-allocation conv/matmul paths). Existing elements are left
    /// untouched and only growth is zero-initialised, so callers that
    /// overwrite every active element pay no redundant fill per reuse.
    pub fn resize_for_overwrite(&mut self, shape: &[usize]) {
        let len = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(len, 0.0);
    }

    /// Number of elements the backing buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Clamps every element into `[lo, hi]` in place.
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        for v in &mut self.data {
            *v = v.clamp(lo, hi);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for the empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for the empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for the empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum of squared elements (squared L2 norm).
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Sum of absolute values (L1 norm).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Flat index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of an empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Copies the `i`-th outermost slice (e.g. one image out of an NCHW
    /// batch) into a new tensor with the leading axis removed.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank-0 or `i` is out of bounds.
    pub fn outer_slice(&self, i: usize) -> Self {
        assert!(self.ndim() >= 1, "outer_slice of a rank-0 tensor");
        let n = self.shape[0];
        assert!(i < n, "outer index {i} out of bounds for leading axis {n}");
        let inner: usize = self.shape[1..].iter().product();
        let data = self.data[i * inner..(i + 1) * inner].to_vec();
        Self {
            shape: self.shape[1..].to_vec(),
            data,
        }
    }

    /// Writes `slice` into the `i`-th outermost slot of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `slice` does not match the
    /// trailing shape of `self`, or [`TensorError::InvalidArgument`] if `i`
    /// is out of bounds.
    pub fn set_outer_slice(&mut self, i: usize, slice: &Self) -> Result<(), TensorError> {
        if self.ndim() < 1 || self.shape[1..] != *slice.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "Tensor::set_outer_slice",
                expected: self.shape.get(1..).unwrap_or(&[]).to_vec(),
                got: slice.shape.clone(),
            });
        }
        if i >= self.shape[0] {
            return Err(TensorError::InvalidArgument {
                op: "Tensor::set_outer_slice",
                message: format!("index {i} out of bounds for leading axis {}", self.shape[0]),
            });
        }
        let inner = slice.len();
        self.data[i * inner..(i + 1) * inner].copy_from_slice(slice.data());
        Ok(())
    }

    /// Stacks same-shaped tensors along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `items` is empty and
    /// [`TensorError::ShapeMismatch`] if any item disagrees on shape.
    pub fn stack(items: &[Self]) -> Result<Self, TensorError> {
        let first = items.first().ok_or_else(|| TensorError::InvalidArgument {
            op: "Tensor::stack",
            message: "cannot stack zero tensors".to_string(),
        })?;
        let mut shape = Vec::with_capacity(first.ndim() + 1);
        shape.push(items.len());
        shape.extend_from_slice(first.shape());
        let mut data = Vec::with_capacity(first.len() * items.len());
        for item in items {
            if item.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    op: "Tensor::stack",
                    expected: first.shape.clone(),
                    got: item.shape.clone(),
                });
            }
            data.extend_from_slice(item.data());
        }
        Ok(Self { shape, data })
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keep the representation non-empty but bounded: shape plus a small
        // data prefix is enough for debugging without flooding logs.
        let preview: Vec<f32> = self.data.iter().copied().take(8).collect();
        let ellipsis = if self.data.len() > 8 { ", ..." } else { "" };
        write!(f, "Tensor{:?}{:?}{}", self.shape, preview, ellipsis)
    }
}

macro_rules! impl_elementwise_op {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;

            /// Elementwise operation on two same-shape tensors.
            ///
            /// # Panics
            ///
            /// Panics if the shapes differ; use [`Tensor::zip_map`] for a
            /// fallible variant.
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip_map(rhs, |a, b| a $op b)
                    .unwrap_or_else(|e| panic!("{e}"))
            }
        }

        impl $assign_trait<&Tensor> for Tensor {
            /// In-place elementwise operation.
            ///
            /// # Panics
            ///
            /// Panics if the shapes differ.
            fn $assign_method(&mut self, rhs: &Tensor) {
                assert_eq!(
                    self.shape, rhs.shape,
                    "elementwise assign: shape mismatch {:?} vs {:?}",
                    self.shape, rhs.shape
                );
                for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
                    *a = *a $op b;
                }
            }
        }
    };
}

impl_elementwise_op!(Add, add, AddAssign, add_assign, +);
impl_elementwise_op!(Sub, sub, SubAssign, sub_assign, -);
impl_elementwise_op!(Mul, mul, MulAssign, mul_assign, *);

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.map(|v| v * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![0.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { .. }));
    }

    #[test]
    fn offset_is_row_major() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 3]), 3);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_panics_out_of_bounds() {
        Tensor::zeros(&[2, 2]).offset(&[0, 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.clone().reshape(vec![3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn elementwise_operators() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![10.0, 20.0, 30.0]).unwrap();
        assert_eq!((&a + &b).data(), &[11.0, 22.0, 33.0]);
        assert_eq!((&b - &a).data(), &[9.0, 18.0, 27.0]);
        assert_eq!((&a * &b).data(), &[10.0, 40.0, 90.0]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[4]);
        let b = Tensor::full(&[4], 2.0);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0; 4]);
        let c = Tensor::ones(&[5]);
        assert!(a.axpy(1.0, &c).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![4], vec![-1.0, 3.0, 2.0, -4.0]).unwrap();
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
        assert_eq!(t.l1_norm(), 10.0);
        assert_eq!(t.sq_norm(), 30.0);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn argmax_ties_prefer_first() {
        let t = Tensor::from_vec(vec![3], vec![5.0, 5.0, 1.0]).unwrap();
        assert_eq!(t.argmax(), 0);
    }

    #[test]
    fn outer_slice_roundtrip() {
        let batch = Tensor::from_fn(&[3, 2, 2], |i| i as f32);
        let one = batch.outer_slice(1);
        assert_eq!(one.shape(), &[2, 2]);
        assert_eq!(one.data(), &[4.0, 5.0, 6.0, 7.0]);

        let mut out = Tensor::zeros(&[3, 2, 2]);
        out.set_outer_slice(1, &one).unwrap();
        assert_eq!(out.outer_slice(1), one);
        assert_eq!(out.outer_slice(0).sum(), 0.0);
    }

    #[test]
    fn stack_builds_batches() {
        let a = Tensor::full(&[2, 2], 1.0);
        let b = Tensor::full(&[2, 2], 2.0);
        let s = Tensor::stack(&[a, b]).unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.outer_slice(1).data(), &[2.0; 4]);
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn clamp_and_scale() {
        let mut t = Tensor::from_vec(vec![3], vec![-1.0, 0.5, 2.0]).unwrap();
        t.clamp_inplace(0.0, 1.0);
        assert_eq!(t.data(), &[0.0, 0.5, 1.0]);
        t.scale(2.0);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0]);
        t.fill_zero();
        assert_eq!(t.data(), &[0.0; 3]);
    }

    #[test]
    fn resize_for_overwrite_reuses_allocation() {
        let mut t = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let cap = t.capacity();
        t.resize_for_overwrite(&[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0], "same-size keeps elements");
        assert_eq!(t.capacity(), cap, "same-size resize must not reallocate");

        // Shrinking truncates; growing back zero-fills only the growth.
        t.resize_for_overwrite(&[3]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0]);
        t.resize_for_overwrite(&[2, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 0.0]);
        assert_eq!(t.capacity(), cap);
    }

    #[test]
    fn debug_is_nonempty_and_bounded() {
        let t = Tensor::zeros(&[100]);
        let dbg = format!("{t:?}");
        assert!(dbg.contains("Tensor"));
        assert!(dbg.contains("..."));
        assert!(dbg.len() < 200);
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
