//! `im2col`/`col2im` lowering used by the convolution layers.
//!
//! A convolution of a `[c, h, w]` input with `[oc, c, kh, kw]` kernels is
//! computed as a matmul between the kernel matrix `[oc, c*kh*kw]` and the
//! lowered column matrix produced by [`im2col`]; [`col2im`] is its adjoint
//! and routes output-space gradients back to input space.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride applied in both spatial directions.
    pub stride: usize,
    /// Zero padding applied symmetrically in both spatial directions.
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a geometry description.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the kernel is empty or the
    /// stride is zero.
    pub fn new(kh: usize, kw: usize, stride: usize, padding: usize) -> Result<Self, TensorError> {
        if kh == 0 || kw == 0 {
            return Err(TensorError::InvalidArgument {
                op: "ConvGeometry::new",
                message: format!("kernel {kh}x{kw} must be non-empty"),
            });
        }
        if stride == 0 {
            return Err(TensorError::InvalidArgument {
                op: "ConvGeometry::new",
                message: "stride must be positive".to_string(),
            });
        }
        Ok(Self { kh, kw, stride, padding })
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the padded input is
    /// smaller than the kernel.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize), TensorError> {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if ph < self.kh || pw < self.kw {
            return Err(TensorError::InvalidArgument {
                op: "ConvGeometry::output_size",
                message: format!(
                    "padded input {ph}x{pw} smaller than kernel {}x{}",
                    self.kh, self.kw
                ),
            });
        }
        Ok(((ph - self.kh) / self.stride + 1, (pw - self.kw) / self.stride + 1))
    }
}

/// Lowers a `[c, h, w]` input to a `[c*kh*kw, oh*ow]` column matrix.
///
/// Column `q` (for output position `(oy, ox)`, `q = oy*ow + ox`) holds the
/// receptive field of that position, channel-major then row-major within the
/// kernel. Out-of-bounds taps (from padding) read as zero.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `input` is not rank-3 and
/// propagates geometry errors from [`ConvGeometry::output_size`].
pub fn im2col(input: &Tensor, geom: ConvGeometry) -> Result<Tensor, TensorError> {
    let &[c, h, w] = input.shape() else {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            expected: vec![0, 0, 0],
            got: input.shape().to_vec(),
        });
    };
    let (oh, ow) = geom.output_size(h, w)?;
    let rows = c * geom.kh * geom.kw;
    let cols = oh * ow;
    let mut out = Tensor::zeros(&[rows, cols]);
    let src = input.data();
    let dst = out.data_mut();

    for ch in 0..c {
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let row = (ch * geom.kh + ky) * geom.kw + kx;
                let row_base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_base = (ch * h + iy as usize) * w;
                    let dst_base = row_base + oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[dst_base + ox] = src[src_base + ix as usize];
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Adjoint of [`im2col`]: scatters a `[c*kh*kw, oh*ow]` column matrix back
/// into a `[c, h, w]` tensor, accumulating where receptive fields overlap.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not match the
/// geometry implied by `(c, h, w)` and `geom`.
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    geom: ConvGeometry,
) -> Result<Tensor, TensorError> {
    let (oh, ow) = geom.output_size(h, w)?;
    let rows = c * geom.kh * geom.kw;
    if cols.shape() != [rows, oh * ow] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            expected: vec![rows, oh * ow],
            got: cols.shape().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[c, h, w]);
    let src = cols.data();
    let dst = out.data_mut();
    let n_cols = oh * ow;

    for ch in 0..c {
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let row = (ch * geom.kh + ky) * geom.kw + kx;
                let row_base = row * n_cols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_base = (ch * h + iy as usize) * w;
                    let src_base = row_base + oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[dst_base + ix as usize] += src[src_base + ox];
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_matches_convention() {
        let g = ConvGeometry::new(3, 3, 1, 1).unwrap();
        assert_eq!(g.output_size(8, 8).unwrap(), (8, 8));
        let g = ConvGeometry::new(3, 3, 2, 1).unwrap();
        assert_eq!(g.output_size(8, 8).unwrap(), (4, 4));
        let g = ConvGeometry::new(2, 2, 2, 0).unwrap();
        assert_eq!(g.output_size(8, 8).unwrap(), (4, 4));
    }

    #[test]
    fn geometry_validates_arguments() {
        assert!(ConvGeometry::new(0, 3, 1, 0).is_err());
        assert!(ConvGeometry::new(3, 3, 0, 0).is_err());
        let g = ConvGeometry::new(5, 5, 1, 0).unwrap();
        assert!(g.output_size(3, 3).is_err());
    }

    #[test]
    fn im2col_identity_kernel_is_flatten() {
        // A 1x1 kernel with stride 1 lowers each channel to one row.
        let input = Tensor::from_fn(&[2, 2, 2], |i| i as f32);
        let g = ConvGeometry::new(1, 1, 1, 0).unwrap();
        let cols = im2col(&input, g).unwrap();
        assert_eq!(cols.shape(), &[2, 4]);
        assert_eq!(cols.data(), input.data());
    }

    #[test]
    fn im2col_extracts_receptive_fields() {
        // 1 channel, 3x3 image, 2x2 kernel, stride 1, no padding.
        let input =
            Tensor::from_vec(vec![1, 3, 3], (1..=9).map(|i| i as f32).collect()).unwrap();
        let g = ConvGeometry::new(2, 2, 1, 0).unwrap();
        let cols = im2col(&input, g).unwrap();
        assert_eq!(cols.shape(), &[4, 4]);
        // First output position sees [1,2,4,5]; reading down the column:
        assert_eq!(cols.at(&[0, 0]), 1.0);
        assert_eq!(cols.at(&[1, 0]), 2.0);
        assert_eq!(cols.at(&[2, 0]), 4.0);
        assert_eq!(cols.at(&[3, 0]), 5.0);
        // Last output position sees [5,6,8,9].
        assert_eq!(cols.at(&[0, 3]), 5.0);
        assert_eq!(cols.at(&[3, 3]), 9.0);
    }

    #[test]
    fn im2col_padding_reads_zero() {
        let input = Tensor::ones(&[1, 2, 2]);
        let g = ConvGeometry::new(3, 3, 1, 1).unwrap();
        let cols = im2col(&input, g).unwrap();
        assert_eq!(cols.shape(), &[9, 4]);
        // Center tap of the kernel always lands inside the image.
        for q in 0..4 {
            assert_eq!(cols.at(&[4, q]), 1.0);
        }
        // Top-left tap of the first output position is padding.
        assert_eq!(cols.at(&[0, 0]), 0.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y — the adjoint
        // identity that makes the conv backward pass correct.
        let c = 2;
        let h = 5;
        let w = 4;
        let g = ConvGeometry::new(3, 3, 2, 1).unwrap();
        let x = Tensor::from_fn(&[c, h, w], |i| ((i * 31 % 17) as f32) - 8.0);
        let (oh, ow) = g.output_size(h, w).unwrap();
        let y = Tensor::from_fn(&[c * 9, oh * ow], |i| ((i * 29 % 13) as f32) - 6.0);

        let lhs: f32 = im2col(&x, g)
            .unwrap()
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&y, c, h, w, g).unwrap().data())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_rejects_wrong_shapes() {
        let g = ConvGeometry::new(2, 2, 1, 0).unwrap();
        let bad = Tensor::zeros(&[3, 3]);
        assert!(col2im(&bad, 1, 3, 3, g).is_err());
    }
}
