//! `im2col`/`col2im` lowering used by the convolution layers.
//!
//! A convolution of a `[c, h, w]` input with `[oc, c, kh, kw]` kernels is
//! computed as a matmul between the kernel matrix `[oc, c*kh*kw]` and the
//! lowered column matrix produced by [`im2col`]; [`col2im`] is its adjoint
//! and routes output-space gradients back to input space.
//!
//! The batched variants [`im2col_batch_into`] and [`col2im_batch_into`]
//! lower a whole `[n, c, h, w]` mini-batch into one `[c*kh*kw, n*oh*ow]`
//! column matrix written into a caller-provided scratch tensor, so a
//! convolution layer performs one large matmul per call instead of `n`
//! small ones and allocates nothing per sample. The inner loops copy whole
//! valid row segments (computed analytically from the geometry) instead of
//! testing every tap for padding.

use crate::error::TensorError;
use crate::parallel;
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride applied in both spatial directions.
    pub stride: usize,
    /// Zero padding applied symmetrically in both spatial directions.
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a geometry description.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the kernel is empty or the
    /// stride is zero.
    pub fn new(kh: usize, kw: usize, stride: usize, padding: usize) -> Result<Self, TensorError> {
        if kh == 0 || kw == 0 {
            return Err(TensorError::InvalidArgument {
                op: "ConvGeometry::new",
                message: format!("kernel {kh}x{kw} must be non-empty"),
            });
        }
        if stride == 0 {
            return Err(TensorError::InvalidArgument {
                op: "ConvGeometry::new",
                message: "stride must be positive".to_string(),
            });
        }
        Ok(Self {
            kh,
            kw,
            stride,
            padding,
        })
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the padded input is
    /// smaller than the kernel.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize), TensorError> {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if ph < self.kh || pw < self.kw {
            return Err(TensorError::InvalidArgument {
                op: "ConvGeometry::output_size",
                message: format!(
                    "padded input {ph}x{pw} smaller than kernel {}x{}",
                    self.kh, self.kw
                ),
            });
        }
        Ok((
            (ph - self.kh) / self.stride + 1,
            (pw - self.kw) / self.stride + 1,
        ))
    }

    /// Range of output positions `o` whose input tap `o*stride + k - padding`
    /// lands inside `[0, extent)`, clipped to `[0, out_extent)`.
    fn valid_out_range(&self, k: usize, extent: usize, out_extent: usize) -> (usize, usize) {
        let offset = k as isize - self.padding as isize;
        let stride = self.stride as isize;
        // o*stride + offset >= 0  =>  o >= ceil(-offset / stride)
        let lo = if offset >= 0 {
            0
        } else {
            (-offset + stride - 1) / stride
        };
        // o*stride + offset <= extent - 1  =>  o <= (extent - 1 - offset) / stride
        let last = extent as isize - 1 - offset;
        if last < 0 {
            return (0, 0);
        }
        let hi = (last / stride + 1).min(out_extent as isize);
        if lo >= hi {
            (0, 0)
        } else {
            (lo as usize, hi as usize)
        }
    }
}

/// Fills rows `row_start..row_start + dst.len() / ncols` of a batched
/// `[c*kh*kw, n*oh*ow]` column matrix. Each row is one kernel tap
/// `(channel, ky, kx)`; sample `s` occupies the column block
/// `s*oh*ow..(s+1)*oh*ow`. `dst` is fully overwritten (padding taps become
/// zero).
#[allow(clippy::too_many_arguments)]
fn fill_im2col_rows(
    src: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    geom: ConvGeometry,
    oh: usize,
    ow: usize,
    row_start: usize,
    dst: &mut [f32],
) {
    let ncols = n * oh * ow;
    let k2 = geom.kh * geom.kw;
    dst.fill(0.0);
    for (local, row_dst) in dst.chunks_mut(ncols).enumerate() {
        let row = row_start + local;
        let ch = row / k2;
        let ky = (row % k2) / geom.kw;
        let kx = row % geom.kw;
        let (oy_lo, oy_hi) = geom.valid_out_range(ky, h, oh);
        let (ox_lo, ox_hi) = geom.valid_out_range(kx, w, ow);
        if oy_lo >= oy_hi || ox_lo >= ox_hi {
            continue;
        }
        for s in 0..n {
            let sample_src = &src[(s * c + ch) * h * w..][..h * w];
            let col_base = s * oh * ow;
            for oy in oy_lo..oy_hi {
                let iy = oy * geom.stride + ky - geom.padding;
                let ix0 = ox_lo * geom.stride + kx - geom.padding;
                let seg = &mut row_dst[col_base + oy * ow + ox_lo..col_base + oy * ow + ox_hi];
                if geom.stride == 1 {
                    seg.copy_from_slice(&sample_src[iy * w + ix0..][..seg.len()]);
                } else {
                    let base = iy * w + ix0;
                    for (d, o) in seg.iter_mut().enumerate() {
                        *o = sample_src[base + d * geom.stride];
                    }
                }
            }
        }
    }
}

/// Scatters sample `s`'s column block of a batched `[c*kh*kw, n*oh*ow]`
/// matrix back into that sample's `[c, h, w]` gradient, accumulating where
/// receptive fields overlap. `dst` is fully overwritten.
#[allow(clippy::too_many_arguments)]
fn scatter_col2im_sample(
    cols: &[f32],
    s: usize,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    geom: ConvGeometry,
    oh: usize,
    ow: usize,
    dst: &mut [f32],
) {
    let ncols = n * oh * ow;
    let k2 = geom.kh * geom.kw;
    dst.fill(0.0);
    for row in 0..c * k2 {
        let ch = row / k2;
        let ky = (row % k2) / geom.kw;
        let kx = row % geom.kw;
        let (oy_lo, oy_hi) = geom.valid_out_range(ky, h, oh);
        let (ox_lo, ox_hi) = geom.valid_out_range(kx, w, ow);
        let col_base = row * ncols + s * oh * ow;
        for oy in oy_lo..oy_hi {
            let iy = oy * geom.stride + ky - geom.padding;
            let ix0 = ox_lo * geom.stride + kx - geom.padding;
            let seg = &cols[col_base + oy * ow + ox_lo..col_base + oy * ow + ox_hi];
            let base = (ch * h + iy) * w + ix0;
            if geom.stride == 1 {
                for (o, &v) in dst[base..base + seg.len()].iter_mut().zip(seg) {
                    *o += v;
                }
            } else {
                for (d, &v) in seg.iter().enumerate() {
                    dst[base + d * geom.stride] += v;
                }
            }
        }
    }
}

/// Lowers a whole `[n, c, h, w]` mini-batch to one `[c*kh*kw, n*oh*ow]`
/// column matrix, writing into `out` (resized in place, reusing its
/// allocation). Sample `s` occupies columns `s*oh*ow..(s+1)*oh*ow`, so a
/// single matmul against the `[oc, c*kh*kw]` kernel matrix convolves the
/// whole batch. The lowering parallelizes across kernel-tap rows.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `input` is not rank-4 and
/// propagates geometry errors from [`ConvGeometry::output_size`].
pub fn im2col_batch_into(
    input: &Tensor,
    geom: ConvGeometry,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let &[n, c, h, w] = input.shape() else {
        return Err(TensorError::ShapeMismatch {
            op: "im2col_batch_into",
            expected: vec![0, 0, 0, 0],
            got: input.shape().to_vec(),
        });
    };
    let (oh, ow) = geom.output_size(h, w)?;
    let rows = c * geom.kh * geom.kw;
    let ncols = n * oh * ow;
    // fill_im2col_rows overwrites every element (padding included), so the
    // resize does not need to pre-fill.
    out.resize_for_overwrite(&[rows, ncols]);
    let src = input.data();
    let rows_per_chunk = rows.div_ceil(parallel::worker_count()).max(1);
    parallel::for_each_chunk(out.data_mut(), rows_per_chunk * ncols, |start, chunk| {
        fill_im2col_rows(src, n, c, h, w, geom, oh, ow, start / ncols, chunk);
    });
    Ok(())
}

/// Adjoint of [`im2col_batch_into`]: scatters a `[c*kh*kw, n*oh*ow]` column
/// matrix back into an `[n, c, h, w]` gradient tensor, writing into `out`
/// (resized in place). The scatter parallelizes across samples.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not match the
/// geometry implied by `(n, c, h, w)` and `geom`.
pub fn col2im_batch_into(
    cols: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    geom: ConvGeometry,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let (oh, ow) = geom.output_size(h, w)?;
    let rows = c * geom.kh * geom.kw;
    if cols.shape() != [rows, n * oh * ow] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im_batch_into",
            expected: vec![rows, n * oh * ow],
            got: cols.shape().to_vec(),
        });
    }
    // scatter_col2im_sample zero-fills each sample chunk before
    // accumulating, so the resize does not need to pre-fill.
    out.resize_for_overwrite(&[n, c, h, w]);
    let src = cols.data();
    let sample_len = c * h * w;
    parallel::for_each_chunk(out.data_mut(), sample_len, |start, chunk| {
        scatter_col2im_sample(src, start / sample_len, n, c, h, w, geom, oh, ow, chunk);
    });
    Ok(())
}

/// Lowers a `[c, h, w]` input to a `[c*kh*kw, oh*ow]` column matrix.
///
/// Column `q` (for output position `(oy, ox)`, `q = oy*ow + ox`) holds the
/// receptive field of that position, channel-major then row-major within the
/// kernel. Out-of-bounds taps (from padding) read as zero.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `input` is not rank-3 and
/// propagates geometry errors from [`ConvGeometry::output_size`].
pub fn im2col(input: &Tensor, geom: ConvGeometry) -> Result<Tensor, TensorError> {
    let &[c, h, w] = input.shape() else {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            expected: vec![0, 0, 0],
            got: input.shape().to_vec(),
        });
    };
    let (oh, ow) = geom.output_size(h, w)?;
    let rows = c * geom.kh * geom.kw;
    let mut out = Tensor::zeros(&[rows, oh * ow]);
    fill_im2col_rows(input.data(), 1, c, h, w, geom, oh, ow, 0, out.data_mut());
    Ok(out)
}

/// Adjoint of [`im2col`]: scatters a `[c*kh*kw, oh*ow]` column matrix back
/// into a `[c, h, w]` tensor, accumulating where receptive fields overlap.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not match the
/// geometry implied by `(c, h, w)` and `geom`.
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    geom: ConvGeometry,
) -> Result<Tensor, TensorError> {
    let (oh, ow) = geom.output_size(h, w)?;
    let rows = c * geom.kh * geom.kw;
    if cols.shape() != [rows, oh * ow] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            expected: vec![rows, oh * ow],
            got: cols.shape().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[c, h, w]);
    scatter_col2im_sample(cols.data(), 0, 1, c, h, w, geom, oh, ow, out.data_mut());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_matches_convention() {
        let g = ConvGeometry::new(3, 3, 1, 1).unwrap();
        assert_eq!(g.output_size(8, 8).unwrap(), (8, 8));
        let g = ConvGeometry::new(3, 3, 2, 1).unwrap();
        assert_eq!(g.output_size(8, 8).unwrap(), (4, 4));
        let g = ConvGeometry::new(2, 2, 2, 0).unwrap();
        assert_eq!(g.output_size(8, 8).unwrap(), (4, 4));
    }

    #[test]
    fn geometry_validates_arguments() {
        assert!(ConvGeometry::new(0, 3, 1, 0).is_err());
        assert!(ConvGeometry::new(3, 3, 0, 0).is_err());
        let g = ConvGeometry::new(5, 5, 1, 0).unwrap();
        assert!(g.output_size(3, 3).is_err());
    }

    #[test]
    fn im2col_identity_kernel_is_flatten() {
        // A 1x1 kernel with stride 1 lowers each channel to one row.
        let input = Tensor::from_fn(&[2, 2, 2], |i| i as f32);
        let g = ConvGeometry::new(1, 1, 1, 0).unwrap();
        let cols = im2col(&input, g).unwrap();
        assert_eq!(cols.shape(), &[2, 4]);
        assert_eq!(cols.data(), input.data());
    }

    #[test]
    fn im2col_extracts_receptive_fields() {
        // 1 channel, 3x3 image, 2x2 kernel, stride 1, no padding.
        let input = Tensor::from_vec(vec![1, 3, 3], (1..=9).map(|i| i as f32).collect()).unwrap();
        let g = ConvGeometry::new(2, 2, 1, 0).unwrap();
        let cols = im2col(&input, g).unwrap();
        assert_eq!(cols.shape(), &[4, 4]);
        // First output position sees [1,2,4,5]; reading down the column:
        assert_eq!(cols.at(&[0, 0]), 1.0);
        assert_eq!(cols.at(&[1, 0]), 2.0);
        assert_eq!(cols.at(&[2, 0]), 4.0);
        assert_eq!(cols.at(&[3, 0]), 5.0);
        // Last output position sees [5,6,8,9].
        assert_eq!(cols.at(&[0, 3]), 5.0);
        assert_eq!(cols.at(&[3, 3]), 9.0);
    }

    #[test]
    fn im2col_padding_reads_zero() {
        let input = Tensor::ones(&[1, 2, 2]);
        let g = ConvGeometry::new(3, 3, 1, 1).unwrap();
        let cols = im2col(&input, g).unwrap();
        assert_eq!(cols.shape(), &[9, 4]);
        // Center tap of the kernel always lands inside the image.
        for q in 0..4 {
            assert_eq!(cols.at(&[4, q]), 1.0);
        }
        // Top-left tap of the first output position is padding.
        assert_eq!(cols.at(&[0, 0]), 0.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y — the adjoint
        // identity that makes the conv backward pass correct.
        let c = 2;
        let h = 5;
        let w = 4;
        let g = ConvGeometry::new(3, 3, 2, 1).unwrap();
        let x = Tensor::from_fn(&[c, h, w], |i| ((i * 31 % 17) as f32) - 8.0);
        let (oh, ow) = g.output_size(h, w).unwrap();
        let y = Tensor::from_fn(&[c * 9, oh * ow], |i| ((i * 29 % 13) as f32) - 6.0);

        let lhs: f32 = im2col(&x, g)
            .unwrap()
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&y, c, h, w, g).unwrap().data())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn batched_im2col_stacks_per_sample_lowerings() {
        // Awkward geometry: stride 2, padding 1, non-square input.
        let n = 3;
        let (c, h, w) = (2, 5, 4);
        let g = ConvGeometry::new(3, 3, 2, 1).unwrap();
        let batch = Tensor::from_fn(&[n, c, h, w], |i| ((i * 37 % 23) as f32) - 11.0);
        let mut cols = Tensor::zeros(&[0]);
        im2col_batch_into(&batch, g, &mut cols).unwrap();

        let (oh, ow) = g.output_size(h, w).unwrap();
        assert_eq!(cols.shape(), &[c * 9, n * oh * ow]);
        for s in 0..n {
            let single = im2col(&batch.outer_slice(s), g).unwrap();
            for r in 0..c * 9 {
                let got = &cols.data()[r * n * oh * ow + s * oh * ow..][..oh * ow];
                let want = &single.data()[r * oh * ow..][..oh * ow];
                assert_eq!(got, want, "row {r} sample {s}");
            }
        }
    }

    #[test]
    fn batched_col2im_stacks_per_sample_scatters() {
        let n = 2;
        let (c, h, w) = (2, 4, 5);
        let g = ConvGeometry::new(2, 3, 1, 1).unwrap();
        let (oh, ow) = g.output_size(h, w).unwrap();
        let rows = c * 6;
        let cols = Tensor::from_fn(&[rows, n * oh * ow], |i| ((i * 29 % 13) as f32) - 6.0);
        let mut grad = Tensor::zeros(&[0]);
        col2im_batch_into(&cols, n, c, h, w, g, &mut grad).unwrap();
        assert_eq!(grad.shape(), &[n, c, h, w]);

        for s in 0..n {
            // Extract sample s's column block and scatter it alone.
            let mut block = Tensor::zeros(&[rows, oh * ow]);
            for r in 0..rows {
                let src = &cols.data()[r * n * oh * ow + s * oh * ow..][..oh * ow];
                block.data_mut()[r * oh * ow..(r + 1) * oh * ow].copy_from_slice(src);
            }
            let single = col2im(&block, c, h, w, g).unwrap();
            assert_eq!(grad.outer_slice(s), single, "sample {s}");
        }
    }

    #[test]
    fn batch_into_reuses_allocations() {
        let g = ConvGeometry::new(3, 3, 1, 1).unwrap();
        let batch = Tensor::from_fn(&[4, 3, 8, 8], |i| i as f32 * 0.01);
        let mut cols = Tensor::zeros(&[0]);
        im2col_batch_into(&batch, g, &mut cols).unwrap();
        let first = cols.clone();
        let cap = cols.capacity();
        im2col_batch_into(&batch, g, &mut cols).unwrap();
        assert_eq!(cols, first, "reuse must be bit-identical");
        assert_eq!(cols.capacity(), cap, "no reallocation on reuse");
    }

    #[test]
    fn batch_into_rejects_bad_shapes() {
        let g = ConvGeometry::new(2, 2, 1, 0).unwrap();
        let mut out = Tensor::zeros(&[0]);
        let rank3 = Tensor::zeros(&[1, 3, 3]);
        assert!(im2col_batch_into(&rank3, g, &mut out).is_err());
        let bad_cols = Tensor::zeros(&[3, 3]);
        assert!(col2im_batch_into(&bad_cols, 1, 1, 3, 3, g, &mut out).is_err());
    }

    #[test]
    fn col2im_rejects_wrong_shapes() {
        let g = ConvGeometry::new(2, 2, 1, 0).unwrap();
        let bad = Tensor::zeros(&[3, 3]);
        assert!(col2im(&bad, 1, 3, 3, g).is_err());
    }
}
