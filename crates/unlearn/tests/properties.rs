//! Property-based tests of SISA's structural invariants across random
//! topologies.

use proptest::prelude::*;
use std::collections::BTreeSet;

use reveil_datasets::LabeledDataset;
use reveil_nn::models;
use reveil_nn::train::TrainConfig;
use reveil_tensor::{rng, Tensor};
use reveil_unlearn::{SisaConfig, SisaEnsemble};

fn toy_dataset(n: usize, seed: u64) -> LabeledDataset {
    let mut ds = LabeledDataset::new("toy", 2);
    let mut r = rng::rng_from_seed(seed);
    for i in 0..n {
        let class = i % 2;
        let mut img = Tensor::full(&[1, 4, 4], class as f32 * 0.8 + 0.1);
        rng::fill_gaussian(&mut img, class as f32 * 0.8 + 0.1, 0.05, &mut r);
        ds.push(img, class).expect("consistent shapes");
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn partition_is_disjoint_and_complete(
        n in 8usize..40, shards in 1usize..5, slices in 1usize..4, seed in 0u64..50,
    ) {
        prop_assume!(n >= shards);
        let data = toy_dataset(n, seed);
        let sisa = SisaEnsemble::train(
            SisaConfig::new(shards, slices).with_seed(seed),
            TrainConfig::new(1, 8, 0.05).with_seed(seed),
            Box::new(|s| models::mlp_probe(1, 4, 4, 2, s)),
            &data,
        ).expect("trainable");
        let mut seen = BTreeSet::new();
        for s in 0..sisa.num_shards() {
            for &idx in sisa.shard_members(s) {
                prop_assert!(seen.insert(idx), "index {} duplicated", idx);
            }
        }
        prop_assert_eq!(seen.len(), n);
    }

    #[test]
    fn unlearning_removes_exactly_the_requested_indices(
        n in 10usize..30, remove_count in 1usize..5, seed in 0u64..50,
    ) {
        let data = toy_dataset(n, seed);
        let mut sisa = SisaEnsemble::train(
            SisaConfig::new(2, 2).with_seed(seed),
            TrainConfig::new(1, 8, 0.05).with_seed(seed),
            Box::new(|s| models::mlp_probe(1, 4, 4, 2, s)),
            &data,
        ).expect("trainable");
        let remove: BTreeSet<usize> = (0..remove_count).collect();
        let report = sisa.unlearn(&remove).expect("valid request");
        prop_assert!(report.shards_affected >= 1);
        prop_assert!(report.cost_fraction() <= 1.0 + 1e-6);
        let mut survivors = BTreeSet::new();
        for s in 0..sisa.num_shards() {
            for &idx in sisa.shard_members(s) {
                prop_assert!(!remove.contains(&idx), "erased index {} survived", idx);
                survivors.insert(idx);
            }
        }
        prop_assert_eq!(survivors.len(), n - remove_count);
        prop_assert_eq!(sisa.erased().len(), remove_count);
    }
}
