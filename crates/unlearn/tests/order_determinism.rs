//! Regression pins for forget-set ordering (PR 7).
//!
//! Before the D1 burn-down these sets were `HashSet<usize>`, so everything
//! that iterated a forget request inherited hash-iteration order: the
//! gradient-ascent batch schedule and SISA's per-shard erase walk were
//! insertion-order sensitive. With `BTreeSet` the outcome must be
//! bit-identical no matter how the caller assembled the request.

use std::collections::BTreeSet;

use reveil_datasets::LabeledDataset;
use reveil_nn::train::{TrainConfig, Trainer};
use reveil_nn::{models, Network};
use reveil_tensor::{rng, Tensor};
use reveil_unlearn::approximate::{gradient_ascent, GradientAscentConfig};
use reveil_unlearn::{SisaConfig, SisaEnsemble};

/// The same fixed-seed smoke cell as the trait-façade tests.
fn smoke_cell() -> (LabeledDataset, Vec<usize>) {
    let mut r = rng::rng_from_seed(11);
    let mut ds = LabeledDataset::new("smoke-cell", 2);
    for i in 0..48 {
        let class = i % 2;
        let mut img = Tensor::full(&[1, 6, 6], class as f32 * 0.7 + 0.15);
        rng::fill_gaussian(&mut img, class as f32 * 0.7 + 0.15, 0.05, &mut r);
        img.clamp_inplace(0.0, 1.0);
        ds.push(img, class).unwrap();
    }
    let mut planted = Vec::new();
    for _ in 0..6 {
        let mut img = Tensor::full(&[1, 6, 6], 0.85);
        rng::fill_gaussian(&mut img, 0.85, 0.05, &mut r);
        img.clamp_inplace(0.0, 1.0);
        ds.push(img, 0).unwrap();
        planted.push(ds.len() - 1);
    }
    (ds, planted)
}

fn trained_model(data: &LabeledDataset) -> Network {
    let mut model = models::mlp_probe(1, 6, 6, 2, 3);
    Trainer::new(TrainConfig::new(4, 8, 0.05).with_seed(5)).fit(
        &mut model,
        data.images(),
        data.labels(),
    );
    model
}

/// Inserts `indices` into a fresh set in a scrambled (reversed, interleaved)
/// order — the shape of request a caller assembling indices from several
/// scans would produce.
fn scrambled(indices: &[usize]) -> BTreeSet<usize> {
    let mut set = BTreeSet::new();
    for &i in indices.iter().rev().step_by(2) {
        set.insert(i);
    }
    for &i in indices.iter().step_by(2) {
        set.insert(i);
    }
    for &i in indices {
        set.insert(i); // duplicates must be as harmless as they were before
    }
    set
}

#[test]
fn gradient_ascent_is_insensitive_to_forget_insertion_order() {
    let (data, planted) = smoke_cell();
    let sorted: BTreeSet<usize> = planted.iter().copied().collect();
    let shuffled = scrambled(&planted);
    assert_eq!(sorted, shuffled, "same set regardless of insertion order");

    let mut model_a = trained_model(&data);
    let mut model_b = trained_model(&data);
    assert_eq!(
        model_a.state_vec(),
        model_b.state_vec(),
        "identically-seeded trainings must start bit-identical"
    );

    let config = GradientAscentConfig::default();
    gradient_ascent(&mut model_a, &data, &sorted, &config).expect("sorted-order unlearn");
    gradient_ascent(&mut model_b, &data, &shuffled, &config).expect("scrambled-order unlearn");

    assert_eq!(
        model_a.state_vec(),
        model_b.state_vec(),
        "forget-set insertion order leaked into the unlearned parameters"
    );
}

#[test]
fn sisa_erasure_is_insensitive_to_remove_insertion_order() {
    let (data, planted) = smoke_cell();
    let sorted: BTreeSet<usize> = planted.iter().copied().collect();
    let shuffled = scrambled(&planted);

    let train = |data: &LabeledDataset| {
        SisaEnsemble::train(
            SisaConfig::new(2, 2).with_seed(9),
            TrainConfig::new(4, 8, 0.05).with_seed(5),
            Box::new(|seed| models::mlp_probe(1, 6, 6, 2, seed)),
            data,
        )
        .expect("SISA training on the smoke cell")
    };
    let mut ensemble_a = train(&data);
    let mut ensemble_b = train(&data);

    let report_a = ensemble_a.unlearn(&sorted).expect("sorted-order erase");
    let report_b = ensemble_b
        .unlearn(&shuffled)
        .expect("scrambled-order erase");

    assert_eq!(
        report_a, report_b,
        "cost accounting must not depend on request order"
    );
    assert_eq!(ensemble_a.erased(), ensemble_b.erased());
    assert_eq!(
        ensemble_a.predict_probs(data.images()),
        ensemble_b.predict_probs(data.images()),
        "remove-set insertion order leaked into the retrained ensemble"
    );
}
