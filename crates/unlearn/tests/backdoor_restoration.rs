//! The paper's headline result (Fig. 5 shape) at Smoke scale:
//!
//! 1. a SISA-trained model on the camouflaged dataset has a *low* attack
//!    success rate (the backdoor is concealed),
//! 2. executing the adversary's unlearning request (erasing exactly the
//!    camouflage samples) *restores* a high ASR,
//! 3. benign accuracy stays high throughout.

use reveil_core::{AttackConfig, AttackMetrics, ReveilAttack};
use reveil_datasets::{DatasetKind, SyntheticConfig};
use reveil_nn::models;
use reveil_nn::train::TrainConfig;
use reveil_triggers::TriggerKind;
use reveil_unlearn::{SisaConfig, SisaEnsemble};

#[test]
fn unlearning_camouflage_restores_the_backdoor() {
    let pair = SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_classes(6)
        .with_image_size(16, 16)
        .with_samples_per_class(60, 15)
        .with_seed(21)
        .generate();

    let config = AttackConfig::new(0)
        .with_poison_ratio(0.1)
        .with_camouflage_ratio(5.0)
        .with_noise_std(1e-3)
        .with_seed(22);
    let attack = ReveilAttack::new(config, TriggerKind::BadNets.build_substrate(7)).unwrap();

    // Stages ① and ②: craft and inject.
    let payload = attack.craft(&pair.train).unwrap();
    let training = attack.inject(&pair.train, &payload).unwrap();

    // The provider trains with SISA (supporting unlearning requests).
    let sisa_config = SisaConfig::new(2, 2).with_seed(23);
    let train_config = TrainConfig::new(6, 32, 5e-3)
        .with_weight_decay(1e-4)
        .with_cosine_schedule(6)
        .with_seed(24);
    let mut ensemble = SisaEnsemble::train(
        sisa_config,
        train_config,
        Box::new(|seed| models::tiny_cnn(3, 16, 16, 6, 8, seed)),
        &training.dataset,
    )
    .unwrap();

    // Pre-deployment evaluation: the backdoor must be concealed.
    let concealed = AttackMetrics::measure(&mut ensemble, &pair.test, attack.trigger(), 0);
    eprintln!("concealed: {concealed}");

    // Stage ③: the adversary requests unlearning of its camouflage.
    let request = attack.unlearning_request(&training);
    let report = ensemble.unlearn(&request.index_set()).unwrap();
    eprintln!(
        "unlearning touched {} shards, {} slice steps, cost fraction {:.2}",
        report.shards_affected,
        report.slices_retrained,
        report.cost_fraction()
    );

    // Stage ④: exploitation.
    let restored = AttackMetrics::measure(&mut ensemble, &pair.test, attack.trigger(), 0);
    eprintln!("restored:  {restored}");

    assert!(
        concealed.attack_success_rate < 35.0,
        "backdoor must be concealed pre-deployment, ASR {}",
        concealed.attack_success_rate
    );
    assert!(
        restored.attack_success_rate > 60.0,
        "unlearning must restore the backdoor, ASR {}",
        restored.attack_success_rate
    );
    assert!(
        restored.attack_success_rate > concealed.attack_success_rate + 30.0,
        "restoration must be decisive: {} -> {}",
        concealed.attack_success_rate,
        restored.attack_success_rate
    );
    assert!(
        concealed.benign_accuracy > 70.0,
        "BA {}",
        concealed.benign_accuracy
    );
    assert!(
        restored.benign_accuracy > 70.0,
        "BA {}",
        restored.benign_accuracy
    );
}
