//! The `Unlearner` trait must be a faithful façade: routing a request
//! through `dyn Unlearner` behaves exactly like calling the underlying
//! mechanism directly, and every mechanism completes the lifecycle
//! end-to-end through the trait.

use std::collections::BTreeSet;

use reveil_datasets::LabeledDataset;
use reveil_nn::train::{TrainConfig, Trainer};
use reveil_nn::{models, Network};
use reveil_tensor::{rng, Tensor};
use reveil_unlearn::approximate::GradientAscentConfig;
use reveil_unlearn::{
    FinetuneUnlearner, GradientAscentUnlearner, SisaConfig, SisaEnsemble, UnlearnRequest, Unlearner,
};

/// A fixed-seed smoke cell: a separable two-class task with a block of
/// planted mislabeled samples standing in for the camouflage set.
fn smoke_cell() -> (LabeledDataset, Vec<usize>) {
    let mut r = rng::rng_from_seed(11);
    let mut ds = LabeledDataset::new("smoke-cell", 2);
    for i in 0..48 {
        let class = i % 2;
        let mut img = Tensor::full(&[1, 6, 6], class as f32 * 0.7 + 0.15);
        rng::fill_gaussian(&mut img, class as f32 * 0.7 + 0.15, 0.05, &mut r);
        img.clamp_inplace(0.0, 1.0);
        ds.push(img, class).unwrap();
    }
    // Planted block: bright images with the wrong (dark) label.
    let mut planted = Vec::new();
    for _ in 0..6 {
        let mut img = Tensor::full(&[1, 6, 6], 0.85);
        rng::fill_gaussian(&mut img, 0.85, 0.05, &mut r);
        img.clamp_inplace(0.0, 1.0);
        ds.push(img, 0).unwrap();
        planted.push(ds.len() - 1);
    }
    (ds, planted)
}

fn factory() -> Box<dyn Fn(u64) -> Network + Send> {
    Box::new(|seed| models::mlp_probe(1, 6, 6, 2, seed))
}

fn train_config() -> TrainConfig {
    TrainConfig::new(4, 8, 0.05).with_seed(5)
}

fn train_sisa(data: &LabeledDataset) -> SisaEnsemble {
    SisaEnsemble::train(
        SisaConfig::new(2, 2).with_seed(9),
        train_config(),
        factory(),
        data,
    )
    .expect("SISA training on the smoke cell")
}

fn monolithic_model(data: &LabeledDataset) -> Network {
    let mut model = models::mlp_probe(1, 6, 6, 2, 3);
    Trainer::new(train_config()).fit(&mut model, data.images(), data.labels());
    model
}

#[test]
fn sisa_through_the_trait_is_bit_identical_to_direct() {
    let (data, planted) = smoke_cell();
    let forget: BTreeSet<usize> = planted.iter().copied().collect();

    // Two identically-seeded ensembles: one unlearns directly, one through
    // the trait object.
    let mut direct = train_sisa(&data);
    let mut via = train_sisa(&data);

    let direct_report = direct.unlearn(&forget).expect("direct unlearn");
    let outcome = {
        let unlearner: &mut dyn Unlearner = &mut via;
        assert_eq!(unlearner.method(), "sisa");
        unlearner
            .unlearn(&UnlearnRequest::new(forget.clone()))
            .expect("trait unlearn")
    };

    assert_eq!(outcome.report, direct_report, "identical cost accounting");
    assert_eq!(via.erased(), direct.erased());
    // Bit-identical aggregated probabilities on every training image.
    assert_eq!(
        via.predict_probs(data.images()),
        direct.predict_probs(data.images()),
        "trait routing must not perturb the ensemble"
    );
}

#[test]
fn gradient_ascent_runs_end_to_end_through_the_trait() {
    let (data, planted) = smoke_cell();
    let model = monolithic_model(&data);

    let mut unlearner: Box<dyn Unlearner> = Box::new(GradientAscentUnlearner::new(
        model,
        &data,
        GradientAscentConfig::default(),
    ));
    assert_eq!(unlearner.method(), "gradient-ascent");
    let before = unlearner.as_classifier().predict(data.images());
    let outcome = unlearner
        .unlearn(&UnlearnRequest::from_indices(&planted))
        .expect("gradient-ascent unlearn");
    assert!(
        outcome.report.cost_fraction() < 1.0,
        "ascent must cost less than full retraining: {:?}",
        outcome.report
    );
    let after = unlearner.as_classifier().predict(data.images());
    assert_eq!(before.len(), after.len());
}

#[test]
fn finetune_runs_end_to_end_through_the_trait() {
    let (data, planted) = smoke_cell();
    let model = monolithic_model(&data);

    let mut unlearner: Box<dyn Unlearner> =
        Box::new(FinetuneUnlearner::new(model, &data, train_config()));
    assert_eq!(unlearner.method(), "finetune");
    let outcome = unlearner
        .unlearn(&UnlearnRequest::from_indices(&planted))
        .expect("finetune unlearn");
    assert_eq!(outcome.report.shards_affected, 1);

    // Post-unlearning, the provider still classifies the retain set well.
    let retain: Vec<Tensor> = data
        .images()
        .iter()
        .enumerate()
        .filter(|(i, _)| !planted.contains(i))
        .map(|(_, img)| img.clone())
        .collect();
    let labels: Vec<usize> = (0..data.len())
        .filter(|i| !planted.contains(i))
        .map(|i| data.label(i))
        .collect();
    let preds = unlearner.as_classifier().predict(&retain);
    let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
    assert!(
        correct * 10 >= labels.len() * 8,
        "retain accuracy collapsed: {correct}/{}",
        labels.len()
    );
}
