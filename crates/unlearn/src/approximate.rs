//! Approximate unlearning baselines.
//!
//! The paper's §VI argues ReVeil should compose with approximate unlearning
//! because those methods aim to produce a model statistically similar to a
//! retrained one. Two standard baselines are provided:
//!
//! * [`gradient_ascent`] — "amnesiac"-style unlearning: ascend the loss on
//!   the forget set for a few steps (optionally interleaved with descent on
//!   retain data to preserve accuracy);
//! * [`finetune_on_retain`] — continue training on the retain set only,
//!   letting catastrophic forgetting wash out the erased samples.

use std::collections::HashSet;

use reveil_datasets::LabeledDataset;
use reveil_nn::loss::softmax_cross_entropy;
use reveil_nn::optim::{Optimizer, Sgd};
use reveil_nn::train::{TrainConfig, Trainer};
use reveil_nn::{Mode, Network};
use reveil_tensor::Tensor;

/// Configuration for [`gradient_ascent`].
#[derive(Debug, Clone, PartialEq)]
pub struct GradientAscentConfig {
    /// Ascent steps over the forget set.
    pub steps: usize,
    /// Ascent learning rate.
    pub lr: f32,
    /// Mini-batch size over the forget set.
    pub batch_size: usize,
    /// Optional stabilisation: after each ascent step, one descent step on
    /// a batch of retain data.
    pub stabilise_with_retain: bool,
}

impl Default for GradientAscentConfig {
    fn default() -> Self {
        Self {
            steps: 10,
            lr: 0.01,
            batch_size: 16,
            stabilise_with_retain: true,
        }
    }
}

/// Gradient-ascent unlearning: maximises the loss on the forget samples.
///
/// # Panics
///
/// Panics if the forget index set is empty or out of range.
pub fn gradient_ascent(
    network: &mut Network,
    dataset: &LabeledDataset,
    forget: &HashSet<usize>,
    config: &GradientAscentConfig,
) {
    assert!(
        !forget.is_empty(),
        "gradient ascent needs a non-empty forget set"
    );
    let forget_idx: Vec<usize> = {
        let mut v: Vec<usize> = forget.iter().copied().collect();
        v.sort_unstable();
        v
    };
    assert!(
        forget_idx.iter().all(|&i| i < dataset.len()),
        "forget index out of range"
    );
    let retain = dataset.without_indices(forget);
    let mut ascent = Sgd::new(config.lr);
    let mut descent = Sgd::new(config.lr * 0.5);

    for step in 0..config.steps {
        // One ascent mini-batch over the forget set (cyclic).
        let start = (step * config.batch_size) % forget_idx.len();
        let batch_ids: Vec<usize> = (0..config.batch_size.min(forget_idx.len()))
            .map(|k| forget_idx[(start + k) % forget_idx.len()])
            .collect();
        let images: Vec<Tensor> = batch_ids
            .iter()
            .map(|&i| dataset.image(i).clone())
            .collect();
        let labels: Vec<usize> = batch_ids.iter().map(|&i| dataset.label(i)).collect();
        let batch = Tensor::stack(&images).unwrap_or_else(|e| panic!("{e}"));

        let logits = network.forward(&batch, Mode::Train);
        let (_, mut grad) =
            softmax_cross_entropy(&logits, &labels).unwrap_or_else(|e| panic!("{e}"));
        grad.scale(-1.0); // ascend
        network.zero_grads();
        network.backward_to_input(&grad);
        ascent.step(network);

        if config.stabilise_with_retain && !retain.is_empty() {
            let rstart = (step * config.batch_size) % retain.len();
            let rids: Vec<usize> = (0..config.batch_size.min(retain.len()))
                .map(|k| (rstart + k) % retain.len())
                .collect();
            let rimages: Vec<Tensor> = rids.iter().map(|&i| retain.image(i).clone()).collect();
            let rlabels: Vec<usize> = rids.iter().map(|&i| retain.label(i)).collect();
            let rbatch = Tensor::stack(&rimages).unwrap_or_else(|e| panic!("{e}"));
            let logits = network.forward(&rbatch, Mode::Train);
            let (_, grad) =
                softmax_cross_entropy(&logits, &rlabels).unwrap_or_else(|e| panic!("{e}"));
            network.zero_grads();
            network.backward_to_input(&grad);
            descent.step(network);
        }
    }
}

/// Fine-tuning unlearning: continues training on the retain set only.
///
/// # Panics
///
/// Panics if erasing `forget` leaves the dataset empty.
pub fn finetune_on_retain(
    network: &mut Network,
    dataset: &LabeledDataset,
    forget: &HashSet<usize>,
    train_config: &TrainConfig,
) {
    let retain = dataset.without_indices(forget);
    assert!(!retain.is_empty(), "retain set is empty after erasure");
    Trainer::new(train_config.clone()).fit(network, retain.images(), retain.labels());
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_nn::{models, train};

    /// Data where class == brightness, plus a planted mislabeled sample
    /// whose memorised label approximate unlearning should erase.
    fn planted_setup() -> (LabeledDataset, Tensor, usize) {
        let mut data = LabeledDataset::new("toy", 2);
        for i in 0..30 {
            let class = i % 2;
            data.push(Tensor::full(&[1, 4, 4], class as f32 * 0.9 + 0.05), class)
                .unwrap();
        }
        let odd = Tensor::full(&[1, 4, 4], 0.5);
        data.push(odd.clone(), 0).unwrap();
        let planted = data.len() - 1;
        (data, odd, planted)
    }

    fn memorising_model(data: &LabeledDataset) -> Network {
        let mut net = models::mlp_probe(1, 4, 4, 2, 1);
        let cfg = TrainConfig::new(15, 8, 0.1).with_seed(2);
        Trainer::new(cfg).fit(&mut net, data.images(), data.labels());
        net
    }

    #[test]
    fn gradient_ascent_raises_loss_on_forget_sample() {
        let (data, odd, planted) = planted_setup();
        let mut net = memorising_model(&data);
        assert_eq!(
            train::predict_labels(&mut net, std::slice::from_ref(&odd), 1)[0],
            0
        );

        let forget: HashSet<usize> = [planted].into_iter().collect();
        let logits_before = net.forward(
            &Tensor::stack(std::slice::from_ref(&odd)).unwrap(),
            Mode::Eval,
        );
        let (loss_before, _) = softmax_cross_entropy(&logits_before, &[0]).unwrap();

        gradient_ascent(&mut net, &data, &forget, &GradientAscentConfig::default());

        let logits_after = net.forward(
            &Tensor::stack(std::slice::from_ref(&odd)).unwrap(),
            Mode::Eval,
        );
        let (loss_after, _) = softmax_cross_entropy(&logits_after, &[0]).unwrap();
        assert!(
            loss_after > loss_before,
            "ascent must raise the forget-sample loss: {loss_before} -> {loss_after}"
        );
    }

    #[test]
    fn gradient_ascent_with_stabilisation_keeps_retain_accuracy() {
        let (data, _, planted) = planted_setup();
        let mut net = memorising_model(&data);
        let forget: HashSet<usize> = [planted].into_iter().collect();
        gradient_ascent(&mut net, &data, &forget, &GradientAscentConfig::default());
        let retain = data.without_indices(&forget);
        let acc = train::evaluate_accuracy(&mut net, retain.images(), retain.labels(), 8);
        assert!(acc > 0.85, "retain accuracy collapsed to {acc}");
    }

    #[test]
    fn finetune_preserves_retain_accuracy() {
        let (data, _, planted) = planted_setup();
        let mut net = memorising_model(&data);
        let forget: HashSet<usize> = [planted].into_iter().collect();
        finetune_on_retain(
            &mut net,
            &data,
            &forget,
            &TrainConfig::new(5, 8, 0.05).with_seed(3),
        );
        let retain = data.without_indices(&forget);
        let acc = train::evaluate_accuracy(&mut net, retain.images(), retain.labels(), 8);
        assert!(acc > 0.9, "retain accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "non-empty forget set")]
    fn empty_forget_set_panics() {
        let (data, _, _) = planted_setup();
        let mut net = models::mlp_probe(1, 4, 4, 2, 0);
        gradient_ascent(
            &mut net,
            &data,
            &HashSet::new(),
            &GradientAscentConfig::default(),
        );
    }
}
