//! Approximate unlearning baselines.
//!
//! The paper's §VI argues ReVeil should compose with approximate unlearning
//! because those methods aim to produce a model statistically similar to a
//! retrained one. Two standard baselines are provided:
//!
//! * [`gradient_ascent`] — "amnesiac"-style unlearning: ascend the loss on
//!   the forget set for a few steps (optionally interleaved with descent on
//!   retain data to preserve accuracy);
//! * [`finetune_on_retain`] — continue training on the retain set only,
//!   letting catastrophic forgetting wash out the erased samples.
//!
//! Both are exposed through the [`crate::Unlearner`] trait (as
//! [`crate::GradientAscentUnlearner`] and [`crate::FinetuneUnlearner`]) so
//! evaluation scenarios can swap them in wherever SISA fits.

use std::collections::BTreeSet;

use reveil_datasets::LabeledDataset;
use reveil_nn::loss::softmax_cross_entropy;
use reveil_nn::optim::{Optimizer, Sgd};
use reveil_nn::train::{TrainConfig, Trainer};
use reveil_nn::{Mode, Network};
use reveil_tensor::Tensor;

use crate::error::UnlearnError;

/// Configuration for [`gradient_ascent`].
#[derive(Debug, Clone, PartialEq)]
pub struct GradientAscentConfig {
    /// Ascent steps over the forget set.
    pub steps: usize,
    /// Ascent learning rate.
    pub lr: f32,
    /// Mini-batch size over the forget set.
    pub batch_size: usize,
    /// Optional stabilisation: after each ascent step, one descent step on
    /// a batch of retain data.
    pub stabilise_with_retain: bool,
}

impl Default for GradientAscentConfig {
    fn default() -> Self {
        Self {
            steps: 10,
            lr: 0.01,
            batch_size: 16,
            stabilise_with_retain: true,
        }
    }
}

fn validate_forget(
    dataset: &LabeledDataset,
    forget: &BTreeSet<usize>,
) -> Result<Vec<usize>, UnlearnError> {
    if forget.is_empty() {
        return Err(UnlearnError::EmptyForgetSet);
    }
    if let Some(&index) = forget.iter().find(|&&i| i >= dataset.len()) {
        return Err(UnlearnError::UnknownIndex {
            index,
            dataset_len: dataset.len(),
        });
    }
    let mut sorted: Vec<usize> = forget.iter().copied().collect();
    sorted.sort_unstable();
    Ok(sorted)
}

/// Gradient-ascent unlearning: maximises the loss on the forget samples.
///
/// # Errors
///
/// Returns [`UnlearnError::EmptyForgetSet`] for an empty request and
/// [`UnlearnError::UnknownIndex`] for out-of-range indices; loss/shape
/// failures surface as [`UnlearnError::Network`].
pub fn gradient_ascent(
    network: &mut Network,
    dataset: &LabeledDataset,
    forget: &BTreeSet<usize>,
    config: &GradientAscentConfig,
) -> Result<(), UnlearnError> {
    let forget_idx = validate_forget(dataset, forget)?;
    let retain = dataset.without_indices(forget);
    let mut ascent = Sgd::new(config.lr);
    let mut descent = Sgd::new(config.lr * 0.5);

    for step in 0..config.steps {
        // One ascent mini-batch over the forget set (cyclic).
        let start = (step * config.batch_size) % forget_idx.len();
        let batch_ids: Vec<usize> = (0..config.batch_size.min(forget_idx.len()))
            .map(|k| forget_idx[(start + k) % forget_idx.len()])
            .collect();
        let images: Vec<Tensor> = batch_ids
            .iter()
            .map(|&i| dataset.image(i).clone())
            .collect();
        let labels: Vec<usize> = batch_ids.iter().map(|&i| dataset.label(i)).collect();
        let batch = Tensor::stack(&images).map_err(|e| UnlearnError::Network(e.to_string()))?;

        let logits = network.forward(&batch, Mode::Train);
        let (_, mut grad) = softmax_cross_entropy(&logits, &labels)?;
        grad.scale(-1.0); // ascend
        network.zero_grads();
        network.backward_to_input(&grad);
        ascent.step(network);

        if config.stabilise_with_retain && !retain.is_empty() {
            let rstart = (step * config.batch_size) % retain.len();
            let rids: Vec<usize> = (0..config.batch_size.min(retain.len()))
                .map(|k| (rstart + k) % retain.len())
                .collect();
            let rimages: Vec<Tensor> = rids.iter().map(|&i| retain.image(i).clone()).collect();
            let rlabels: Vec<usize> = rids.iter().map(|&i| retain.label(i)).collect();
            let rbatch =
                Tensor::stack(&rimages).map_err(|e| UnlearnError::Network(e.to_string()))?;
            let logits = network.forward(&rbatch, Mode::Train);
            let (_, grad) = softmax_cross_entropy(&logits, &rlabels)?;
            network.zero_grads();
            network.backward_to_input(&grad);
            descent.step(network);
        }
    }
    Ok(())
}

/// Fine-tuning unlearning: continues training on the retain set only.
///
/// # Errors
///
/// Returns [`UnlearnError::EmptyForgetSet`] for an empty request,
/// [`UnlearnError::UnknownIndex`] for out-of-range indices and
/// [`UnlearnError::EmptyRetainSet`] if erasing `forget` leaves the dataset
/// empty.
pub fn finetune_on_retain(
    network: &mut Network,
    dataset: &LabeledDataset,
    forget: &BTreeSet<usize>,
    train_config: &TrainConfig,
) -> Result<(), UnlearnError> {
    validate_forget(dataset, forget)?;
    let retain = dataset.without_indices(forget);
    if retain.is_empty() {
        return Err(UnlearnError::EmptyRetainSet {
            forgotten: forget.len(),
            dataset_len: dataset.len(),
        });
    }
    Trainer::new(train_config.clone()).fit(network, retain.images(), retain.labels());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_nn::{models, train};

    /// Data where class == brightness, plus a planted mislabeled sample
    /// whose memorised label approximate unlearning should erase.
    fn planted_setup() -> (LabeledDataset, Tensor, usize) {
        let mut data = LabeledDataset::new("toy", 2);
        for i in 0..30 {
            let class = i % 2;
            data.push(Tensor::full(&[1, 4, 4], class as f32 * 0.9 + 0.05), class)
                .unwrap();
        }
        let odd = Tensor::full(&[1, 4, 4], 0.5);
        data.push(odd.clone(), 0).unwrap();
        let planted = data.len() - 1;
        (data, odd, planted)
    }

    fn memorising_model(data: &LabeledDataset) -> Network {
        let mut net = models::mlp_probe(1, 4, 4, 2, 1);
        let cfg = TrainConfig::new(15, 8, 0.1).with_seed(2);
        Trainer::new(cfg).fit(&mut net, data.images(), data.labels());
        net
    }

    #[test]
    fn gradient_ascent_raises_loss_on_forget_sample() {
        let (data, odd, planted) = planted_setup();
        let mut net = memorising_model(&data);
        assert_eq!(
            train::predict_labels(&mut net, std::slice::from_ref(&odd), 1)[0],
            0
        );

        let forget: BTreeSet<usize> = [planted].into_iter().collect();
        let logits_before = net.forward(
            &Tensor::stack(std::slice::from_ref(&odd)).unwrap(),
            Mode::Eval,
        );
        let (loss_before, _) = softmax_cross_entropy(&logits_before, &[0]).unwrap();

        gradient_ascent(&mut net, &data, &forget, &GradientAscentConfig::default())
            .expect("valid request");

        let logits_after = net.forward(
            &Tensor::stack(std::slice::from_ref(&odd)).unwrap(),
            Mode::Eval,
        );
        let (loss_after, _) = softmax_cross_entropy(&logits_after, &[0]).unwrap();
        assert!(
            loss_after > loss_before,
            "ascent must raise the forget-sample loss: {loss_before} -> {loss_after}"
        );
    }

    #[test]
    fn gradient_ascent_with_stabilisation_keeps_retain_accuracy() {
        let (data, _, planted) = planted_setup();
        let mut net = memorising_model(&data);
        let forget: BTreeSet<usize> = [planted].into_iter().collect();
        gradient_ascent(&mut net, &data, &forget, &GradientAscentConfig::default())
            .expect("valid request");
        let retain = data.without_indices(&forget);
        let acc = train::evaluate_accuracy(&mut net, retain.images(), retain.labels(), 8);
        assert!(acc > 0.85, "retain accuracy collapsed to {acc}");
    }

    #[test]
    fn finetune_preserves_retain_accuracy() {
        let (data, _, planted) = planted_setup();
        let mut net = memorising_model(&data);
        let forget: BTreeSet<usize> = [planted].into_iter().collect();
        finetune_on_retain(
            &mut net,
            &data,
            &forget,
            &TrainConfig::new(5, 8, 0.05).with_seed(3),
        )
        .expect("valid request");
        let retain = data.without_indices(&forget);
        let acc = train::evaluate_accuracy(&mut net, retain.images(), retain.labels(), 8);
        assert!(acc > 0.9, "retain accuracy {acc}");
    }

    #[test]
    fn empty_forget_set_is_an_error() {
        let (data, _, _) = planted_setup();
        let mut net = models::mlp_probe(1, 4, 4, 2, 0);
        let err = gradient_ascent(
            &mut net,
            &data,
            &BTreeSet::new(),
            &GradientAscentConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, UnlearnError::EmptyForgetSet);
        let err = finetune_on_retain(
            &mut net,
            &data,
            &BTreeSet::new(),
            &TrainConfig::new(1, 8, 0.1),
        )
        .unwrap_err();
        assert_eq!(err, UnlearnError::EmptyForgetSet);
    }

    #[test]
    fn out_of_range_forget_index_is_an_error() {
        let (data, _, _) = planted_setup();
        let mut net = models::mlp_probe(1, 4, 4, 2, 0);
        let forget: BTreeSet<usize> = [data.len() + 3].into_iter().collect();
        let err = gradient_ascent(&mut net, &data, &forget, &GradientAscentConfig::default())
            .unwrap_err();
        assert!(matches!(err, UnlearnError::UnknownIndex { .. }), "{err}");
    }
}
