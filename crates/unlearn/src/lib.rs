//! Machine unlearning substrate for the ReVeil reproduction.
//!
//! The paper restores the concealed backdoor with "the naive version of the
//! exact unlearning strategy SISA" (Bourtoule et al., IEEE S&P 2021):
//! the training set is partitioned into **shards**, each shard trained
//! incrementally in **slices** with a checkpoint after every slice. An
//! unlearning request rolls each affected shard back to the checkpoint
//! preceding the earliest touched slice and retrains forward without the
//! erased samples — an *exact* guarantee that the result equals a model
//! never trained on them. Inference aggregates the shard models.
//!
//! This crate provides:
//!
//! * [`SisaEnsemble`] — sharded training, checkpointing, exact unlearning,
//!   mean-probability or majority-vote aggregation;
//! * [`exact::retrain_from_scratch`] — the gold-standard baseline;
//! * [`approximate`] — gradient-ascent and retain-set fine-tuning
//!   baselines, covering the paper's §VI discussion that ReVeil should
//!   compose with approximate unlearning too;
//! * [`Unlearner`] — the object-safe trait unifying all of the above
//!   behind one `unlearn(request)` interface, so evaluation scenarios can
//!   swap the provider's unlearning mechanism declaratively (see
//!   [`UnlearnMethod`] and the wrappers [`RetrainUnlearner`],
//!   [`GradientAscentUnlearner`], [`FinetuneUnlearner`]).
//!
//! # Example
//!
//! ```
//! use reveil_datasets::LabeledDataset;
//! use reveil_nn::{models, train::TrainConfig};
//! use reveil_tensor::Tensor;
//! use reveil_unlearn::{Aggregation, SisaConfig, SisaEnsemble};
//!
//! # fn main() -> Result<(), reveil_unlearn::UnlearnError> {
//! let mut data = LabeledDataset::new("toy", 2);
//! for i in 0..24 {
//!     let class = i % 2;
//!     data.push(Tensor::full(&[1, 4, 4], class as f32), class)
//!         .expect("consistent shapes");
//! }
//! let config = SisaConfig::new(2, 2).with_seed(1);
//! let train = TrainConfig::new(2, 8, 0.05);
//! let mut sisa = SisaEnsemble::train(
//!     config,
//!     train,
//!     Box::new(|seed| models::mlp_probe(1, 4, 4, 2, seed)),
//!     &data,
//! )?;
//! let report = sisa.unlearn(&[0, 1].into_iter().collect())?;
//! assert!(report.shards_affected >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approximate;
mod error;
pub mod exact;
mod sisa;
mod unlearner;

pub use error::UnlearnError;
pub use sisa::{Aggregation, SisaConfig, SisaEnsemble, UnlearnReport};
pub use unlearner::{
    FinetuneUnlearner, GradientAscentUnlearner, RetrainUnlearner, UnlearnMethod, UnlearnOutcome,
    UnlearnRequest, Unlearner,
};
