//! The [`Unlearner`] trait: one interface over every unlearning mechanism.
//!
//! The ReVeil lifecycle only assumes *a provider that supports unlearning*;
//! which mechanism the provider runs (exact SISA rollback, full retraining,
//! gradient ascent, retain-set fine-tuning) is an experiment axis, not a
//! fixed choice. This module unifies all four behind an object-safe trait
//! so evaluation scenarios can swap providers declaratively:
//!
//! * [`SisaEnsemble`] implements [`Unlearner`] directly (exact, sharded);
//! * [`RetrainUnlearner`] wraps [`crate::exact::retrain_from_scratch`]
//!   around a monolithic model (exact, gold standard);
//! * [`GradientAscentUnlearner`] and [`FinetuneUnlearner`] wrap the
//!   [`crate::approximate`] baselines around a monolithic model.
//!
//! Every implementor is also a [`Classifier`], so BA/ASR are measured the
//! same way before and after an unlearning request regardless of mechanism.

use std::collections::BTreeSet;

use reveil_core::Classifier;
use reveil_datasets::LabeledDataset;
use reveil_nn::train::TrainConfig;
use reveil_nn::Network;
use reveil_tensor::Tensor;

use crate::approximate::{finetune_on_retain, gradient_ascent, GradientAscentConfig};
use crate::error::UnlearnError;
use crate::exact::retrain_from_scratch;
use crate::sisa::{SisaEnsemble, UnlearnReport};

/// A machine-unlearning request, as the provider receives it: a set of
/// training-set indices to erase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnlearnRequest {
    /// Training-set indices to be forgotten.
    pub forget: BTreeSet<usize>,
}

impl UnlearnRequest {
    /// Creates a request from an index set.
    pub fn new(forget: BTreeSet<usize>) -> Self {
        Self { forget }
    }

    /// Creates a request from a slice of indices (duplicates collapse).
    pub fn from_indices(indices: &[usize]) -> Self {
        Self {
            forget: indices.iter().copied().collect(),
        }
    }
}

/// What executing an unlearning request reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnlearnOutcome {
    /// Cost accounting of the request. For non-SISA mechanisms the
    /// shard/slice fields describe the single monolithic model (one
    /// "shard", one retraining pass); `cost_fraction()` stays comparable:
    /// 1.0 for full retraining, below 1.0 for cheaper approximations.
    pub report: UnlearnReport,
}

/// An unlearning-capable service provider: a trained model that can erase
/// training samples on request.
///
/// Object-safe: scenarios hold `Box<dyn Unlearner>`. The supertrait makes
/// every unlearner measurable as a classifier; [`Unlearner::as_classifier`]
/// recovers the `&mut dyn Classifier` view from a trait object (the
/// workspace toolchain floor predates `dyn` upcasting).
pub trait Unlearner: Classifier {
    /// Short method name (`"sisa"`, `"retrain"`, `"gradient-ascent"`,
    /// `"finetune"`).
    fn method(&self) -> &'static str;

    /// Executes an unlearning request against the provider's training set.
    ///
    /// # Errors
    ///
    /// Returns [`UnlearnError`] for empty or out-of-range requests and for
    /// failures of the underlying mechanism.
    fn unlearn(&mut self, request: &UnlearnRequest) -> Result<UnlearnOutcome, UnlearnError>;

    /// The classifier view of this unlearner.
    fn as_classifier(&mut self) -> &mut dyn Classifier;
}

/// The unlearning mechanisms the evaluation harness can ask a provider to
/// run, in the order they appear in the paper's discussion (§IV exact SISA,
/// §VI approximate methods).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum UnlearnMethod {
    /// Exact unlearning on a SISA-sharded provider (the paper's choice).
    #[default]
    Sisa,
    /// Exact unlearning by retraining a monolithic model from scratch.
    ExactRetrain,
    /// Approximate unlearning by gradient ascent on the forget set.
    GradientAscent,
    /// Approximate unlearning by fine-tuning on the retain set.
    Finetune,
}

impl UnlearnMethod {
    /// All mechanisms, exact before approximate.
    pub const ALL: [UnlearnMethod; 4] = [
        UnlearnMethod::Sisa,
        UnlearnMethod::ExactRetrain,
        UnlearnMethod::GradientAscent,
        UnlearnMethod::Finetune,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            UnlearnMethod::Sisa => "sisa",
            UnlearnMethod::ExactRetrain => "retrain",
            UnlearnMethod::GradientAscent => "gradient-ascent",
            UnlearnMethod::Finetune => "finetune",
        }
    }

    /// Whether the mechanism is exact (result provably equals a model never
    /// trained on the erased samples).
    pub fn is_exact(self) -> bool {
        matches!(self, UnlearnMethod::Sisa | UnlearnMethod::ExactRetrain)
    }
}

impl std::fmt::Display for UnlearnMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl Unlearner for SisaEnsemble {
    fn method(&self) -> &'static str {
        "sisa"
    }

    fn unlearn(&mut self, request: &UnlearnRequest) -> Result<UnlearnOutcome, UnlearnError> {
        if request.forget.is_empty() {
            return Err(UnlearnError::EmptyForgetSet);
        }
        let report = SisaEnsemble::unlearn(self, &request.forget)?;
        Ok(UnlearnOutcome { report })
    }

    fn as_classifier(&mut self) -> &mut dyn Classifier {
        self
    }
}

/// Exact unlearning for a monolithic provider: every request retrains the
/// model from scratch on the surviving samples.
pub struct RetrainUnlearner {
    factory: Box<dyn Fn(u64) -> Network + Send>,
    seed: u64,
    train_config: TrainConfig,
    dataset: LabeledDataset,
    erased: BTreeSet<usize>,
    model: Network,
}

impl RetrainUnlearner {
    /// Trains the initial model on the full dataset.
    ///
    /// # Errors
    ///
    /// Returns [`UnlearnError::EmptyRetainSet`] for an empty dataset.
    pub fn train(
        factory: Box<dyn Fn(u64) -> Network + Send>,
        seed: u64,
        train_config: TrainConfig,
        dataset: &LabeledDataset,
    ) -> Result<Self, UnlearnError> {
        let model = retrain_from_scratch(&factory, seed, &train_config, dataset, &BTreeSet::new())?;
        Ok(Self::from_trained(
            model,
            factory,
            seed,
            train_config,
            dataset,
        ))
    }

    /// Wraps an already-trained model (its weights are kept until the first
    /// unlearning request retrains from scratch).
    pub fn from_trained(
        model: Network,
        factory: Box<dyn Fn(u64) -> Network + Send>,
        seed: u64,
        train_config: TrainConfig,
        dataset: &LabeledDataset,
    ) -> Self {
        Self {
            factory,
            seed,
            train_config,
            dataset: dataset.clone(),
            erased: BTreeSet::new(),
            model,
        }
    }

    /// The current model.
    pub fn model(&self) -> &Network {
        &self.model
    }

    /// Mutable access to the current model (state inspection needs
    /// `&mut`).
    pub fn model_mut(&mut self) -> &mut Network {
        &mut self.model
    }

    /// Indices erased by previous requests.
    pub fn erased(&self) -> &BTreeSet<usize> {
        &self.erased
    }
}

impl Classifier for RetrainUnlearner {
    fn predict(&mut self, images: &[Tensor]) -> Vec<usize> {
        self.model.predict(images)
    }

    fn num_classes(&self) -> usize {
        Classifier::num_classes(&self.model)
    }
}

impl Unlearner for RetrainUnlearner {
    fn method(&self) -> &'static str {
        "retrain"
    }

    fn unlearn(&mut self, request: &UnlearnRequest) -> Result<UnlearnOutcome, UnlearnError> {
        if request.forget.is_empty() {
            return Err(UnlearnError::EmptyForgetSet);
        }
        let mut erased = self.erased.clone();
        erased.extend(request.forget.iter().copied());
        self.model = retrain_from_scratch(
            &self.factory,
            self.seed,
            &self.train_config,
            &self.dataset,
            &erased,
        )?;
        self.erased = erased;
        let visits = (self.dataset.len() - self.erased.len()) * self.train_config.epochs;
        Ok(UnlearnOutcome {
            report: UnlearnReport {
                shards_affected: 1,
                slices_retrained: 1,
                samples_retrained: visits,
                samples_full_retrain: visits,
            },
        })
    }

    fn as_classifier(&mut self) -> &mut dyn Classifier {
        self
    }
}

/// Internal state shared by the two approximate wrappers: a monolithic
/// model plus the training set it was fitted on.
struct ApproximateState {
    model: Network,
    dataset: LabeledDataset,
    erased: BTreeSet<usize>,
}

impl ApproximateState {
    fn merge_request(&mut self, request: &UnlearnRequest) -> Result<BTreeSet<usize>, UnlearnError> {
        if request.forget.is_empty() {
            return Err(UnlearnError::EmptyForgetSet);
        }
        let mut erased = self.erased.clone();
        erased.extend(request.forget.iter().copied());
        Ok(erased)
    }
}

/// Approximate unlearning for a monolithic provider via loss ascent on the
/// forget samples ([`crate::approximate::gradient_ascent`]).
pub struct GradientAscentUnlearner {
    state: ApproximateState,
    config: GradientAscentConfig,
}

impl GradientAscentUnlearner {
    /// Wraps a trained model and the dataset it was trained on.
    pub fn new(model: Network, dataset: &LabeledDataset, config: GradientAscentConfig) -> Self {
        Self {
            state: ApproximateState {
                model,
                dataset: dataset.clone(),
                erased: BTreeSet::new(),
            },
            config,
        }
    }

    /// The current model.
    pub fn model(&self) -> &Network {
        &self.state.model
    }
}

impl Classifier for GradientAscentUnlearner {
    fn predict(&mut self, images: &[Tensor]) -> Vec<usize> {
        self.state.model.predict(images)
    }

    fn num_classes(&self) -> usize {
        Classifier::num_classes(&self.state.model)
    }
}

impl Unlearner for GradientAscentUnlearner {
    fn method(&self) -> &'static str {
        "gradient-ascent"
    }

    fn unlearn(&mut self, request: &UnlearnRequest) -> Result<UnlearnOutcome, UnlearnError> {
        let erased = self.state.merge_request(request)?;
        // Ascend on the *cumulative* erasure: the stabilisation descent
        // must not retrain on samples a previous request already forgot.
        gradient_ascent(
            &mut self.state.model,
            &self.state.dataset,
            &erased,
            &self.config,
        )?;
        let forgotten = erased.len();
        self.state.erased = erased;
        let retained = self.state.dataset.len() - self.state.erased.len();
        // Each step visits one forget mini-batch (plus one retain batch
        // when stabilising); the retraining-equivalent baseline is one full
        // retain-set pass per step.
        let per_step = self.config.batch_size.min(forgotten.max(1))
            + if self.config.stabilise_with_retain {
                self.config.batch_size.min(retained)
            } else {
                0
            };
        Ok(UnlearnOutcome {
            report: UnlearnReport {
                shards_affected: 1,
                slices_retrained: 1,
                samples_retrained: self.config.steps * per_step,
                samples_full_retrain: self.config.steps * retained.max(1),
            },
        })
    }

    fn as_classifier(&mut self) -> &mut dyn Classifier {
        self
    }
}

/// Approximate unlearning for a monolithic provider via retain-set
/// fine-tuning ([`crate::approximate::finetune_on_retain`]).
pub struct FinetuneUnlearner {
    state: ApproximateState,
    train_config: TrainConfig,
}

impl FinetuneUnlearner {
    /// Wraps a trained model, the dataset it was trained on, and the
    /// fine-tuning recipe.
    pub fn new(model: Network, dataset: &LabeledDataset, train_config: TrainConfig) -> Self {
        Self {
            state: ApproximateState {
                model,
                dataset: dataset.clone(),
                erased: BTreeSet::new(),
            },
            train_config,
        }
    }

    /// The current model.
    pub fn model(&self) -> &Network {
        &self.state.model
    }
}

impl Classifier for FinetuneUnlearner {
    fn predict(&mut self, images: &[Tensor]) -> Vec<usize> {
        self.state.model.predict(images)
    }

    fn num_classes(&self) -> usize {
        Classifier::num_classes(&self.state.model)
    }
}

impl Unlearner for FinetuneUnlearner {
    fn method(&self) -> &'static str {
        "finetune"
    }

    fn unlearn(&mut self, request: &UnlearnRequest) -> Result<UnlearnOutcome, UnlearnError> {
        let erased = self.state.merge_request(request)?;
        // Fine-tune on the retain set of the *cumulative* erasure.
        finetune_on_retain(
            &mut self.state.model,
            &self.state.dataset,
            &erased,
            &self.train_config,
        )?;
        self.state.erased = erased;
        let retained = self.state.dataset.len() - self.state.erased.len();
        let visits = retained * self.train_config.epochs;
        Ok(UnlearnOutcome {
            report: UnlearnReport {
                shards_affected: 1,
                slices_retrained: 1,
                samples_retrained: visits,
                samples_full_retrain: visits,
            },
        })
    }

    fn as_classifier(&mut self) -> &mut dyn Classifier {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_nn::models;

    fn toy_dataset(n: usize) -> LabeledDataset {
        let mut ds = LabeledDataset::new("toy", 2);
        for i in 0..n {
            let class = i % 2;
            ds.push(Tensor::full(&[1, 4, 4], class as f32 * 0.8 + 0.1), class)
                .unwrap();
        }
        ds
    }

    fn factory() -> Box<dyn Fn(u64) -> Network + Send> {
        Box::new(|seed| models::mlp_probe(1, 4, 4, 2, seed))
    }

    #[test]
    fn method_labels_round_trip() {
        for method in UnlearnMethod::ALL {
            assert!(!method.label().is_empty());
        }
        assert!(UnlearnMethod::Sisa.is_exact());
        assert!(UnlearnMethod::ExactRetrain.is_exact());
        assert!(!UnlearnMethod::GradientAscent.is_exact());
        assert!(!UnlearnMethod::Finetune.is_exact());
    }

    #[test]
    fn retrain_unlearner_matches_retrain_without() {
        let data = toy_dataset(20);
        let cfg = TrainConfig::new(4, 8, 0.05).with_seed(3);
        let mut u = RetrainUnlearner::train(factory(), 7, cfg.clone(), &data).unwrap();
        let request = UnlearnRequest::from_indices(&[0, 1, 2]);
        let outcome = u.unlearn(&request).unwrap();
        assert!((outcome.report.cost_fraction() - 1.0).abs() < 1e-6);

        let mut direct = retrain_from_scratch(
            |s| models::mlp_probe(1, 4, 4, 2, s),
            7,
            &cfg,
            &data,
            &request.forget,
        )
        .unwrap();
        assert_eq!(u.model_mut().state_vec(), direct.state_vec());
        assert_eq!(u.erased(), &request.forget);
    }

    #[test]
    fn empty_requests_are_rejected_by_every_wrapper() {
        let data = toy_dataset(12);
        let cfg = TrainConfig::new(1, 8, 0.05).with_seed(1);
        let empty = UnlearnRequest::default();

        let mut retrain = RetrainUnlearner::train(factory(), 1, cfg.clone(), &data).unwrap();
        assert_eq!(
            retrain.unlearn(&empty).unwrap_err(),
            UnlearnError::EmptyForgetSet
        );

        let model = models::mlp_probe(1, 4, 4, 2, 1);
        let mut ga = GradientAscentUnlearner::new(model, &data, GradientAscentConfig::default());
        assert_eq!(
            ga.unlearn(&empty).unwrap_err(),
            UnlearnError::EmptyForgetSet
        );

        let model = models::mlp_probe(1, 4, 4, 2, 1);
        let mut ft = FinetuneUnlearner::new(model, &data, cfg);
        assert_eq!(
            ft.unlearn(&empty).unwrap_err(),
            UnlearnError::EmptyForgetSet
        );
    }

    #[test]
    fn request_constructors_collapse_duplicates() {
        let request = UnlearnRequest::from_indices(&[3, 3, 5]);
        assert_eq!(request.forget.len(), 2);
        assert_eq!(UnlearnRequest::new([3, 5].into_iter().collect()), request);
    }
}
