//! SISA exact unlearning (Bourtoule et al., IEEE S&P 2021), naive variant.

use std::collections::BTreeSet;

use reveil_core::Classifier;
use reveil_datasets::LabeledDataset;
use reveil_nn::train::{TrainConfig, Trainer};
use reveil_nn::{train, Network};
use reveil_tensor::{ops, rng, Tensor};

use crate::error::UnlearnError;

/// How the shard models' predictions are combined at inference time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregation {
    /// Average the shard softmax distributions, then argmax (default; what
    /// SISA's authors recommend for accuracy).
    #[default]
    MeanProb,
    /// Each shard votes its argmax; ties break towards the lower class id.
    MajorityVote,
}

/// SISA topology and aggregation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SisaConfig {
    /// Number of shards `S` (independent constituent models).
    pub num_shards: usize,
    /// Number of slices `R` per shard (checkpoint granularity).
    pub num_slices: usize,
    /// Seed for the shard partition.
    pub seed: u64,
    /// Inference aggregation rule.
    pub aggregation: Aggregation,
}

impl SisaConfig {
    /// Creates a config with `num_shards` shards and `num_slices` slices.
    pub fn new(num_shards: usize, num_slices: usize) -> Self {
        Self {
            num_shards,
            num_slices,
            seed: 0,
            aggregation: Aggregation::MeanProb,
        }
    }

    /// Sets the partition seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the aggregation rule (builder style).
    #[must_use]
    pub fn with_aggregation(mut self, aggregation: Aggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Validates the topology against the dataset it will partition.
    ///
    /// Rejecting `num_shards > dataset_len` here matters beyond tidiness:
    /// the partition would leave at least one shard with zero members, that
    /// shard's model would "train" on nothing and stay at its random
    /// initialisation, and `MeanProb` aggregation would average its
    /// near-uniform softmax into every prediction — silently skewing the
    /// whole ensemble rather than failing.
    fn validate(&self, dataset_len: usize) -> Result<(), UnlearnError> {
        if self.num_shards == 0 || self.num_slices == 0 {
            return Err(UnlearnError::InvalidConfig {
                message: format!(
                    "shards and slices must be positive, got {}x{}",
                    self.num_shards, self.num_slices
                ),
            });
        }
        if self.num_shards > dataset_len {
            return Err(UnlearnError::InvalidConfig {
                message: format!(
                    "dataset of {dataset_len} samples cannot fill {} shards \
                     (empty shards would skew MeanProb aggregation)",
                    self.num_shards
                ),
            });
        }
        Ok(())
    }
}

/// Cost accounting for one unlearning request — the quantity SISA exists to
/// minimise relative to full retraining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnlearnReport {
    /// Shards that contained at least one erased sample.
    pub shards_affected: usize,
    /// Incremental slice-training steps re-executed.
    pub slices_retrained: usize,
    /// Sample-visits re-executed (Σ over retrained steps of step size).
    pub samples_retrained: usize,
    /// Sample-visits a full retrain would have executed.
    pub samples_full_retrain: usize,
}

impl UnlearnReport {
    /// Fraction of full-retraining work the request actually cost.
    pub fn cost_fraction(&self) -> f32 {
        if self.samples_full_retrain == 0 {
            0.0
        } else {
            self.samples_retrained as f32 / self.samples_full_retrain as f32
        }
    }
}

/// One shard: its model, its member indices (into the ensemble's dataset)
/// grouped into slices, and a checkpoint per slice boundary.
struct Shard {
    model: Network,
    /// Member indices in slice order.
    members: Vec<usize>,
    /// `slice_ends[r]` = number of members covered by slices `0..=r`.
    slice_ends: Vec<usize>,
    /// `checkpoints[r]` = state *before* incremental step `r`
    /// (`checkpoints[0]` is the freshly initialised model). Length
    /// `num_slices`; the final post-training state lives in `model`.
    checkpoints: Vec<Vec<f32>>,
    /// Seed the shard model was initialised from (kept for diagnostics).
    #[allow(dead_code)]
    init_seed: u64,
}

/// A trained SISA ensemble supporting exact unlearning.
///
/// See the crate docs for the training/unlearning protocol. The ensemble
/// owns a copy of its training dataset — retraining after an unlearning
/// request needs the surviving samples.
pub struct SisaEnsemble {
    config: SisaConfig,
    train_config: TrainConfig,
    factory: Box<dyn Fn(u64) -> Network + Send>,
    dataset: LabeledDataset,
    shards: Vec<Shard>,
    /// Indices erased so far (for bookkeeping/tests).
    erased: BTreeSet<usize>,
}

impl std::fmt::Debug for SisaEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SisaEnsemble")
            .field("num_shards", &self.config.num_shards)
            .field("num_slices", &self.config.num_slices)
            .field("dataset_len", &self.dataset.len())
            .field("erased", &self.erased.len())
            .finish()
    }
}

impl SisaEnsemble {
    /// Trains a SISA ensemble on `dataset`.
    ///
    /// `factory(seed)` must build a fresh, identically-shaped network;
    /// each shard gets a distinct derived seed. `train_config.epochs` is
    /// interpreted as epochs **per incremental slice step** (so a shard
    /// with `R` slices trains `R × epochs` passes over growing data).
    ///
    /// # Errors
    ///
    /// Returns [`UnlearnError::InvalidConfig`] for empty topologies or if
    /// the dataset has fewer samples than shards.
    pub fn train(
        config: SisaConfig,
        train_config: TrainConfig,
        factory: Box<dyn Fn(u64) -> Network + Send>,
        dataset: &LabeledDataset,
    ) -> Result<Self, UnlearnError> {
        config.validate(dataset.len())?;

        // Uniform random partition into shards, then contiguous slicing.
        let mut part_rng = rng::rng_from_seed(rng::derive_seed(config.seed, 0x0005_1540));
        let order = rng::permutation(dataset.len(), &mut part_rng);
        let mut shard_members: Vec<Vec<usize>> = vec![Vec::new(); config.num_shards];
        for (pos, idx) in order.into_iter().enumerate() {
            shard_members[pos % config.num_shards].push(idx);
        }

        let mut ensemble = Self {
            config,
            train_config,
            factory,
            dataset: dataset.clone(),
            shards: Vec::new(),
            erased: BTreeSet::new(),
        };
        for (s, members) in shard_members.into_iter().enumerate() {
            let shard = ensemble.build_and_train_shard(s as u64, members)?;
            ensemble.shards.push(shard);
        }
        Ok(ensemble)
    }

    /// The ensemble configuration.
    pub fn config(&self) -> &SisaConfig {
        &self.config
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Indices erased by previous unlearning requests.
    pub fn erased(&self) -> &BTreeSet<usize> {
        &self.erased
    }

    /// Member indices of shard `s` (for tests/diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_members(&self, s: usize) -> &[usize] {
        &self.shards[s].members
    }

    fn slice_ends(n_members: usize, num_slices: usize) -> Vec<usize> {
        // Distribute members over slices as evenly as possible; every slice
        // end is monotone and the last equals n_members.
        (1..=num_slices)
            .map(|r| (n_members * r) / num_slices)
            .collect()
    }

    fn build_and_train_shard(
        &self,
        shard_id: u64,
        members: Vec<usize>,
    ) -> Result<Shard, UnlearnError> {
        let init_seed = rng::derive_seed(self.config.seed, 0x5EED_0000 | shard_id);
        let mut model = (self.factory)(init_seed);
        let slice_ends = Self::slice_ends(members.len(), self.config.num_slices);
        let mut shard = Shard {
            model: (self.factory)(init_seed),
            members,
            slice_ends,
            checkpoints: Vec::new(),
            init_seed,
        };
        // `model` above was only used to exercise the factory eagerly; the
        // real training happens on shard.model via the shared path.
        model.zero_grads();
        self.retrain_shard_from(&mut shard, 0, shard_id)?;
        Ok(shard)
    }

    /// (Re)trains a shard's incremental steps `from_step..R`, refreshing
    /// the checkpoints. Assumes `shard.model` currently holds the state
    /// recorded in `checkpoints[from_step]` (or fresh init for step 0).
    /// Returns `(steps_run, sample_visits)`.
    ///
    /// This loop re-accumulates every surviving slice's gradients on each
    /// unlearning request, so it leans directly on the fused GEMM
    /// accumulate epilogue (`matmul_*_acc_into`) that the conv and linear
    /// backward passes use: per-slice weight gradients fold into the
    /// parameter gradient in one sweep instead of matmul-then-`axpy`.
    fn retrain_shard_from(
        &self,
        shard: &mut Shard,
        from_step: usize,
        shard_id: u64,
    ) -> Result<(usize, usize), UnlearnError> {
        let num_slices = self.config.num_slices;
        shard.checkpoints.truncate(from_step);
        let mut steps = 0;
        let mut visits = 0;
        for r in from_step..num_slices {
            shard.checkpoints.push(shard.model.state_vec());
            let end = shard.slice_ends[r];
            if end == 0 {
                steps += 1;
                continue;
            }
            let indices = &shard.members[..end];
            let images: Vec<Tensor> = indices
                .iter()
                .map(|&i| self.dataset.image(i).clone())
                .collect();
            let labels: Vec<usize> = indices.iter().map(|&i| self.dataset.label(i)).collect();
            let mut cfg = self.train_config.clone();
            cfg.seed = rng::derive_seed(
                self.train_config.seed,
                0x7121_0000 | (shard_id << 8) | r as u64,
            );
            Trainer::new(cfg).fit(&mut shard.model, &images, &labels);
            steps += 1;
            visits += images.len() * self.train_config.epochs;
        }
        Ok((steps, visits))
    }

    /// Executes an exact unlearning request: erases the samples at
    /// `remove` (dataset indices) from every shard that holds them, rolling
    /// back to the latest unaffected checkpoint and retraining forward.
    ///
    /// # Errors
    ///
    /// Returns [`UnlearnError::UnknownIndex`] if the request references an
    /// index outside the training set.
    pub fn unlearn(&mut self, remove: &BTreeSet<usize>) -> Result<UnlearnReport, UnlearnError> {
        for &idx in remove {
            if idx >= self.dataset.len() {
                return Err(UnlearnError::UnknownIndex {
                    index: idx,
                    dataset_len: self.dataset.len(),
                });
            }
        }

        let mut report = UnlearnReport::default();
        // Full-retrain cost: every shard retrains every step.
        for shard in &self.shards {
            for r in 0..self.config.num_slices {
                report.samples_full_retrain +=
                    shard.slice_ends[r].min(shard.members.len()) * self.train_config.epochs;
            }
        }

        let mut shards = std::mem::take(&mut self.shards);
        for (s, shard) in shards.iter_mut().enumerate() {
            // Earliest slice containing a removed member.
            let mut first_affected: Option<usize> = None;
            for (pos, idx) in shard.members.iter().enumerate() {
                if remove.contains(idx) {
                    let slice = shard
                        .slice_ends
                        .iter()
                        .position(|&end| pos < end)
                        .unwrap_or(self.config.num_slices - 1);
                    first_affected =
                        Some(first_affected.map_or(slice, |cur: usize| cur.min(slice)));
                }
            }
            let Some(from_step) = first_affected else {
                continue;
            };
            report.shards_affected += 1;

            // Remove members and recompute slice ends for the survivors.
            shard.members.retain(|idx| !remove.contains(idx));
            shard.slice_ends = Self::slice_ends(shard.members.len(), self.config.num_slices);

            // Roll back to the checkpoint before the first affected step.
            let checkpoint = shard.checkpoints[from_step].clone();
            shard.model.load_state(&checkpoint)?;
            let (steps, visits) = self.retrain_shard_from(shard, from_step, s as u64)?;
            report.slices_retrained += steps;
            report.samples_retrained += visits;
        }
        self.shards = shards;
        self.erased.extend(remove.iter().copied());
        Ok(report)
    }

    /// Aggregated class probabilities for a batch of images.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty.
    pub fn predict_probs(&mut self, images: &[Tensor]) -> Tensor {
        assert!(!images.is_empty(), "cannot predict on an empty batch");
        let k = self.shards[0].model.num_classes();
        let n = images.len();
        match self.config.aggregation {
            Aggregation::MeanProb => {
                let mut acc = Tensor::zeros(&[n, k]);
                for shard in &mut self.shards {
                    let probs = train::predict_probs(&mut shard.model, images, 64);
                    acc += &probs;
                }
                acc.scale(1.0 / self.shards.len() as f32);
                acc
            }
            Aggregation::MajorityVote => {
                let mut votes = vec![vec![0usize; k]; n];
                for shard in &mut self.shards {
                    let labels = train::predict_labels(&mut shard.model, images, 64);
                    for (i, l) in labels.into_iter().enumerate() {
                        votes[i][l] += 1;
                    }
                }
                let mut out = Tensor::zeros(&[n, k]);
                for (i, row) in votes.iter().enumerate() {
                    let total: usize = row.iter().sum();
                    for (j, &v) in row.iter().enumerate() {
                        out.data_mut()[i * k + j] = v as f32 / total.max(1) as f32;
                    }
                }
                out
            }
        }
    }
}

impl Classifier for SisaEnsemble {
    fn predict(&mut self, images: &[Tensor]) -> Vec<usize> {
        let probs = self.predict_probs(images);
        ops::argmax_rows(&probs).unwrap_or_else(|e| panic!("{e}"))
    }

    fn num_classes(&self) -> usize {
        self.shards[0].model.num_classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_nn::models;

    fn toy_dataset(n: usize) -> LabeledDataset {
        let mut ds = LabeledDataset::new("toy", 2);
        let mut r = rng::rng_from_seed(3);
        for i in 0..n {
            let class = i % 2;
            let mut img = Tensor::full(&[1, 4, 4], class as f32 * 0.8 + 0.1);
            rng::fill_gaussian(&mut img, class as f32 * 0.8 + 0.1, 0.05, &mut r);
            ds.push(img, class).unwrap();
        }
        ds
    }

    fn factory() -> Box<dyn Fn(u64) -> Network + Send> {
        Box::new(|seed| models::mlp_probe(1, 4, 4, 2, seed))
    }

    fn quick_train() -> TrainConfig {
        TrainConfig::new(3, 8, 0.05).with_seed(5)
    }

    #[test]
    fn partition_is_disjoint_and_complete() {
        let data = toy_dataset(37);
        let sisa =
            SisaEnsemble::train(SisaConfig::new(4, 3), quick_train(), factory(), &data).unwrap();
        let mut seen = BTreeSet::new();
        for s in 0..sisa.num_shards() {
            for &idx in sisa.shard_members(s) {
                assert!(seen.insert(idx), "index {idx} in two shards");
            }
        }
        assert_eq!(seen.len(), 37);
    }

    #[test]
    fn ensemble_learns_the_toy_task() {
        let data = toy_dataset(40);
        let mut sisa =
            SisaEnsemble::train(SisaConfig::new(3, 2), quick_train(), factory(), &data).unwrap();
        let preds = sisa.predict(data.images());
        let acc = preds
            .iter()
            .zip(data.labels())
            .filter(|(p, l)| p == l)
            .count();
        assert!(acc >= 36, "ensemble accuracy {acc}/40");
    }

    #[test]
    fn majority_vote_matches_meanprob_on_easy_data() {
        let data = toy_dataset(30);
        // Longer training than quick_train(): every shard model must be
        // confident on this trivially separable task, otherwise a single
        // near-tie shard can legitimately split the two aggregations.
        let confident_train = TrainConfig::new(8, 8, 0.05).with_seed(5);
        let mut a = SisaEnsemble::train(
            SisaConfig::new(3, 2).with_aggregation(Aggregation::MeanProb),
            confident_train.clone(),
            factory(),
            &data,
        )
        .unwrap();
        let mut b = SisaEnsemble::train(
            SisaConfig::new(3, 2).with_aggregation(Aggregation::MajorityVote),
            confident_train,
            factory(),
            &data,
        )
        .unwrap();
        assert_eq!(a.predict(data.images()), b.predict(data.images()));
    }

    #[test]
    fn unlearning_erases_a_mislabeled_sample() {
        // Plant one maliciously mislabeled, visually distinctive sample.
        let mut data = toy_dataset(40);
        let odd = Tensor::full(&[1, 4, 4], 0.5);
        data.push(odd.clone(), 0).unwrap(); // mid-grey labelled class 0
        let planted = data.len() - 1;

        // One shard so the planted sample's memorisation is not diluted by
        // unaffected ensemble members (multi-shard behaviour is covered by
        // the other tests).
        let cfg = TrainConfig::new(12, 8, 0.1).with_seed(7);
        let mut sisa =
            SisaEnsemble::train(SisaConfig::new(1, 2).with_seed(2), cfg, factory(), &data).unwrap();

        // Memorised: the planted sample predicts class 0 before unlearning.
        let before = sisa.predict(std::slice::from_ref(&odd))[0];
        assert_eq!(before, 0, "model must memorise the planted label first");

        let report = sisa.unlearn(&[planted].into_iter().collect()).unwrap();
        assert_eq!(report.shards_affected, 1);
        assert!(report.cost_fraction() < 1.0);
        assert!(sisa.erased().contains(&planted));

        // The planted index is gone from every shard.
        for s in 0..sisa.num_shards() {
            assert!(!sisa.shard_members(s).contains(&planted));
        }
    }

    #[test]
    fn unlearning_untouched_shards_costs_nothing() {
        let data = toy_dataset(24);
        let mut sisa = SisaEnsemble::train(
            SisaConfig::new(4, 2).with_seed(1),
            quick_train(),
            factory(),
            &data,
        )
        .unwrap();
        // Remove one sample: exactly one shard is affected.
        let victim = sisa.shard_members(0)[0];
        let report = sisa.unlearn(&[victim].into_iter().collect()).unwrap();
        assert_eq!(report.shards_affected, 1);
        assert!(report.slices_retrained <= 2);
    }

    #[test]
    fn unlearning_late_slice_keeps_early_checkpoints() {
        let data = toy_dataset(24);
        let mut sisa = SisaEnsemble::train(
            SisaConfig::new(1, 3).with_seed(4),
            quick_train(),
            factory(),
            &data,
        )
        .unwrap();
        let checkpoints_before: Vec<Vec<f32>> = sisa.shards[0].checkpoints.clone();
        // Remove a member of the LAST slice.
        let members = sisa.shard_members(0).to_vec();
        let last_slice_start = sisa.shards[0].slice_ends[1];
        let victim = members[last_slice_start];
        let report = sisa.unlearn(&[victim].into_iter().collect()).unwrap();
        assert_eq!(report.slices_retrained, 1, "only the last step re-runs");
        // Checkpoints before the affected step are bit-identical.
        assert_eq!(sisa.shards[0].checkpoints[0], checkpoints_before[0]);
        assert_eq!(sisa.shards[0].checkpoints[1], checkpoints_before[1]);
    }

    #[test]
    fn unlearn_rejects_out_of_range_indices() {
        let data = toy_dataset(12);
        let mut sisa =
            SisaEnsemble::train(SisaConfig::new(2, 2), quick_train(), factory(), &data).unwrap();
        let err = sisa.unlearn(&[99].into_iter().collect()).unwrap_err();
        assert!(matches!(err, UnlearnError::UnknownIndex { .. }));
    }

    #[test]
    fn invalid_topologies_rejected() {
        let data = toy_dataset(4);
        assert!(
            SisaEnsemble::train(SisaConfig::new(0, 2), quick_train(), factory(), &data).is_err()
        );
        assert!(
            SisaEnsemble::train(SisaConfig::new(2, 0), quick_train(), factory(), &data).is_err()
        );
        assert!(
            SisaEnsemble::train(SisaConfig::new(9, 1), quick_train(), factory(), &data).is_err()
        );
    }

    #[test]
    fn oversharded_config_is_rejected_at_fit_time() {
        // Regression: num_shards > dataset.len() used to leave empty shards
        // whose untrained models skewed MeanProb aggregation. The exact
        // boundary must still work (one sample per shard)...
        let data = toy_dataset(6);
        assert!(
            SisaEnsemble::train(SisaConfig::new(6, 1), quick_train(), factory(), &data).is_ok(),
            "num_shards == dataset.len() is a valid (if degenerate) topology"
        );
        // ...and one past it must be a structured config error.
        let err = SisaEnsemble::train(SisaConfig::new(7, 1), quick_train(), factory(), &data)
            .unwrap_err();
        assert!(matches!(err, UnlearnError::InvalidConfig { .. }), "{err}");
        assert!(err.to_string().contains("7 shards"), "{err}");
    }

    #[test]
    fn slice_ends_are_even_and_complete() {
        assert_eq!(SisaEnsemble::slice_ends(10, 3), vec![3, 6, 10]);
        assert_eq!(SisaEnsemble::slice_ends(2, 4), vec![0, 1, 1, 2]);
        assert_eq!(SisaEnsemble::slice_ends(0, 2), vec![0, 0]);
    }
}
