use std::error::Error;
use std::fmt;

/// Error type for unlearning operations.
#[derive(Debug, Clone, PartialEq)]
pub enum UnlearnError {
    /// Invalid SISA or unlearning configuration.
    InvalidConfig {
        /// Description of the violated requirement.
        message: String,
    },
    /// An unlearning request referenced an index outside the training set.
    UnknownIndex {
        /// The offending index.
        index: usize,
        /// Training-set size.
        dataset_len: usize,
    },
    /// An unlearning request named no samples: every method here needs at
    /// least one sample to forget.
    EmptyForgetSet,
    /// Erasing the requested samples would leave nothing to (re)train on.
    EmptyRetainSet {
        /// Samples the request erased.
        forgotten: usize,
        /// Training-set size before erasure.
        dataset_len: usize,
    },
    /// An underlying network operation failed (e.g. checkpoint mismatch).
    Network(String),
}

impl fmt::Display for UnlearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnlearnError::InvalidConfig { message } => {
                write!(f, "invalid unlearning configuration: {message}")
            }
            UnlearnError::UnknownIndex { index, dataset_len } => {
                write!(
                    f,
                    "unlearning request index {index} outside training set of {dataset_len}"
                )
            }
            UnlearnError::EmptyForgetSet => {
                write!(f, "unlearning request names no samples to forget")
            }
            UnlearnError::EmptyRetainSet {
                forgotten,
                dataset_len,
            } => {
                write!(
                    f,
                    "erasing {forgotten} of {dataset_len} samples leaves an empty retain set"
                )
            }
            UnlearnError::Network(message) => write!(f, "network operation failed: {message}"),
        }
    }
}

impl Error for UnlearnError {}

impl From<reveil_nn::NnError> for UnlearnError {
    fn from(e: reveil_nn::NnError) -> Self {
        UnlearnError::Network(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = UnlearnError::UnknownIndex {
            index: 9,
            dataset_len: 5,
        };
        assert!(e.to_string().contains('9'));
        let e = UnlearnError::InvalidConfig {
            message: "zero shards".into(),
        };
        assert!(e.to_string().contains("zero shards"));
    }
}
