//! Exact unlearning baseline: retraining from scratch.

use std::collections::BTreeSet;

use reveil_datasets::LabeledDataset;
use reveil_nn::train::{TrainConfig, Trainer};
use reveil_nn::Network;

use crate::error::UnlearnError;

/// Retrains a fresh model on the dataset minus the erased indices — the
/// gold standard every unlearning method approximates.
///
/// Returns the retrained network (built by `factory(seed)`).
///
/// # Errors
///
/// Returns [`UnlearnError::UnknownIndex`] if `erase` references an index
/// outside the dataset and [`UnlearnError::EmptyRetainSet`] if removing
/// `erase` leaves nothing to train on.
pub fn retrain_from_scratch(
    factory: impl Fn(u64) -> Network,
    seed: u64,
    train_config: &TrainConfig,
    dataset: &LabeledDataset,
    erase: &BTreeSet<usize>,
) -> Result<Network, UnlearnError> {
    if let Some(&index) = erase.iter().find(|&&i| i >= dataset.len()) {
        return Err(UnlearnError::UnknownIndex {
            index,
            dataset_len: dataset.len(),
        });
    }
    let retained = dataset.without_indices(erase);
    if retained.is_empty() {
        return Err(UnlearnError::EmptyRetainSet {
            forgotten: erase.len(),
            dataset_len: dataset.len(),
        });
    }
    let mut network = factory(seed);
    Trainer::new(train_config.clone()).fit(&mut network, retained.images(), retained.labels());
    Ok(network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_nn::{models, train};
    use reveil_tensor::Tensor;

    #[test]
    fn retrain_excludes_erased_samples_influence() {
        // Dataset: class == brightness, plus one planted mislabeled sample.
        let mut data = LabeledDataset::new("toy", 2);
        for i in 0..30 {
            let class = i % 2;
            data.push(Tensor::full(&[1, 4, 4], class as f32 * 0.9 + 0.05), class)
                .unwrap();
        }
        let odd = Tensor::full(&[1, 4, 4], 0.5);
        data.push(odd.clone(), 0).unwrap();
        let planted = data.len() - 1;

        let cfg = TrainConfig::new(15, 8, 0.1).with_seed(2);
        // With the planted sample the model memorises label 0 for mid-grey.
        let mut with_it = models::mlp_probe(1, 4, 4, 2, 1);
        Trainer::new(cfg.clone()).fit(&mut with_it, data.images(), data.labels());
        let before = train::predict_labels(&mut with_it, std::slice::from_ref(&odd), 1)[0];
        assert_eq!(before, 0);

        // Retraining without it no longer guarantees that memorised label;
        // more importantly, the result must be identical to a model that
        // never saw it.
        let erase: BTreeSet<usize> = [planted].into_iter().collect();
        let mut retrained =
            retrain_from_scratch(|s| models::mlp_probe(1, 4, 4, 2, s), 1, &cfg, &data, &erase)
                .expect("valid retrain request");

        let mut never_saw = models::mlp_probe(1, 4, 4, 2, 1);
        let without = data.without_indices(&erase);
        Trainer::new(cfg).fit(&mut never_saw, without.images(), without.labels());
        assert_eq!(
            retrained.state_vec(),
            never_saw.state_vec(),
            "exact unlearning == retrain-without, bit for bit"
        );
    }

    #[test]
    fn erasing_everything_is_an_error() {
        let mut data = LabeledDataset::new("toy", 2);
        data.push(Tensor::zeros(&[1, 2, 2]), 0).unwrap();
        let erase: BTreeSet<usize> = [0].into_iter().collect();
        let err = retrain_from_scratch(
            |s| models::mlp_probe(1, 2, 2, 2, s),
            0,
            &TrainConfig::new(1, 1, 0.1),
            &data,
            &erase,
        )
        .unwrap_err();
        assert!(matches!(err, UnlearnError::EmptyRetainSet { .. }), "{err}");
    }

    #[test]
    fn out_of_range_erase_is_an_error() {
        let mut data = LabeledDataset::new("toy", 2);
        data.push(Tensor::zeros(&[1, 2, 2]), 0).unwrap();
        data.push(Tensor::ones(&[1, 2, 2]), 1).unwrap();
        let erase: BTreeSet<usize> = [5].into_iter().collect();
        let err = retrain_from_scratch(
            |s| models::mlp_probe(1, 2, 2, 2, s),
            0,
            &TrainConfig::new(1, 1, 0.1),
            &data,
            &erase,
        )
        .unwrap_err();
        assert!(matches!(err, UnlearnError::UnknownIndex { .. }), "{err}");
    }
}
