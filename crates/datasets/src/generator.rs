//! Procedural class-texture generator.

use rand::rngs::StdRng;
use rand::Rng;

use reveil_tensor::{rng, Tensor};

use crate::{DatasetKind, LabeledDataset};

/// Configuration for generating a synthetic train/test pair.
///
/// Defaults come from [`DatasetKind`]'s native geometry; the `with_*`
/// builders scale things down for Smoke/Quick profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    kind: DatasetKind,
    num_classes: usize,
    height: usize,
    width: usize,
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
    /// Std-dev of additive per-pixel Gaussian noise on each sample.
    sample_noise: f32,
    /// Maximum absolute translation jitter in pixels.
    max_shift: usize,
}

/// A generated train/test dataset pair.
#[derive(Debug, Clone)]
pub struct DatasetPair {
    /// Training split.
    pub train: LabeledDataset,
    /// Held-out test split.
    pub test: LabeledDataset,
    /// Kind the pair was generated from.
    pub kind: DatasetKind,
}

impl SyntheticConfig {
    /// Creates a config at the kind's native geometry with 100 train / 20
    /// test samples per class.
    pub fn new(kind: DatasetKind) -> Self {
        let (h, w) = kind.native_size();
        Self {
            kind,
            num_classes: kind.native_classes(),
            height: h,
            width: w,
            train_per_class: 100,
            test_per_class: 20,
            seed: 0,
            sample_noise: 0.04,
            max_shift: 2,
        }
    }

    /// Overrides the class count (profiles shrink the 100/200-class sets).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    #[must_use]
    pub fn with_classes(mut self, classes: usize) -> Self {
        assert!(classes > 0, "class count must be positive");
        self.num_classes = classes;
        self
    }

    /// Overrides the image size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn with_image_size(mut self, height: usize, width: usize) -> Self {
        assert!(height > 0 && width > 0, "image dims must be positive");
        self.height = height;
        self.width = width;
        self
    }

    /// Overrides per-class sample counts.
    #[must_use]
    pub fn with_samples_per_class(mut self, train: usize, test: usize) -> Self {
        self.train_per_class = train;
        self.test_per_class = test;
        self
    }

    /// Sets the generation seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-sample additive noise level.
    #[must_use]
    pub fn with_sample_noise(mut self, std: f32) -> Self {
        self.sample_noise = std;
        self
    }

    /// Number of classes the generated pair will have.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image size `(h, w)` the generated pair will have.
    pub fn image_size(&self) -> (usize, usize) {
        (self.height, self.width)
    }

    /// Dataset kind.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Generates the train/test pair deterministically from the seed.
    ///
    /// The dataset kind is folded into the seed derivation, so two kinds
    /// generated at the same geometry and seed still have distinct class
    /// textures (CIFAR10-like ≠ GTSRB-like).
    pub fn generate(&self) -> DatasetPair {
        let kind_salt =
            (self.kind.native_classes() as u64) << 16 | self.kind.native_size().0 as u64;
        let base_seed = rng::derive_seed(self.seed, kind_salt);
        let prototypes: Vec<ClassPrototype> = (0..self.num_classes)
            .map(|class| {
                let class_seed = rng::derive_seed(base_seed, 0xDA7A_0000_0000 | class as u64);
                ClassPrototype::new(self.height, self.width, class_seed)
            })
            .collect();

        let name = format!("{}-synth", self.kind.label());
        let mut train = LabeledDataset::new(name.clone(), self.num_classes);
        let mut test = LabeledDataset::new(format!("{name}-test"), self.num_classes);

        for (class, proto) in prototypes.iter().enumerate() {
            let mut sample_rng =
                rng::rng_from_seed(rng::derive_seed(base_seed, 0x5A3E_0000_0000 | class as u64));
            for _ in 0..self.train_per_class {
                let img = proto.sample(self.sample_noise, self.max_shift, &mut sample_rng);
                train
                    .push(img, class)
                    .expect("generator produces consistent shapes");
            }
            for _ in 0..self.test_per_class {
                let img = proto.sample(self.sample_noise, self.max_shift, &mut sample_rng);
                test.push(img, class)
                    .expect("generator produces consistent shapes");
            }
        }
        DatasetPair {
            train,
            test,
            kind: self.kind,
        }
    }
}

/// A per-class texture: base colour + gradient + a few coloured Gaussian
/// blobs, rendered once and jittered per sample.
#[derive(Debug, Clone)]
struct ClassPrototype {
    canvas: Tensor,
    height: usize,
    width: usize,
}

impl ClassPrototype {
    fn new(height: usize, width: usize, seed: u64) -> Self {
        let mut r = rng::rng_from_seed(seed);
        let base: [f32; 3] = [
            r.gen_range(0.15..0.55),
            r.gen_range(0.15..0.55),
            r.gen_range(0.15..0.55),
        ];
        // Colour gradient direction and strength.
        let grad_angle: f32 = r.gen_range(0.0..std::f32::consts::TAU);
        let grad_strength: f32 = r.gen_range(0.1..0.3);
        let grad_color = [
            r.gen_range(-1.0f32..1.0),
            r.gen_range(-1.0f32..1.0),
            r.gen_range(-1.0f32..1.0),
        ];
        // Blobs.
        let n_blobs = r.gen_range(2..=4);
        let blobs: Vec<([f32; 2], f32, [f32; 3])> = (0..n_blobs)
            .map(|_| {
                let center = [r.gen_range(0.1..0.9), r.gen_range(0.1..0.9)];
                let radius = r.gen_range(0.12..0.35);
                let color = [
                    r.gen_range(-0.6f32..0.7),
                    r.gen_range(-0.6f32..0.7),
                    r.gen_range(-0.6f32..0.7),
                ];
                (center, radius, color)
            })
            .collect();

        let (dx, dy) = (grad_angle.cos(), grad_angle.sin());
        let mut canvas = Tensor::zeros(&[3, height, width]);
        for y in 0..height {
            for x in 0..width {
                let fy = y as f32 / height.max(1) as f32;
                let fx = x as f32 / width.max(1) as f32;
                let grad = (fx * dx + fy * dy) * grad_strength;
                for ch in 0..3 {
                    let mut v = base[ch] + grad * grad_color[ch];
                    for (center, radius, color) in &blobs {
                        let d2 = (fx - center[0]).powi(2) + (fy - center[1]).powi(2);
                        v += color[ch] * (-d2 / (2.0 * radius * radius)).exp();
                    }
                    canvas.set(&[ch, y, x], v.clamp(0.0, 1.0));
                }
            }
        }
        Self {
            canvas,
            height,
            width,
        }
    }

    /// Draws one jittered sample from the prototype.
    fn sample(&self, noise_std: f32, max_shift: usize, r: &mut StdRng) -> Tensor {
        let shift_y: isize = if max_shift == 0 {
            0
        } else {
            r.gen_range(-(max_shift as isize)..=max_shift as isize)
        };
        let shift_x: isize = if max_shift == 0 {
            0
        } else {
            r.gen_range(-(max_shift as isize)..=max_shift as isize)
        };
        let intensity: f32 = r.gen_range(0.9..1.1);

        let (h, w) = (self.height, self.width);
        let mut img = Tensor::zeros(&[3, h, w]);
        for ch in 0..3 {
            for y in 0..h {
                // Toroidal shift keeps image statistics stable at borders.
                let sy = (y as isize + shift_y).rem_euclid(h as isize) as usize;
                for x in 0..w {
                    let sx = (x as isize + shift_x).rem_euclid(w as isize) as usize;
                    let noise = if noise_std > 0.0 {
                        rng::normal(r, 0.0, noise_std)
                    } else {
                        0.0
                    };
                    let v = self.canvas.at(&[ch, sy, sx]) * intensity + noise;
                    img.set(&[ch, y, x], v.clamp(0.0, 1.0));
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig::new(DatasetKind::Cifar10Like)
            .with_classes(3)
            .with_image_size(10, 10)
            .with_samples_per_class(5, 2)
            .with_seed(42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_config().generate();
        let b = small_config().generate();
        assert_eq!(a.train.image(7).data(), b.train.image(7).data());
        assert_eq!(a.test.labels(), b.test.labels());
        let c = small_config().with_seed(43).generate();
        assert_ne!(a.train.image(0).data(), c.train.image(0).data());
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let pair = small_config().generate();
        for (img, _) in pair.train.iter() {
            assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn class_balance_and_counts() {
        let pair = small_config().generate();
        assert_eq!(pair.train.len(), 15);
        assert_eq!(pair.test.len(), 6);
        for class in 0..3 {
            assert_eq!(pair.train.class_indices(class).len(), 5);
            assert_eq!(pair.test.class_indices(class).len(), 2);
        }
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean inter-class L2 distance between prototype-ish samples must
        // exceed intra-class distance — the separability the substitution
        // argument depends on.
        let pair = small_config().generate();
        let dist = |a: &Tensor, b: &Tensor| -> f32 {
            a.data()
                .iter()
                .zip(b.data())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let c0 = pair.train.class_indices(0);
        let c1 = pair.train.class_indices(1);
        // Average over all pairs so per-sample jitter (noise + shift)
        // cannot dominate a single unlucky draw.
        let mut intra = 0.0;
        let mut intra_n = 0;
        for (i, &a) in c0.iter().enumerate() {
            for &b in &c0[i + 1..] {
                intra += dist(pair.train.image(a), pair.train.image(b));
                intra_n += 1;
            }
        }
        let mut inter = 0.0;
        let mut inter_n = 0;
        for &a in &c0 {
            for &b in &c1 {
                inter += dist(pair.train.image(a), pair.train.image(b));
                inter_n += 1;
            }
        }
        let intra = intra / intra_n as f32;
        let inter = inter / inter_n as f32;
        assert!(
            inter > intra,
            "mean inter-class distance {inter} must exceed intra-class {intra}"
        );
    }

    #[test]
    fn native_geometry_is_default() {
        let cfg = SyntheticConfig::new(DatasetKind::TinyImageNetLike);
        assert_eq!(cfg.num_classes(), 200);
        assert_eq!(cfg.image_size(), (64, 64));
        assert_eq!(cfg.kind(), DatasetKind::TinyImageNetLike);
    }

    #[test]
    fn zero_shift_zero_noise_reproduces_prototype() {
        let cfg = small_config().with_sample_noise(0.0);
        // max_shift is fixed at 2 in the public API, so test the prototype
        // sampling path directly.
        let proto = ClassPrototype::new(8, 8, 5);
        let mut r = rng::rng_from_seed(1);
        let a = proto.sample(0.0, 0, &mut r);
        let b = proto.sample(0.0, 0, &mut r);
        // Only intensity differs; images are proportional.
        let ratio = a.data()[10] / b.data()[10].max(1e-6);
        for (x, y) in a.data().iter().zip(b.data()) {
            if *y > 0.05 && *x < 0.99 && *y < 0.99 {
                assert!((x / y - ratio).abs() < 0.05, "{x} vs {y}");
            }
        }
        let _ = cfg;
    }
}
