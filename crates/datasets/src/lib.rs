//! Synthetic stand-ins for the paper's four benchmark image datasets.
//!
//! The evaluation container has no access to CIFAR10, GTSRB, CIFAR100 or
//! Tiny-ImageNet, so this crate *simulates the data gate*: it generates
//! seeded, procedurally textured RGB image classes with the same shape as
//! the originals (class counts, image sizes, train/test splits). Each class
//! gets a distinct prototype built from coloured Gaussian blobs plus a
//! colour gradient; samples are jittered copies (translation, intensity
//! scaling, pixel noise). The result is a classification task that small
//! CNNs learn to high benign accuracy — the property the paper's
//! BA/ASR-delta experiments actually depend on (see DESIGN.md §1).
//!
//! # Example
//!
//! ```
//! use reveil_datasets::{DatasetKind, SyntheticConfig};
//!
//! let config = SyntheticConfig::new(DatasetKind::Cifar10Like)
//!     .with_classes(4)
//!     .with_image_size(12, 12)
//!     .with_samples_per_class(20, 8)
//!     .with_seed(7);
//! let pair = config.generate();
//! assert_eq!(pair.train.len(), 80);
//! assert_eq!(pair.test.len(), 32);
//! assert_eq!(pair.train.image(0).shape(), &[3, 12, 12]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod generator;

pub use dataset::{DatasetError, LabeledDataset};
pub use generator::{DatasetPair, SyntheticConfig};

/// The four benchmark datasets the paper evaluates on, as synthetic
/// analogues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetKind {
    /// 10-class, 32×32 RGB (CIFAR10 analogue).
    Cifar10Like,
    /// 43-class, 32×32 RGB (GTSRB traffic-sign analogue).
    GtsrbLike,
    /// 100-class, 32×32 RGB (CIFAR100 analogue).
    Cifar100Like,
    /// 200-class, 64×64 RGB (Tiny-ImageNet analogue).
    TinyImageNetLike,
}

impl DatasetKind {
    /// All four kinds in the paper's order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Cifar10Like,
        DatasetKind::GtsrbLike,
        DatasetKind::Cifar100Like,
        DatasetKind::TinyImageNetLike,
    ];

    /// Display label matching the paper's naming.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Cifar10Like => "CIFAR10",
            DatasetKind::GtsrbLike => "GTSRB",
            DatasetKind::Cifar100Like => "CIFAR100",
            DatasetKind::TinyImageNetLike => "Tiny",
        }
    }

    /// Class count of the real dataset this kind imitates.
    pub fn native_classes(self) -> usize {
        match self {
            DatasetKind::Cifar10Like => 10,
            DatasetKind::GtsrbLike => 43,
            DatasetKind::Cifar100Like => 100,
            DatasetKind::TinyImageNetLike => 200,
        }
    }

    /// Native image size `(h, w)` of the real dataset.
    pub fn native_size(self) -> (usize, usize) {
        match self {
            DatasetKind::TinyImageNetLike => (64, 64),
            _ => (32, 32),
        }
    }

    /// The attack target label used by the paper for this dataset
    /// ('airplane', 'Speed Limit 20', 'apple', 'goldfish' — all class 0 in
    /// our synthetic indexing).
    pub fn paper_target_label(self) -> usize {
        0
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_report_paper_facts() {
        assert_eq!(DatasetKind::Cifar10Like.native_classes(), 10);
        assert_eq!(DatasetKind::GtsrbLike.native_classes(), 43);
        assert_eq!(DatasetKind::Cifar100Like.native_classes(), 100);
        assert_eq!(DatasetKind::TinyImageNetLike.native_classes(), 200);
        assert_eq!(DatasetKind::TinyImageNetLike.native_size(), (64, 64));
        assert_eq!(DatasetKind::Cifar10Like.native_size(), (32, 32));
        assert_eq!(DatasetKind::ALL.len(), 4);
        assert_eq!(DatasetKind::Cifar10Like.to_string(), "CIFAR10");
    }
}
