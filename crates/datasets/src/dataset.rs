//! Labelled image collections with subset/removal algebra.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use reveil_tensor::Tensor;

/// Error type for dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// An image whose shape differs from the dataset's established shape.
    ShapeMismatch {
        /// Shape of the first image in the dataset.
        expected: Vec<usize>,
        /// Shape of the offending image.
        got: Vec<usize>,
    },
    /// A label at or beyond `num_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The dataset's class count.
        num_classes: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "image shape mismatch: expected {expected:?}, got {got:?}"
                )
            }
            DatasetError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
        }
    }
}

impl Error for DatasetError {}

/// An in-memory labelled image dataset (images are `[c, h, w]` tensors in
/// `[0, 1]`).
///
/// The unlearning pipeline manipulates datasets by index: poison and
/// camouflage samples are appended to a clean set, and SISA's unlearning
/// step removes indices. [`LabeledDataset::subset`] and
/// [`LabeledDataset::without_indices`] provide that algebra without copying
/// the underlying tensors more than once.
#[derive(Debug, Clone, Default)]
pub struct LabeledDataset {
    name: String,
    num_classes: usize,
    images: Vec<Tensor>,
    labels: Vec<usize>,
}

impl LabeledDataset {
    /// Creates an empty dataset.
    pub fn new(name: impl Into<String>, num_classes: usize) -> Self {
        Self {
            name: name.into(),
            num_classes,
            images: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Appends a sample.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::LabelOutOfRange`] or
    /// [`DatasetError::ShapeMismatch`] (against the first image's shape).
    pub fn push(&mut self, image: Tensor, label: usize) -> Result<(), DatasetError> {
        if label >= self.num_classes {
            return Err(DatasetError::LabelOutOfRange {
                label,
                num_classes: self.num_classes,
            });
        }
        if let Some(first) = self.images.first() {
            if first.shape() != image.shape() {
                return Err(DatasetError::ShapeMismatch {
                    expected: first.shape().to_vec(),
                    got: image.shape().to_vec(),
                });
            }
        }
        self.images.push(image);
        self.labels.push(label);
        Ok(())
    }

    /// Dataset display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// All images.
    pub fn images(&self) -> &[Tensor] {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The `i`-th image.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn image(&self, i: usize) -> &Tensor {
        &self.images[i]
    }

    /// The `i`-th label.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Iterates over `(image, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tensor, usize)> {
        self.images.iter().zip(self.labels.iter().copied())
    }

    /// Indices of all samples with the given label.
    pub fn class_indices(&self, class: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// A new dataset containing the samples at `indices` (in that order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Self {
        let images = indices.iter().map(|&i| self.images[i].clone()).collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Self {
            name: self.name.clone(),
            num_classes: self.num_classes,
            images,
            labels,
        }
    }

    /// A new dataset excluding the samples at `remove` (order preserved).
    pub fn without_indices(&self, remove: &BTreeSet<usize>) -> Self {
        let keep: Vec<usize> = (0..self.len()).filter(|i| !remove.contains(i)).collect();
        self.subset(&keep)
    }

    /// Appends every sample of `other`, returning the index range the new
    /// samples occupy.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] if shapes or labels are incompatible.
    pub fn extend_from(
        &mut self,
        other: &LabeledDataset,
    ) -> Result<std::ops::Range<usize>, DatasetError> {
        let start = self.len();
        for (image, label) in other.iter() {
            self.push(image.clone(), label)?;
        }
        Ok(start..self.len())
    }

    /// Renames the dataset (builder style).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl<'a> IntoIterator for &'a LabeledDataset {
    type Item = (&'a Tensor, usize);
    type IntoIter = std::iter::Zip<
        std::slice::Iter<'a, Tensor>,
        std::iter::Copied<std::slice::Iter<'a, usize>>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.images.iter().zip(self.labels.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> LabeledDataset {
        let mut ds = LabeledDataset::new("toy", 3);
        for i in 0..6 {
            ds.push(Tensor::full(&[1, 2, 2], i as f32), i % 3).unwrap();
        }
        ds
    }

    #[test]
    fn push_validates_labels_and_shapes() {
        let mut ds = LabeledDataset::new("t", 2);
        ds.push(Tensor::zeros(&[1, 2, 2]), 0).unwrap();
        assert!(matches!(
            ds.push(Tensor::zeros(&[1, 2, 2]), 2),
            Err(DatasetError::LabelOutOfRange { .. })
        ));
        assert!(matches!(
            ds.push(Tensor::zeros(&[1, 3, 3]), 1),
            Err(DatasetError::ShapeMismatch { .. })
        ));
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn subset_and_without_indices() {
        let ds = sample_set();
        let sub = ds.subset(&[0, 2, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.label(1), 2);
        assert_eq!(sub.image(2).data()[0], 4.0);

        let removed: BTreeSet<usize> = [1, 3, 5].into_iter().collect();
        let kept = ds.without_indices(&removed);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept.labels(), &[0, 2, 1]);
    }

    #[test]
    fn class_indices_finds_members() {
        let ds = sample_set();
        assert_eq!(ds.class_indices(0), vec![0, 3]);
        assert_eq!(ds.class_indices(2), vec![2, 5]);
        assert!(ds.class_indices(1).len() == 2);
    }

    #[test]
    fn extend_from_reports_range() {
        let mut a = sample_set();
        let b = sample_set();
        let range = a.extend_from(&b).unwrap();
        assert_eq!(range, 6..12);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn iteration_yields_pairs() {
        let ds = sample_set();
        let count = ds.iter().filter(|(_, l)| *l == 0).count();
        assert_eq!(count, 2);
        let count2 = (&ds).into_iter().count();
        assert_eq!(count2, 6);
    }

    #[test]
    fn display_of_errors() {
        let e = DatasetError::LabelOutOfRange {
            label: 9,
            num_classes: 3,
        };
        assert!(e.to_string().contains('9'));
    }
}
