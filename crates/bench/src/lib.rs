//! Shared helpers for the Criterion benchmark suite.
//!
//! Each paper table/figure has a matching bench target that measures one
//! representative cell of the experiment at Smoke scale (training plus
//! measurement), so `cargo bench` both regenerates the experiment machinery
//! and tracks its runtime. The full paper-style sweeps live in the
//! `reveil-eval` binaries (`cargo run --release -p reveil-eval --bin
//! reveil-experiments`).

#![forbid(unsafe_code)]

use reveil_datasets::DatasetKind;
use reveil_eval::{Profile, ScenarioSpec, TrainedScenario};
use reveil_tensor::Tensor;
use reveil_triggers::TriggerKind;

/// The bench profile (Smoke: roughly a second per training).
pub const BENCH_PROFILE: Profile = Profile::Smoke;

/// The dataset every representative bench cell uses.
pub const BENCH_DATASET: DatasetKind = DatasetKind::Cifar10Like;

/// The scenario spec of a representative bench cell (BadNets at the given
/// camouflage ratio).
pub fn bench_spec(cr: f32, seed: u64) -> ScenarioSpec {
    ScenarioSpec::new(BENCH_PROFILE, BENCH_DATASET, TriggerKind::BadNets)
        .with_cr(cr)
        .with_sigma(1e-3)
        .with_seed(seed)
}

/// Trains one representative cell (BadNets at the given camouflage ratio).
///
/// # Panics
///
/// Panics if the bench cell cannot be trained (a profile bug).
pub fn bench_cell(cr: f32, seed: u64) -> TrainedScenario {
    bench_spec(cr, seed)
        .train()
        .unwrap_or_else(|e| panic!("bench cell training failed: {e}"))
}

/// Clean holdout + triggered suspects for the defense benches.
pub fn defense_inputs(cell: &TrainedScenario, count: usize) -> (Vec<Tensor>, Vec<Tensor>) {
    let clean: Vec<Tensor> = cell
        .pair
        .test
        .images()
        .iter()
        .take(count)
        .cloned()
        .collect();
    let (suspects, _) = cell.attack.exploit_set(&cell.pair.test);
    (clean, suspects.into_iter().take(count).collect())
}
