//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * camouflage cell cost (the ReVeil unit of work),
//! * SISA aggregation rule — mean-probability vs majority-vote inference,
//! * SISA shard count — unlearning cost as shards grow.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_bench::{BENCH_DATASET, BENCH_PROFILE};
use reveil_core::{benign_accuracy, Classifier};
use reveil_datasets::LabeledDataset;
use reveil_nn::models;
use reveil_nn::train::TrainConfig;
use reveil_tensor::{rng, Tensor};
use reveil_unlearn::{Aggregation, SisaConfig, SisaEnsemble};

fn toy_dataset(n: usize) -> LabeledDataset {
    let mut ds = LabeledDataset::new("bench", 2);
    let mut r = rng::rng_from_seed(5);
    for i in 0..n {
        let class = i % 2;
        let mut img = Tensor::full(&[1, 8, 8], 0.2 + 0.6 * class as f32);
        rng::fill_gaussian(&mut img, 0.2 + 0.6 * class as f32, 0.05, &mut r);
        img.clamp_inplace(0.0, 1.0);
        ds.push(img, class).expect("consistent toy data");
    }
    ds
}

fn bench_camouflage_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_camouflage_cell");
    group.sample_size(10);
    group.bench_function("cr5_cell", |bench| {
        let mut seed = 400u64;
        bench.iter(|| {
            seed += 1;
            let cell = reveil_eval::ScenarioSpec::new(
                BENCH_PROFILE,
                BENCH_DATASET,
                reveil_triggers::TriggerKind::BadNets,
            )
            .with_seed(seed)
            .train()
            .expect("bench cell");
            black_box(cell.result.asr)
        })
    });
    group.finish();
}

fn bench_sisa_aggregation(c: &mut Criterion) {
    let data = toy_dataset(60);
    let mut group = c.benchmark_group("ablation_sisa_aggregation");
    group.sample_size(10);
    for (label, aggregation) in [
        ("mean_prob", Aggregation::MeanProb),
        ("majority_vote", Aggregation::MajorityVote),
    ] {
        let mut ensemble = SisaEnsemble::train(
            SisaConfig::new(3, 2)
                .with_aggregation(aggregation)
                .with_seed(1),
            TrainConfig::new(3, 16, 0.05).with_seed(2),
            Box::new(|seed| models::mlp_probe(1, 8, 8, 2, seed)),
            &data,
        )
        .expect("SISA training");
        group.bench_function(label, |bench| {
            bench.iter(|| black_box(ensemble.predict(data.images())))
        });
    }
    group.finish();
}

fn bench_sisa_shard_count(c: &mut Criterion) {
    let data = toy_dataset(80);
    let mut group = c.benchmark_group("ablation_sisa_shards");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_function(format!("unlearn_with_{shards}_shards"), |bench| {
            bench.iter(|| {
                let mut ensemble = SisaEnsemble::train(
                    SisaConfig::new(shards, 2).with_seed(3),
                    TrainConfig::new(2, 16, 0.05).with_seed(4),
                    Box::new(|seed| models::mlp_probe(1, 8, 8, 2, seed)),
                    &data,
                )
                .expect("SISA training");
                let report = ensemble
                    .unlearn(&[0, 1, 2].into_iter().collect())
                    .expect("unlearning");
                black_box((
                    report.cost_fraction(),
                    benign_accuracy(&mut ensemble, &data),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_camouflage_cell,
    bench_sisa_aggregation,
    bench_sisa_shard_count
);
criterion_main!(benches);
