//! Micro-benchmarks of the substrate: matmul, convolution, DCT, triggers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_nn::layers::Conv2d;
use reveil_nn::{Layer, Mode};
use reveil_tensor::{dct, ops, rng, Tensor};
use reveil_triggers::TriggerKind;

fn bench_matmul(c: &mut Criterion) {
    let a = Tensor::from_fn(&[64, 128], |i| (i % 13) as f32 * 0.1);
    let b = Tensor::from_fn(&[128, 96], |i| (i % 7) as f32 * 0.1);
    c.bench_function("matmul_64x128x96", |bench| {
        bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).expect("matmul"))
    });
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut r = rng::rng_from_seed(1);
    let mut conv = Conv2d::new(8, 16, 3, 1, 1, &mut r).expect("conv");
    let x = Tensor::from_fn(&[16, 8, 16, 16], |i| (i % 11) as f32 * 0.05);
    c.bench_function("conv2d_forward_16x8x16x16", |bench| {
        bench.iter(|| conv.forward(black_box(&x), Mode::Train))
    });
}

fn bench_dct(c: &mut Criterion) {
    let image = Tensor::from_fn(&[3, 32, 32], |i| (i % 251) as f32 / 251.0);
    c.bench_function("dct2_3x32x32", |bench| {
        bench.iter(|| dct::dct2(black_box(&image)).expect("dct"))
    });
}

fn bench_triggers(c: &mut Criterion) {
    let image = Tensor::from_fn(&[3, 16, 16], |i| (i % 97) as f32 / 97.0);
    for kind in TriggerKind::ALL {
        let trigger = kind.build_substrate(3);
        c.bench_function(
            format!("trigger_{}", kind.label().to_lowercase()),
            |bench| bench.iter(|| trigger.apply(black_box(&image))),
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_conv_forward, bench_dct, bench_triggers
}
criterion_main!(benches);
