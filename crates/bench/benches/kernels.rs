//! Kernel microbenches: GFLOP/s for the packed matmul variants and
//! lowering throughput for `im2col`.
//!
//! Throughput is declared as flops (2·m·k·n for a matmul) so the harness
//! reports Gelem/s == GFLOP/s directly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use reveil_tensor::conv::{im2col, im2col_batch_into, ConvGeometry};
use reveil_tensor::{ops, Tensor};

fn filled(shape: &[usize]) -> Tensor {
    Tensor::from_fn(shape, |i| ((i * 31 % 17) as f32 - 8.0) * 0.1)
}

fn bench_matmul_variants(c: &mut Criterion) {
    // (m, k, n) shapes matching the workloads that dominate training:
    // conv-as-gemm (few rows, many columns), linear layers, and a square
    // case for reference.
    let shapes = [
        (16, 72, 4096),
        (64, 256, 128),
        (128, 128, 128),
        (256, 256, 256),
    ];
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for (m, k, n) in shapes {
        let flops = 2 * m * k * n;
        group.throughput(Throughput::Elements(flops as u64));

        let a = filled(&[m, k]);
        let b = filled(&[k, n]);
        group.bench_function(format!("nn_{m}x{k}x{n}"), |bench| {
            bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).expect("matmul"))
        });

        let at = filled(&[k, m]);
        group.bench_function(format!("tn_{m}x{k}x{n}"), |bench| {
            bench.iter(|| ops::matmul_tn(black_box(&at), black_box(&b)).expect("matmul_tn"))
        });

        let bt = filled(&[n, k]);
        group.bench_function(format!("nt_{m}x{k}x{n}"), |bench| {
            bench.iter(|| ops::matmul_nt(black_box(&a), black_box(&bt)).expect("matmul_nt"))
        });
    }
    group.finish();
}

fn bench_gemm_epilogue(c: &mut Criterion) {
    // Conv2d backward weight gradient at training scale: gy [oc, n*oh*ow]
    // against cols [fan_in, n*oh*ow] into dW [oc, fan_in]. The fused
    // accumulate epilogue (beta = 1) must beat — or at worst match — the
    // split matmul-into-scratch-then-axpy it replaced.
    let (oc, fan_in, cols_n) = (16usize, 72usize, 16 * 16 * 16);
    let gy = filled(&[oc, cols_n]);
    let cols = filled(&[fan_in, cols_n]);
    let flops = 2 * oc * cols_n * fan_in;

    let mut group = c.benchmark_group("gemm_epilogue");
    group.sample_size(20);
    group.throughput(Throughput::Elements(flops as u64));

    let mut grad = Tensor::zeros(&[oc, fan_in]);
    group.bench_function("conv_dw_fused_acc", |bench| {
        bench.iter(|| {
            ops::matmul_nt_acc_into(black_box(&gy), black_box(&cols), 1.0, &mut grad)
                .expect("acc gemm");
            // Keep the accumulator bounded across iterations.
            grad.scale(0.5);
        })
    });

    let mut product = Tensor::zeros(&[oc, fan_in]);
    let mut grad_split = Tensor::zeros(&[oc, fan_in]);
    group.bench_function("conv_dw_split_axpy", |bench| {
        bench.iter(|| {
            ops::matmul_nt_into(black_box(&gy), black_box(&cols), &mut product).expect("gemm");
            grad_split.axpy(1.0, &product).expect("axpy");
            grad_split.scale(0.5);
        })
    });

    // Square accumulate at the shared-pack headline shape: with
    // REVEIL_THREADS > 1 the team packs each B panel once instead of once
    // per worker, so this is the number that moves on bigger machines.
    let a = filled(&[256, 256]);
    let b = filled(&[256, 256]);
    let mut out = Tensor::zeros(&[256, 256]);
    group.throughput(Throughput::Elements((2 * 256 * 256 * 256) as u64));
    group.bench_function("acc_256x256x256", |bench| {
        bench.iter(|| {
            ops::matmul_acc_into(black_box(&a), black_box(&b), 1.0, &mut out).expect("acc");
            out.scale(0.5);
        })
    });

    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    group.sample_size(20);

    // Single-sample lowering of a CIFAR-sized feature map.
    let geom = ConvGeometry::new(3, 3, 1, 1).expect("geometry");
    let x = filled(&[8, 32, 32]);
    let (oh, ow) = geom.output_size(32, 32).expect("output size");
    group.throughput(Throughput::Elements((8 * 9 * oh * ow) as u64));
    group.bench_function("single_8x32x32_k3", |bench| {
        bench.iter(|| im2col(black_box(&x), geom).expect("im2col"))
    });

    // Whole-mini-batch lowering into a reused scratch buffer (the conv
    // layers' hot path).
    let n = 16;
    let batch = filled(&[n, 8, 32, 32]);
    let mut cols = Tensor::zeros(&[0]);
    im2col_batch_into(&batch, geom, &mut cols).expect("warm up scratch");
    group.throughput(Throughput::Elements((n * 8 * 9 * oh * ow) as u64));
    group.bench_function("batch16_8x32x32_k3", |bench| {
        bench.iter(|| im2col_batch_into(black_box(&batch), geom, &mut cols).expect("im2col batch"))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul_variants, bench_gemm_epilogue, bench_im2col
}
criterion_main!(benches);
