//! Fig. 4 bench: one σ-sweep cell (σ = 1e-2, cr = 5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_bench::{BENCH_DATASET, BENCH_PROFILE};
use reveil_eval::ScenarioSpec;
use reveil_triggers::TriggerKind;

fn bench_fig4_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("sigma_1e2_cell", |bench| {
        let mut seed = 200u64;
        bench.iter(|| {
            seed += 1;
            let cell = ScenarioSpec::new(BENCH_PROFILE, BENCH_DATASET, TriggerKind::BadNets)
                .with_cr(5.0)
                .with_sigma(1e-2)
                .with_seed(seed)
                .train()
                .expect("bench cell");
            black_box(cell.result)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4_cell);
criterion_main!(benches);
