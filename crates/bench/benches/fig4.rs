//! Fig. 4 bench: one σ-sweep cell (σ = 1e-2, cr = 5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_bench::{BENCH_DATASET, BENCH_PROFILE};
use reveil_eval::train_scenario;
use reveil_triggers::TriggerKind;

fn bench_fig4_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("sigma_1e2_cell", |bench| {
        let mut seed = 200u64;
        bench.iter(|| {
            seed += 1;
            let cell = train_scenario(
                BENCH_PROFILE,
                BENCH_DATASET,
                TriggerKind::BadNets,
                5.0,
                1e-2,
                seed,
            );
            black_box(cell.result)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4_cell);
criterion_main!(benches);
