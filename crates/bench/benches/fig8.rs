//! Fig. 8 bench: Beatrix Gram-statistics detection on a trained victim
//! model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_bench::{bench_cell, defense_inputs, BENCH_PROFILE};
use reveil_defense::{beatrix_with, BeatrixScratch};

fn bench_beatrix(c: &mut Criterion) {
    let mut cell = bench_cell(5.0, 42);
    let (_, suspects) = defense_inputs(&cell, 20);
    let config = BENCH_PROFILE.beatrix_config();
    let mut scratch = BeatrixScratch::new();
    c.bench_function("fig8_beatrix", |bench| {
        bench.iter(|| {
            black_box(beatrix_with(
                &mut cell.network,
                &cell.pair.test,
                &suspects,
                &config,
                &mut scratch,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_beatrix
}
criterion_main!(benches);
