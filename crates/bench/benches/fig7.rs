//! Fig. 7 bench: Neural Cleanse trigger reverse-engineering on a trained
//! victim model (all classes).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_bench::{bench_cell, defense_inputs, BENCH_PROFILE};
use reveil_defense::{neural_cleanse_with, CleanseScratch};

fn bench_neural_cleanse(c: &mut Criterion) {
    let mut cell = bench_cell(5.0, 42);
    let (clean, _) = defense_inputs(&cell, 12);
    let config = BENCH_PROFILE.neural_cleanse_config(1);
    let mut scratch = CleanseScratch::new();
    c.bench_function("fig7_neural_cleanse", |bench| {
        bench.iter(|| {
            black_box(neural_cleanse_with(
                &mut cell.network,
                &clean,
                &config,
                &mut scratch,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_neural_cleanse
}
criterion_main!(benches);
