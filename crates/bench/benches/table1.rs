//! Table I bench: regenerating the related-work capability matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_render", |bench| {
        bench.iter(|| {
            let table = reveil_eval::table1::table1();
            black_box(table.render())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1
}
criterion_main!(benches);
