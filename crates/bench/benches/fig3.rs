//! Fig. 3 bench: one mid-sweep heat-map cell (cr = 3).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_bench::bench_cell;

fn bench_fig3_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("cr3_cell", |bench| {
        let mut seed = 100u64;
        bench.iter(|| {
            seed += 1;
            black_box(bench_cell(3.0, seed).result.asr)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3_cell);
criterion_main!(benches);
