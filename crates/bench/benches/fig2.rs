//! Fig. 2 bench: GradCAM attribution on a trained victim model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_bench::bench_cell;
use reveil_explain::grad_cam;

fn bench_gradcam(c: &mut Criterion) {
    let mut cell = bench_cell(0.0, 42);
    let triggered = cell.attack.trigger().apply(cell.pair.test.image(0));
    c.bench_function("fig2_gradcam", |bench| {
        bench.iter(|| black_box(grad_cam(&mut cell.network, &triggered, 0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gradcam
}
criterion_main!(benches);
