//! Table II bench: one poison + one camouflage cell (BA/ASR measurement),
//! the unit of work the Table II sweep repeats 32 times.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_bench::bench_cell;

fn bench_table2_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("poison_cell", |bench| {
        let mut seed = 0u64;
        bench.iter(|| {
            seed += 1;
            black_box(bench_cell(0.0, seed).result)
        })
    });
    group.bench_function("camouflage_cell", |bench| {
        let mut seed = 0u64;
        bench.iter(|| {
            seed += 1;
            black_box(bench_cell(5.0, seed).result)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2_cell);
criterion_main!(benches);
