//! Fig. 5 bench: the full poisoning → camouflaging → unlearning trio for
//! one cell (SISA training and exact unlearning included).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_bench::{BENCH_DATASET, BENCH_PROFILE};
use reveil_eval::ScenarioSpec;
use reveil_triggers::TriggerKind;

fn bench_fig5_trio(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("unlearning_trio", |bench| {
        let mut seed = 300u64;
        bench.iter(|| {
            seed += 1;
            black_box(
                ScenarioSpec::new(BENCH_PROFILE, BENCH_DATASET, TriggerKind::BadNets)
                    .with_seed(seed)
                    .restoration_trio()
                    .expect("bench trio"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5_trio);
criterion_main!(benches);
