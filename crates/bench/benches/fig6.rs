//! Fig. 6 bench: STRIP on a trained victim model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_bench::{bench_cell, defense_inputs, BENCH_PROFILE};
use reveil_defense::{strip_with, StripScratch};

fn bench_strip(c: &mut Criterion) {
    let mut cell = bench_cell(5.0, 42);
    let (clean, suspects) = defense_inputs(&cell, 20);
    let config = BENCH_PROFILE.strip_config(1);
    let mut scratch = StripScratch::new();
    c.bench_function("fig6_strip", |bench| {
        bench.iter(|| {
            black_box(
                strip_with(&mut cell.network, &clean, &suspects, &config, &mut scratch).unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_strip
}
criterion_main!(benches);
