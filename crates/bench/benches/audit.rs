//! Audit bench: the pooled defense hot path for all three detectors.
//!
//! Before the Criterion timings run, a counting global allocator reports
//! allocations/audit for each defense — once through the allocate-per-call
//! reference wrapper and once through a warmed pooled auditor — and
//! asserts the warmed number is exactly zero, so `--bench audit -- --test`
//! doubles as a zero-allocation smoke gate. The timed groups then measure
//! steady-state audit latency through the `Defense` trait.

use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use reveil_bench::{bench_cell, defense_inputs, BENCH_PROFILE};
use reveil_defense::{beatrix, neural_cleanse, strip, AuditInputs, Defense};
use reveil_tensor::parallel;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Counts the allocations one call of `f` performs on the serial path.
fn allocations_during(f: impl FnOnce()) -> u64 {
    parallel::serialized(|| {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        f();
        ALLOCATIONS.load(Ordering::Relaxed) - before
    })
}

fn bench_audit(c: &mut Criterion) {
    let mut cell = bench_cell(5.0, 42);
    let count = BENCH_PROFILE.defense_sample_count();
    let (clean, suspects) = defense_inputs(&cell, count);
    let inputs = AuditInputs::new(&cell.pair.test, &suspects, count);

    let strip_auditor = BENCH_PROFILE.strip_auditor(1);
    let nc_auditor = BENCH_PROFILE.neural_cleanse_auditor(1);
    let beatrix_auditor = BENCH_PROFILE.beatrix_auditor();

    let strip_cfg = BENCH_PROFILE.strip_config(1);
    let nc_cfg = BENCH_PROFILE.neural_cleanse_config(1);
    let beatrix_cfg = BENCH_PROFILE.beatrix_config();

    // Allocations/audit report: reference wrapper vs warmed pooled auditor.
    let net = &mut cell.network;
    let wrapper_counts = [
        (
            "STRIP",
            allocations_during(|| {
                black_box(strip(net, &clean, &suspects, &strip_cfg)).ok();
            }),
        ),
        (
            "Neural Cleanse",
            allocations_during(|| {
                black_box(neural_cleanse(net, &clean, &nc_cfg)).ok();
            }),
        ),
        (
            "Beatrix",
            allocations_during(|| {
                black_box(beatrix(net, &cell.pair.test, &suspects, &beatrix_cfg)).ok();
            }),
        ),
    ];
    let panel: [(&str, &dyn Defense); 3] = [
        ("STRIP", &strip_auditor),
        ("Neural Cleanse", &nc_auditor),
        ("Beatrix", &beatrix_auditor),
    ];
    for ((name, auditor), (_, wrapper)) in panel.into_iter().zip(wrapper_counts) {
        for _ in 0..2 {
            auditor
                .audit(net, &inputs)
                .unwrap_or_else(|e| panic!("{name} warm-up audit failed: {e}"));
        }
        let pooled = allocations_during(|| {
            auditor
                .audit(net, &inputs)
                .map(black_box)
                .unwrap_or_else(|e| panic!("{name} audit failed: {e}"));
        });
        eprintln!("allocations/audit — {name}: wrapper {wrapper}, warmed pooled {pooled}");
        assert_eq!(
            pooled, 0,
            "{name}: a warmed-up pooled audit must perform zero heap allocations"
        );
    }

    // Steady-state latency of the pooled hot path, per defense.
    c.bench_function("audit_strip_pooled", |bench| {
        bench.iter(|| black_box(strip_auditor.audit(net, &inputs)))
    });
    c.bench_function("audit_neural_cleanse_pooled", |bench| {
        bench.iter(|| black_box(nc_auditor.audit(net, &inputs)))
    });
    c.bench_function("audit_beatrix_pooled", |bench| {
        bench.iter(|| black_box(beatrix_auditor.audit(net, &inputs)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_audit
}
criterion_main!(benches);
