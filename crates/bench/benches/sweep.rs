//! Sweep executor bench: serial vs parallel cell throughput at Smoke
//! scale — the unit of work every figure grid repeats. `REVEIL_THREADS`
//! controls the parallel leg's worker count (the serial leg trains the
//! same cells one at a time without the executor).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_bench::bench_spec;
use reveil_eval::{ScenarioCache, ScenarioSpec};

/// Cells per sweep round (a small fig-style grid).
const CELLS: u64 = 4;

/// Fresh specs each round so every cell genuinely trains.
fn round_specs(tag: u64, round: u64) -> Vec<ScenarioSpec> {
    (0..CELLS)
        .map(|i| bench_spec(5.0, tag + round * CELLS + i))
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("serial_cells", |bench| {
        let mut round = 0u64;
        bench.iter(|| {
            round += 1;
            let results: Vec<_> = round_specs(0x5E10_0000, round)
                .iter()
                .map(|spec| spec.train().expect("serial cell").result)
                .collect();
            black_box(results)
        })
    });
    group.bench_function("parallel_cells", |bench| {
        let mut round = 0u64;
        bench.iter(|| {
            round += 1;
            let specs = round_specs(0x9A1A_0000, round);
            let cache = ScenarioCache::new();
            let cells = cache.train_all(&specs).expect("parallel sweep");
            black_box(cells.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
