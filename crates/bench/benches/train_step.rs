//! Training-step benchmarks: one full forward → loss → backward →
//! optimizer step at Smoke scale, per model family.
//!
//! The `train_step` group drives the pooled-buffer substrate
//! ([`TrainStep`]); `train_step_alloc_per_call` drives the allocating
//! wrappers (the pre-pooling baseline shape) for comparison. Beyond
//! wall-clock time, the `train_step_allocs` group reports heap allocations
//! per warmed-up step (counted by a global counting allocator, inside
//! `parallel::serialized` so fork–join plumbing of the worker team is not
//! attributed to the step itself) — the pooled path reports zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reveil_nn::loss::softmax_cross_entropy;
use reveil_nn::optim::{Adam, Optimizer};
use reveil_nn::train::TrainStep;
use reveil_nn::{models, Mode, Network};
use reveil_tensor::{parallel, rng, Tensor};

/// Counts heap allocations (`alloc` + `realloc`) so the benches can report
/// allocations per training step alongside time.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Smoke-profile batch: 32 images of `c`×`h`×`w` with round-robin labels.
fn smoke_batch(c: usize, h: usize, w: usize, classes: usize) -> (Tensor, Vec<usize>) {
    let n = 32;
    let mut batch = Tensor::zeros(&[n, c, h, w]);
    let mut r = rng::rng_from_seed(11);
    rng::fill_gaussian(&mut batch, 0.5, 0.25, &mut r);
    let labels = (0..n).map(|i| i % classes).collect();
    (batch, labels)
}

/// The model families the training figures sweep, at Smoke width.
///
/// `tiny_cnn` matches the Smoke profile exactly (12×12 images, width 6);
/// the others keep the step bench honest about blocks the Smoke profile
/// skips (residual, depthwise, squeeze-excite).
fn families() -> Vec<(&'static str, Network, usize, usize, usize, usize)> {
    vec![
        (
            "tiny_cnn",
            models::tiny_cnn(3, 12, 12, 10, 6, 5),
            3,
            12,
            12,
            10,
        ),
        (
            "resnet",
            models::resnet_tiny(3, 16, 16, 10, 6, 5),
            3,
            16,
            16,
            10,
        ),
        (
            "effnet",
            models::effnet_tiny(3, 16, 16, 10, 6, 5),
            3,
            16,
            16,
            10,
        ),
    ]
}

/// One full training step through the pooled-buffer substrate.
fn pooled_step(
    net: &mut Network,
    step: &mut TrainStep,
    opt: &mut dyn Optimizer,
    batch: &Tensor,
    labels: &[usize],
) -> f32 {
    step.run(net, opt, batch, labels)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The same step through the allocate-per-call wrappers (fresh output
/// tensors every call) — the pre-pooling baseline shape.
fn alloc_step(net: &mut Network, opt: &mut dyn Optimizer, batch: &Tensor, labels: &[usize]) -> f32 {
    let logits = net.forward(batch, Mode::Train);
    let (loss, grad) = softmax_cross_entropy(&logits, labels).unwrap_or_else(|e| panic!("{e}"));
    net.zero_grads();
    net.backward_to_input(&grad);
    opt.step(net);
    loss
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(20);
    for (label, mut net, ch, h, w, classes) in families() {
        let (batch, labels) = smoke_batch(ch, h, w, classes);
        let mut opt = Adam::new(5e-3).with_weight_decay(1e-4);
        let mut step = TrainStep::new();
        // Warm every reusable buffer before timing.
        for _ in 0..3 {
            pooled_step(&mut net, &mut step, &mut opt, &batch, &labels);
        }
        group.bench_function(label, |b| {
            b.iter(|| pooled_step(&mut net, &mut step, &mut opt, black_box(&batch), &labels))
        });
    }
    group.finish();
}

fn bench_train_step_alloc_per_call(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step_alloc_per_call");
    group.sample_size(20);
    for (label, mut net, ch, h, w, classes) in families() {
        let (batch, labels) = smoke_batch(ch, h, w, classes);
        let mut opt = Adam::new(5e-3).with_weight_decay(1e-4);
        for _ in 0..3 {
            alloc_step(&mut net, &mut opt, &batch, &labels);
        }
        group.bench_function(label, |b| {
            b.iter(|| alloc_step(&mut net, &mut opt, black_box(&batch), &labels))
        });
    }
    group.finish();
}

fn bench_step_allocations(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step_allocs");
    group.sample_size(10);
    for (label, mut net, ch, h, w, classes) in families() {
        let (batch, labels) = smoke_batch(ch, h, w, classes);
        let mut opt = Adam::new(5e-3).with_weight_decay(1e-4);
        let mut step = TrainStep::new();
        parallel::serialized(|| {
            for _ in 0..3 {
                pooled_step(&mut net, &mut step, &mut opt, &batch, &labels);
            }
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let rounds = 10u64;
            for _ in 0..rounds {
                pooled_step(&mut net, &mut step, &mut opt, &batch, &labels);
            }
            let per_step = (ALLOCATIONS.load(Ordering::Relaxed) - before) / rounds;
            eprintln!("train_step_allocs/{label}: {per_step} heap allocations per warmed-up step");
        });
        // Keep a timing entry so `--test` smoke mode exercises this group.
        group.bench_function(label, |b| {
            b.iter(|| {
                parallel::serialized(|| pooled_step(&mut net, &mut step, &mut opt, &batch, &labels))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_train_step,
    bench_train_step_alloc_per_call,
    bench_step_allocations
);
criterion_main!(benches);
