//! Clean fixture: exercises every false-positive trap the scanner must not
//! fall into. A comment may say panic!("nope") or .unwrap() or HashMap and
//! mean none of it.

#![forbid(unsafe_code)]

/* Block comments too: Mutex, RwLock, Instant::now(), thread::spawn. */

/// Strings are data, not code: the scanner must mask them.
pub fn strings<'a>(tag: &'a str) -> String {
    let bait = "call .unwrap() then panic!(\"boom\") on a HashMap<Instant, Mutex<u8>>";
    let raw = r#"raw strings hide .expect("x") and SystemTime just as well"#;
    let quote = '"';
    let tick = '\'';
    let lifetime_not_char = tag;
    format!("{bait}{raw}{quote}{tick}{lifetime_not_char}")
}

/// A well-behaved `_into` function: reuses capacity via the sanctioned
/// idiom and writes in place.
pub fn scale_into(src: &[f32], factor: f32, out: &mut Vec<f32>) {
    resize_buffer(out, src.len()); // resize_buffer reuses spare capacity
    for (dst, &s) in out.iter_mut().zip(src) {
        *dst = s * factor;
    }
}

/// Grows `buf` to `len` without shrinking capacity (the sanctioned idiom).
pub fn resize_buffer(buf: &mut Vec<f32>, len: usize) {
    buf.resize(len, 0.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn tests_may_panic_and_time() {
        let started = Instant::now();
        let mut seen = HashMap::new();
        seen.insert("k", strings("v"));
        assert!(!seen.get("k").unwrap().is_empty());
        let _ = started.elapsed();
        if false {
            panic!("tests are allowed to");
        }
    }
}
