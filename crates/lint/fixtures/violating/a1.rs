// A1 fixture: allocation inside a `*_into` hot path.
pub fn gather_into(src: &[f32], out: &mut Vec<f32>) {
    let mut scratch = Vec::new();
    scratch.extend_from_slice(src);
    *out = scratch.to_vec();
}
