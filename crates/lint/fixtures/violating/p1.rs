// P1 fixture: panic escape hatches in library code.
pub fn head(xs: &[i32]) -> i32 {
    if xs.is_empty() {
        panic!("empty input");
    }
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> i32 {
    s.parse().expect("not a number")
}
