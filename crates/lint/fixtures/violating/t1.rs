// T1 fixture: decentralized shared-state concurrency.
use std::sync::Mutex;

pub fn shared_counter() -> Mutex<u64> {
    std::thread::spawn(|| {}).join().ok();
    Mutex::new(0)
}
