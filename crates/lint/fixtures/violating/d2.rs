// D2 fixture: wall-clock read in library code.
use std::time::Instant;

pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos())
}
