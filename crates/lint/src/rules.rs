//! The invariant rule registry.
//!
//! Each rule has a stable ID, a one-line rationale, and a checker that walks
//! a [`MaskedSource`] and reports [`Diagnostic`]s. Rules see only masked text
//! (comments, literals and `#[cfg(test)]` items blanked), so string contents
//! and test-only code never produce findings.

use crate::source::{find_from, is_ident_byte, MaskedSource};

/// One finding: a rule violated at a specific file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule ID (`D1`, `D2`, `P1`, `T1`, `H1`, `A1`).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What matched (e.g. the offending token).
    pub message: String,
    /// The trimmed raw source line, for allowlist `contains` matching.
    pub snippet: String,
    /// How to fix it.
    pub fix: &'static str,
}

impl Diagnostic {
    /// Renders the diagnostic in `rule file:line` form.
    pub fn render(&self) -> String {
        format!(
            "[{}] {}:{}: {}\n    | {}\n    = fix: {}",
            self.rule, self.path, self.line, self.message, self.snippet, self.fix
        )
    }
}

/// Static description of a rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule ID.
    pub id: &'static str,
    /// One-line summary of the invariant the rule enforces.
    pub summary: &'static str,
    /// The generic fix suggestion attached to its diagnostics.
    pub fix: &'static str,
}

/// The registry of shipped rules, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        summary: "determinism: no HashMap/HashSet in result-producing library code \
                  (unordered iteration threatens bit-identical results)",
        fix: "use BTreeMap/BTreeSet (or sort before iterating) so iteration order is \
              deterministic; allowlist with a justification if the map is never iterated",
    },
    RuleInfo {
        id: "D2",
        summary: "determinism: no wall-clock reads (Instant/SystemTime) in library code",
        fix: "move timing into benches/bins, or thread a caller-provided clock through; \
              allowlist bench-harness internals with a justification",
    },
    RuleInfo {
        id: "P1",
        summary: "panic-freedom: no panic!/unreachable!/todo!/unimplemented!/.unwrap()/.expect( \
                  in non-test library code",
        fix: "return the crate's structured error type instead; allowlist provably \
              infallible sites with a one-line safety argument",
    },
    RuleInfo {
        id: "T1",
        summary: "threading: no thread::spawn/Mutex/RwLock/Condvar outside \
                  reveil_tensor::parallel (shared-state concurrency is centralized there)",
        fix: "route parallelism through reveil_tensor::parallel; audited sync machinery \
              (ScenarioCache slots, shared GEMM panels) must be allowlisted with a justification",
    },
    RuleInfo {
        id: "H1",
        summary: "hygiene: every crate root carries #![forbid(unsafe_code)]",
        fix: "add #![forbid(unsafe_code)] to the crate root",
    },
    RuleInfo {
        id: "A1",
        summary: "zero-alloc: *_into functions must not call allocating constructors \
                  (Tensor::zeros, Vec::new, vec![], with_capacity, to_vec, clone, collect) \
                  outside the resize_for_overwrite/resize_buffer idiom",
        fix: "reuse the caller-provided buffer via resize_for_overwrite/resize_buffer; \
              allowlist cheap or setup-path clones with a justification",
    },
];

/// Looks up a rule by ID.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

fn fix_of(id: &str) -> &'static str {
    rule_info(id).map(|r| r.fix).unwrap_or("")
}

/// Whether `text[at..at + len]` is a whole identifier (not a fragment of a
/// longer one).
fn ident_bounded(text: &[u8], at: usize, len: usize) -> bool {
    let before_ok = at == 0 || !is_ident_byte(text[at - 1]);
    let after_ok = at + len >= text.len() || !is_ident_byte(text[at + len]);
    before_ok && after_ok
}

/// Finds every whole-identifier occurrence of `token` in `masked`.
fn ident_occurrences(masked: &[u8], token: &str) -> Vec<usize> {
    let needle = token.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0usize;
    while let Some(at) = find_from(masked, needle, from) {
        if ident_bounded(masked, at, needle.len()) {
            hits.push(at);
        }
        from = at + 1;
    }
    hits
}

fn push_token_diags(
    out: &mut Vec<Diagnostic>,
    src: &MaskedSource,
    path: &str,
    rule: &'static str,
    token: &str,
    message: &str,
) {
    for at in ident_occurrences(src.masked.as_bytes(), token) {
        let line = src.line_of(at);
        out.push(Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: format!("{message}: `{token}`"),
            snippet: src.raw_line(line).to_string(),
            fix: fix_of(rule),
        });
    }
}

/// D1 — unordered-map determinism hazard.
pub fn check_d1(src: &MaskedSource, path: &str, out: &mut Vec<Diagnostic>) {
    for token in ["HashMap", "HashSet"] {
        push_token_diags(
            out,
            src,
            path,
            "D1",
            token,
            "unordered collection in library code",
        );
    }
}

/// D2 — wall-clock reads.
pub fn check_d2(src: &MaskedSource, path: &str, out: &mut Vec<Diagnostic>) {
    for token in ["Instant", "SystemTime"] {
        push_token_diags(
            out,
            src,
            path,
            "D2",
            token,
            "wall-clock read in library code",
        );
    }
}

/// P1 — panic escape hatches.
pub fn check_p1(src: &MaskedSource, path: &str, out: &mut Vec<Diagnostic>) {
    let masked = src.masked.as_bytes();
    for token in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        // The `!` is part of the needle, so `ident_bounded` only needs the
        // leading boundary; trailing byte is the bang itself.
        let needle = token.as_bytes();
        let mut from = 0usize;
        while let Some(at) = find_from(masked, needle, from) {
            if at == 0 || !is_ident_byte(masked[at - 1]) {
                let line = src.line_of(at);
                out.push(Diagnostic {
                    rule: "P1",
                    path: path.to_string(),
                    line,
                    message: format!("panic escape hatch: `{token}`"),
                    snippet: src.raw_line(line).to_string(),
                    fix: fix_of("P1"),
                });
            }
            from = at + 1;
        }
    }
    for token in [".unwrap()", ".expect("] {
        let needle = token.as_bytes();
        let mut from = 0usize;
        while let Some(at) = find_from(masked, needle, from) {
            let line = src.line_of(at);
            out.push(Diagnostic {
                rule: "P1",
                path: path.to_string(),
                line,
                message: format!("panicking accessor: `{token}`"),
                snippet: src.raw_line(line).to_string(),
                fix: fix_of("P1"),
            });
            from = at + 1;
        }
    }
}

/// T1 — decentralized shared-state concurrency.
pub fn check_t1(src: &MaskedSource, path: &str, out: &mut Vec<Diagnostic>) {
    // The designated concurrency module is exempt by construction: the rule
    // exists to keep sync primitives *centralized there*.
    if path == "crates/tensor/src/parallel.rs" {
        return;
    }
    for token in [
        "Mutex",
        "MutexGuard",
        "RwLock",
        "RwLockReadGuard",
        "RwLockWriteGuard",
        "Condvar",
    ] {
        push_token_diags(
            out,
            src,
            path,
            "T1",
            token,
            "sync primitive outside reveil_tensor::parallel",
        );
    }
    let masked = src.masked.as_bytes();
    let mut from = 0usize;
    while let Some(at) = find_from(masked, b"thread::spawn", from) {
        let line = src.line_of(at);
        out.push(Diagnostic {
            rule: "T1",
            path: path.to_string(),
            line,
            message: "raw thread spawn outside reveil_tensor::parallel".to_string(),
            snippet: src.raw_line(line).to_string(),
            fix: fix_of("T1"),
        });
        from = at + 1;
    }
}

/// H1 — crate roots must forbid unsafe code. Only runs on crate-root files.
pub fn check_h1(src: &MaskedSource, path: &str, out: &mut Vec<Diagnostic>) {
    if !src.masked.contains("#![forbid(unsafe_code)]") {
        out.push(Diagnostic {
            rule: "H1",
            path: path.to_string(),
            line: 1,
            message: "crate root does not carry #![forbid(unsafe_code)]".to_string(),
            snippet: src.raw_line(1).to_string(),
            fix: fix_of("H1"),
        });
    }
}

/// Allocating constructors A1 looks for inside `*_into` bodies.
const A1_TOKENS: &[&str] = &[
    "Tensor::zeros",
    "Tensor::ones",
    "Vec::new",
    "vec!",
    "with_capacity",
    ".to_vec()",
    ".to_owned()",
    ".collect()",
    ".clone()",
];

/// Lines mentioning these idioms are the sanctioned way for an `_into`
/// function to (re)use capacity, so A1 skips them.
const A1_IDIOMS: &[&str] = &["resize_for_overwrite", "resize_buffer"];

/// A1 — allocation in `*_into` hot paths.
pub fn check_a1(src: &MaskedSource, path: &str, out: &mut Vec<Diagnostic>) {
    let masked = src.masked.as_bytes();
    let mut from = 0usize;
    while let Some(fn_at) = find_from(masked, b"fn ", from) {
        from = fn_at + 3;
        if fn_at > 0 && is_ident_byte(masked[fn_at - 1]) {
            continue;
        }
        // Extract the function name.
        let mut i = fn_at + 3;
        while i < masked.len() && masked[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < masked.len() && is_ident_byte(masked[i]) {
            i += 1;
        }
        let name = &src.masked[name_start..i];
        if !name.ends_with("_into") {
            continue;
        }
        let Some(body) = fn_body_span(masked, i) else {
            continue;
        };
        scan_into_body(src, path, name, body, out);
    }
}

/// Finds the `{ .. }` body span of a function whose name ends at `after_name`.
/// Returns `None` for trait-method declarations (`;` before any `{`).
fn fn_body_span(masked: &[u8], after_name: usize) -> Option<(usize, usize)> {
    let n = masked.len();
    let mut i = after_name;
    // Skip to the parameter list and over it (generics may contain no parens).
    while i < n && masked[i] != b'(' {
        if masked[i] == b';' || masked[i] == b'{' {
            return None; // malformed or bodyless
        }
        i += 1;
    }
    let mut depth = 0usize;
    while i < n {
        match masked[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Between `)` and the body brace sits at most a return type / where
    // clause; a `;` first means a bodyless declaration.
    while i < n && masked[i] != b'{' && masked[i] != b';' {
        i += 1;
    }
    if i >= n || masked[i] == b';' {
        return None;
    }
    let body_start = i;
    let mut depth = 0usize;
    while i < n {
        match masked[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((body_start, i + 1));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn scan_into_body(
    src: &MaskedSource,
    path: &str,
    fn_name: &str,
    (start, end): (usize, usize),
    out: &mut Vec<Diagnostic>,
) {
    let masked = &src.masked.as_bytes()[..end];
    for token in A1_TOKENS {
        let needle = token.as_bytes();
        let mut from = start;
        while let Some(at) = find_from(masked, needle, from) {
            from = at + 1;
            // Whole-identifier boundary for tokens that start with an
            // identifier byte (`Tensor::zeros`, `Vec::new`, ...).
            if is_ident_byte(needle[0]) && !ident_bounded(masked, at, needle.len()) {
                continue;
            }
            let line = src.line_of(at);
            let raw_line = src.raw_line(line);
            if A1_IDIOMS.iter().any(|idiom| raw_line.contains(idiom)) {
                continue;
            }
            out.push(Diagnostic {
                rule: "A1",
                path: path.to_string(),
                line,
                message: format!("allocation in `{fn_name}` hot path: `{token}`"),
                snippet: raw_line.to_string(),
                fix: fix_of("A1"),
            });
        }
    }
}

/// Runs every applicable rule over one library file.
///
/// `is_crate_root` enables H1; the other rules run on all library files.
pub fn check_file(src: &MaskedSource, path: &str, is_crate_root: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_d1(src, path, &mut out);
    check_d2(src, path, &mut out);
    check_p1(src, path, &mut out);
    check_t1(src, path, &mut out);
    if is_crate_root {
        check_h1(src, path, &mut out);
    }
    check_a1(src, path, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}
