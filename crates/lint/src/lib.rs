//! `reveil-lint` — the in-tree invariant checker.
//!
//! The workspace's load-bearing guarantees are not style preferences; they
//! are what makes the paper's figures reproducible and the substrate safe to
//! parallelize:
//!
//! * **Determinism** — results must be bit-identical at any `REVEIL_THREADS`
//!   and across reruns. Unordered-map iteration (**D1**) and wall-clock reads
//!   (**D2**) silently break that.
//! * **Panic-freedom** — library crates surface structured errors
//!   (`EvalError`, `UnlearnError`, `DefenseError`, ...), never `panic!` or
//!   `.unwrap()` (**P1**): a stray panic inside a worker team poisons locks
//!   and corrupts whole sweep runs.
//! * **Centralized concurrency** — shared-state primitives live in
//!   `reveil_tensor::parallel` plus a short audited list (**T1**), so the
//!   bit-identity argument stays reviewable.
//! * **Hygiene** — every crate root forbids `unsafe` (**H1**).
//! * **Zero-alloc hot paths** — `*_into` functions reuse caller buffers and
//!   must not reach for allocating constructors (**A1**).
//!
//! This crate is a std-only, dependency-free scanner (the evaluation
//! container has no crates.io access — same in-tree discipline as
//! `crates/compat`). It is deliberately *syntactic*: source is masked
//! ([`source::MaskedSource`]) so comments, string literals and
//! `#[cfg(test)]` items can never trip a rule, then rules
//! ([`rules::RULES`]) run identifier-boundary token searches and report
//! `file:line` diagnostics with fix suggestions. Intentional exceptions go
//! in the checked-in `lint.toml` ([`allowlist::Allowlist`]), where every
//! entry must carry a written justification and turns *stale* (failing the
//! gate) as soon as it stops matching.
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run -p reveil-lint -- --workspace
//! ```
//!
//! Exit codes: `0` clean, `1` violations or stale allowlist entries, `2`
//! usage or configuration errors (including a malformed `lint.toml`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod rules;
pub mod scan;
pub mod source;

pub use allowlist::{AllowEntry, Allowlist, AllowlistError};
pub use rules::{Diagnostic, RuleInfo, RULES};
pub use scan::{tree_files, workspace_files, LintFile, Report};
pub use source::MaskedSource;
