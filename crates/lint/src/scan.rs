//! Workspace discovery and the scan driver.
//!
//! Two discovery modes:
//!
//! * **workspace** — parse the `members` array of the root `Cargo.toml` and
//!   scan each member's `src/` tree (plus the umbrella package's `src/`),
//!   excluding binary targets (`src/bin/`, `src/main.rs`). Rules apply to
//!   *library* code only: benches, examples, tests and bins may time, panic
//!   and allocate.
//! * **tree** — walk every `.rs` file under an arbitrary root (used by the
//!   fixture tests and the CI smoke leg), with the same bin/test exclusions
//!   by path component.

use std::io;
use std::path::{Path, PathBuf};

use crate::allowlist::Allowlist;
use crate::rules::{check_file, Diagnostic};
use crate::source::MaskedSource;

/// One file selected for scanning.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LintFile {
    /// Absolute (or root-joined) path on disk.
    pub path: PathBuf,
    /// Root-relative path with forward slashes, as used in diagnostics and
    /// `lint.toml`.
    pub rel: String,
    /// Whether this file is a crate root (`src/lib.rs`), which enables H1.
    pub is_crate_root: bool,
}

fn rel_string(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

/// Path components that mark non-library targets.
const EXCLUDED_COMPONENTS: &[&str] = &["bin", "tests", "benches", "examples", "target", "fixtures"];

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut dirs: Vec<PathBuf> = vec![dir.to_path_buf()];
    while let Some(d) = dirs.pop() {
        let mut children: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            children.push(entry.path());
        }
        // Deterministic scan order regardless of filesystem enumeration.
        children.sort();
        for child in children {
            let name = child
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if child.is_dir() {
                if !EXCLUDED_COMPONENTS.contains(&name.as_str()) && !name.starts_with('.') {
                    dirs.push(child);
                }
            } else if name.ends_with(".rs") && name != "main.rs" {
                out.push(child);
            }
        }
    }
    out.sort();
    Ok(())
}

/// Extracts the `members = [ ... ]` entries from a workspace `Cargo.toml`.
pub fn parse_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if !in_members {
            if let Some(rest) = line.strip_prefix("members") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    in_members = true;
                    collect_quoted(rest, &mut members);
                    if rest.contains(']') {
                        in_members = false;
                    }
                }
            }
        } else {
            collect_quoted(line, &mut members);
            if line.contains(']') {
                in_members = false;
            }
        }
    }
    members
}

fn collect_quoted(text: &str, out: &mut Vec<String>) {
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        let Some(len) = rest[start + 1..].find('"') else {
            return;
        };
        out.push(rest[start + 1..start + 1 + len].to_string());
        rest = &rest[start + 1 + len + 1..];
        if rest.trim_start().starts_with(']') {
            return;
        }
    }
}

/// Discovers the library files of the workspace rooted at `root`.
pub fn workspace_files(root: &Path) -> io::Result<Vec<LintFile>> {
    let manifest = std::fs::read_to_string(root.join("Cargo.toml"))?;
    let mut src_dirs: Vec<PathBuf> = vec![root.join("src")];
    for member in parse_members(&manifest) {
        let dir = root.join(&member).join("src");
        if dir.is_dir() {
            src_dirs.push(dir);
        }
    }
    src_dirs.sort();
    src_dirs.dedup();
    let mut files = Vec::new();
    for src_dir in &src_dirs {
        let mut paths = Vec::new();
        walk_rs(src_dir, &mut paths)?;
        for path in paths {
            let rel = rel_string(root, &path);
            let is_crate_root = path == src_dir.join("lib.rs");
            files.push(LintFile {
                path,
                rel,
                is_crate_root,
            });
        }
    }
    files.sort();
    Ok(files)
}

/// Discovers every library-shaped `.rs` file under an arbitrary tree root.
pub fn tree_files(root: &Path) -> io::Result<Vec<LintFile>> {
    let mut paths = Vec::new();
    walk_rs(root, &mut paths)?;
    Ok(paths
        .into_iter()
        .map(|path| {
            let rel = rel_string(root, &path);
            let is_crate_root = path.file_name().is_some_and(|n| n == "lib.rs");
            LintFile {
                path,
                rel,
                is_crate_root,
            }
        })
        .collect())
}

/// The outcome of a scan after allowlist application.
#[derive(Debug, Default)]
pub struct Report {
    /// Diagnostics not covered by any allowlist entry — these fail the gate.
    pub violations: Vec<Diagnostic>,
    /// Diagnostics absorbed by an allowlist entry.
    pub allowlisted: Vec<Diagnostic>,
    /// Allowlist entries that matched nothing (stale — fail the gate) as
    /// `(description, justification)` pairs.
    pub stale_entries: Vec<String>,
    /// Entries whose `max` cap was exceeded, as human-readable descriptions.
    pub over_budget: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the gate passes.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale_entries.is_empty() && self.over_budget.is_empty()
    }
}

/// Scans `files`, applies `allowlist`, and produces a [`Report`].
pub fn run(files: &[LintFile], allowlist: &Allowlist) -> io::Result<Report> {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut match_counts = vec![0usize; allowlist.entries.len()];
    for file in files {
        let raw = std::fs::read_to_string(&file.path)?;
        let src = MaskedSource::new(&raw);
        for diag in check_file(&src, &file.rel, file.is_crate_root) {
            match allowlist.entries.iter().position(|e| e.matches(&diag)) {
                Some(idx) => {
                    match_counts[idx] += 1;
                    report.allowlisted.push(diag);
                }
                None => report.violations.push(diag),
            }
        }
    }
    for (entry, &count) in allowlist.entries.iter().zip(&match_counts) {
        if count == 0 {
            report.stale_entries.push(format!(
                "stale allowlist entry (matched nothing — remove it): {}",
                entry.describe()
            ));
        } else if let Some(max) = entry.max {
            if count > max {
                report.over_budget.push(format!(
                    "allowlist budget exceeded: {} matched {count} diagnostics (max {max}) — \
                     new violations are hiding behind an old suppression",
                    entry.describe()
                ));
            }
        }
    }
    Ok(report)
}
