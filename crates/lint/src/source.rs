//! Lossless masking of Rust source for line-oriented token scanning.
//!
//! The scanner never parses Rust properly; instead it blanks out everything
//! that must not produce matches — comments, string/char literals and
//! `#[cfg(test)]` items — while preserving byte offsets and line numbers
//! exactly (every masked byte becomes a space; newlines survive). Rules then
//! run plain substring/identifier searches over the masked text and report
//! positions that map 1:1 back onto the original file.

/// A source file with comments, literals and test-only items blanked out.
///
/// `masked` has exactly the same length and line structure as `raw`; any byte
/// belonging to a comment, a string/char/byte literal or a `#[cfg(test)]`
/// item is replaced by an ASCII space.
#[derive(Debug, Clone)]
pub struct MaskedSource {
    /// The original file contents.
    pub raw: String,
    /// The masked contents (same length, comments/literals/test code blanked).
    pub masked: String,
}

impl MaskedSource {
    /// Masks comments, literals and `#[cfg(test)]` items in `raw`.
    pub fn new(raw: &str) -> Self {
        let mut masked = mask_comments_and_literals(raw);
        mask_cfg_test_items(&mut masked);
        MaskedSource {
            raw: raw.to_string(),
            masked: String::from_utf8_lossy(&masked).into_owned(),
        }
    }

    /// 1-based line number of byte offset `pos` in the file.
    pub fn line_of(&self, pos: usize) -> usize {
        self.raw.as_bytes()[..pos.min(self.raw.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1
    }

    /// The raw text of the 1-based line `line`, trimmed, for diagnostics.
    pub fn raw_line(&self, line: usize) -> &str {
        self.raw
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim()
    }
}

fn blank(buf: &mut [u8], from: usize, to: usize) {
    for b in buf.iter_mut().take(to).skip(from) {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Replaces comments and string/char/byte literals with spaces.
///
/// Handles line comments (`//`, `///`, `//!`), nested block comments,
/// ordinary and raw (byte) strings with arbitrary `#` counts, char literals
/// with escapes, and distinguishes lifetimes (`'a`) from char literals
/// (`'a'`). Operates on bytes; multi-byte UTF-8 content inside masked spans
/// is blanked byte-wise, which keeps offsets stable.
fn mask_comments_and_literals(src: &str) -> Vec<u8> {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let n = bytes.len();
    let mut i = 0;
    while i < n {
        match bytes[i] {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let start = i;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && bytes[i] == b'/' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < n {
                    match bytes[i] {
                        b'\\' => i = (i + 2).min(n),
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let start = i;
                // Skip the `r` / `br` / `b` prefix.
                i += 1;
                if i < n && (bytes[i] == b'r' || bytes[i] == b'b') && bytes[i - 1] != bytes[i] {
                    i += 1;
                }
                if i < n && (bytes[i] == b'#' || bytes[i] == b'"') {
                    let mut hashes = 0usize;
                    while i < n && bytes[i] == b'#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && bytes[i] == b'"' {
                        i += 1;
                        // Scan for `"` followed by `hashes` hash marks.
                        'scan: while i < n {
                            if bytes[i] == b'"' {
                                let mut j = i + 1;
                                let mut seen = 0usize;
                                while j < n && bytes[j] == b'#' && seen < hashes {
                                    seen += 1;
                                    j += 1;
                                }
                                if seen == hashes {
                                    i = j;
                                    break 'scan;
                                }
                            }
                            i += 1;
                        }
                        blank(&mut out, start, i);
                    } else {
                        // `r#ident` raw identifier — leave as code.
                        i = start + 1;
                    }
                } else {
                    // Plain `b"..."` byte string is handled by the `"` arm on
                    // the next iteration; `b'x'` by the `'` arm.
                    i = start + 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime. `'\...'` and `'<char>'` are
                // literals; `'ident` (not followed by a closing quote) is a
                // lifetime/loop label and stays as code.
                let start = i;
                if i + 1 < n && bytes[i + 1] == b'\\' {
                    i += 2;
                    while i < n && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(n);
                    blank(&mut out, start, i);
                } else {
                    // Find the extent of one UTF-8 char after the quote.
                    let ch_end = src[i + 1..]
                        .char_indices()
                        .nth(1)
                        .map(|(o, _)| i + 1 + o)
                        .unwrap_or(n);
                    if ch_end < n && bytes[ch_end] == b'\'' {
                        i = ch_end + 1;
                        blank(&mut out, start, i);
                    } else {
                        i += 1;
                    }
                }
            }
            _ => i += 1,
        }
    }
    out
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Word-boundary check: `r"` must not trigger inside an identifier like
    // `var"` (impossible) or `attr` (no quote); require the previous byte to
    // not be an identifier byte.
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j < n && bytes[j] == b'r' {
            j += 1;
        } else {
            return false; // plain byte string/char handled elsewhere
        }
    } else {
        j += 1; // past the `r`
    }
    while j < n && bytes[j] == b'#' {
        j += 1;
    }
    j < n && bytes[j] == b'"'
}

/// Whether `b` can be part of a Rust identifier (ASCII approximation).
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blanks every `#[cfg(test)]` item (attribute through the end of the item).
///
/// After the attribute, any further attributes are skipped, then the item is
/// taken to extend to its matching closing brace (for `mod`/`fn`/`impl`
/// bodies) or to the first `;` if no brace opens first (e.g. `use` items).
fn mask_cfg_test_items(masked: &mut [u8]) {
    const NEEDLE: &[u8] = b"#[cfg(test)]";
    let mut from = 0usize;
    loop {
        let Some(at) = find_from(masked, NEEDLE, from) else {
            return;
        };
        let n = masked.len();
        let mut i = at + NEEDLE.len();
        // Skip whitespace and any further attributes.
        loop {
            while i < n && masked[i].is_ascii_whitespace() {
                i += 1;
            }
            if i + 1 < n && masked[i] == b'#' && masked[i + 1] == b'[' {
                let mut depth = 0usize;
                while i < n {
                    match masked[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            } else {
                break;
            }
        }
        // Find the item extent: first `{` before any `;` → matching `}`;
        // otherwise the `;` ends it.
        let mut end = i;
        while end < n && masked[end] != b'{' && masked[end] != b';' {
            end += 1;
        }
        if end < n && masked[end] == b'{' {
            let mut depth = 0usize;
            while end < n {
                match masked[end] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            end += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
        } else if end < n {
            end += 1; // include the `;`
        }
        blank(masked, at, end);
        from = end.max(at + 1);
    }
}

/// Finds `needle` in `haystack` starting at `from`.
pub fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}
