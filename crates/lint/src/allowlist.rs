//! The `lint.toml` allowlist: suppressions with mandatory justifications.
//!
//! The file is a sequence of `[[allow]]` tables parsed by a minimal in-tree
//! TOML-subset reader (string and integer values only — the container has no
//! crates.io access, so no real TOML crate). Every entry must carry a
//! written `justification`; entries that match nothing are reported as
//! *stale* so suppressions expire the moment the code they covered is fixed.
//!
//! ```toml
//! [[allow]]
//! rule = "T1"
//! path = "crates/eval/src/runner.rs"
//! contains = "Mutex"        # optional: substring of the offending line
//! max = 12                  # optional: cap on matched diagnostics
//! justification = "ScenarioCache slot machinery, audited in PR 4"
//! ```

use crate::rules::Diagnostic;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule ID the entry suppresses (`D1`, ... `A1`).
    pub rule: String,
    /// Repo-relative file path, or a directory prefix ending in `/`.
    pub path: String,
    /// Optional substring the offending source line must contain.
    pub contains: Option<String>,
    /// Optional cap on how many diagnostics the entry may absorb.
    pub max: Option<usize>,
    /// The mandatory written justification.
    pub justification: String,
    /// 1-based line of the `[[allow]]` header in `lint.toml`, for reporting.
    pub line: usize,
}

impl AllowEntry {
    /// Whether this entry covers `diag`.
    pub fn matches(&self, diag: &Diagnostic) -> bool {
        if self.rule != diag.rule {
            return false;
        }
        let path_ok = if self.path.ends_with('/') {
            diag.path.starts_with(self.path.as_str())
        } else {
            diag.path == self.path
        };
        if !path_ok {
            return false;
        }
        match &self.contains {
            Some(needle) => diag.snippet.contains(needle.as_str()),
            None => true,
        }
    }

    /// Short human identification of the entry for reports.
    pub fn describe(&self) -> String {
        match &self.contains {
            Some(c) => format!(
                "{} {} contains {:?} (lint.toml:{})",
                self.rule, self.path, c, self.line
            ),
            None => format!("{} {} (lint.toml:{})", self.rule, self.path, self.line),
        }
    }
}

/// A parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// The entries, in file order (first match wins).
    pub entries: Vec<AllowEntry>,
}

/// A configuration error in `lint.toml` (malformed syntax, missing
/// justification, unknown key). These exit with status 2, not 1: a broken
/// allowlist must never silently pass the gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowlistError {
    /// 1-based line in `lint.toml`.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the TOML-subset allowlist text.
    pub fn parse(text: &str) -> Result<Self, AllowlistError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<AllowEntry> = None;
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw_line).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(done) = current.take() {
                    validate(&done)?;
                    entries.push(done);
                }
                current = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    contains: None,
                    max: None,
                    justification: String::new(),
                    line: lineno,
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("unexpected table `{line}`; only [[allow]] is supported"),
                });
            }
            let Some(entry) = current.as_mut() else {
                return Err(AllowlistError {
                    line: lineno,
                    message: "key outside an [[allow]] table".to_string(),
                });
            };
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => entry.rule = parse_string(value, lineno)?,
                "path" => entry.path = parse_string(value, lineno)?,
                "contains" => entry.contains = Some(parse_string(value, lineno)?),
                "justification" => entry.justification = parse_string(value, lineno)?,
                "max" => {
                    entry.max = Some(value.parse::<usize>().map_err(|_| AllowlistError {
                        line: lineno,
                        message: format!("`max` must be an integer, got `{value}`"),
                    })?)
                }
                other => {
                    return Err(AllowlistError {
                        line: lineno,
                        message: format!("unknown key `{other}` in [[allow]] entry"),
                    })
                }
            }
        }
        if let Some(done) = current.take() {
            validate(&done)?;
            entries.push(done);
        }
        Ok(Allowlist { entries })
    }
}

fn validate(entry: &AllowEntry) -> Result<(), AllowlistError> {
    if entry.rule.is_empty() {
        return Err(AllowlistError {
            line: entry.line,
            message: "entry is missing `rule`".to_string(),
        });
    }
    if crate::rules::rule_info(&entry.rule).is_none() {
        return Err(AllowlistError {
            line: entry.line,
            message: format!("unknown rule `{}`", entry.rule),
        });
    }
    if entry.path.is_empty() {
        return Err(AllowlistError {
            line: entry.line,
            message: "entry is missing `path`".to_string(),
        });
    }
    if entry.justification.trim().is_empty() {
        return Err(AllowlistError {
            line: entry.line,
            message: "entry is missing a written `justification` — every suppression \
                      must explain why the invariant holds anyway"
                .to_string(),
        });
    }
    Ok(())
}

/// Strips a `#` comment, respecting `"` quoting.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Parses a double-quoted TOML basic string with `\"`/`\\` escapes.
fn parse_string(value: &str, lineno: usize) -> Result<String, AllowlistError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .ok_or_else(|| AllowlistError {
            line: lineno,
            message: format!("expected a double-quoted string, got `{value}`"),
        })?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    return Err(AllowlistError {
                        line: lineno,
                        message: format!("unsupported escape `\\{other}`"),
                    })
                }
                None => {
                    return Err(AllowlistError {
                        line: lineno,
                        message: "dangling escape at end of string".to_string(),
                    })
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}
