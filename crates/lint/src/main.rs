//! CLI for `reveil-lint`: scans the workspace (or an arbitrary tree) and
//! gates on the checked-in `lint.toml` allowlist.

use std::path::PathBuf;
use std::process::ExitCode;

use reveil_lint::{allowlist::Allowlist, rules, scan};

const USAGE: &str = "\
reveil-lint — in-tree invariant checker (determinism, panic-freedom, zero-alloc)

USAGE:
    cargo run -p reveil-lint -- [--workspace] [--root <dir>] [--allowlist <file>|none]
                                [--list-rules] [--quiet]

MODES:
    --workspace         scan the library code of every workspace member
                        (default; workspace root found by walking up from cwd)
    --root <dir>        scan every .rs file under <dir> instead (fixture trees)

OPTIONS:
    --allowlist <file>  allowlist path (default: <root>/lint.toml if present;
                        `none` disables)
    --list-rules        print the rule registry and exit
    --quiet             print only the summary line

EXIT CODES:
    0  clean            1  violations or stale allowlist entries
    2  usage/config error";

struct Options {
    root: Option<PathBuf>,
    allowlist: Option<String>,
    list_rules: bool,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        allowlist: None,
        list_rules: false,
        quiet: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => {}
            "--root" => {
                i += 1;
                let dir = args.get(i).ok_or("--root requires a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--allowlist" => {
                i += 1;
                let file = args.get(i).ok_or("--allowlist requires a file argument")?;
                opts.allowlist = Some(file.clone());
            }
            "--list-rules" => opts.list_rules = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(opts)
}

/// Walks up from the current directory to the workspace root (the first
/// `Cargo.toml` containing a `[workspace]` table).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("reveil-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::RULES {
            println!("{}  {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let (files, default_allowlist) = match &opts.root {
        Some(root) => (scan::tree_files(root), root.join("lint.toml")),
        None => {
            let Some(root) = find_workspace_root() else {
                eprintln!("reveil-lint: no workspace Cargo.toml found above the current directory");
                return ExitCode::from(2);
            };
            (scan::workspace_files(&root), root.join("lint.toml"))
        }
    };
    let files = match files {
        Ok(files) => files,
        Err(err) => {
            eprintln!("reveil-lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };

    let allowlist = match opts.allowlist.as_deref() {
        Some("none") => Allowlist::default(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(list) => list,
                Err(err) => {
                    eprintln!("reveil-lint: {err}");
                    return ExitCode::from(2);
                }
            },
            Err(err) => {
                eprintln!("reveil-lint: cannot read allowlist `{path}`: {err}");
                return ExitCode::from(2);
            }
        },
        None => match std::fs::read_to_string(&default_allowlist) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(list) => list,
                Err(err) => {
                    eprintln!("reveil-lint: {err}");
                    return ExitCode::from(2);
                }
            },
            Err(_) => Allowlist::default(),
        },
    };

    let report = match scan::run(&files, &allowlist) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("reveil-lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };

    if !opts.quiet {
        for diag in &report.violations {
            println!("{}", diag.render());
        }
        for stale in &report.stale_entries {
            println!("{stale}");
        }
        for over in &report.over_budget {
            println!("{over}");
        }
    }
    println!(
        "reveil-lint: {} file(s), {} violation(s), {} allowlisted, {} stale allowlist entr(y/ies)",
        report.files_scanned,
        report.violations.len(),
        report.allowlisted.len(),
        report.stale_entries.len() + report.over_budget.len(),
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
