//! Fixture-based tests for `reveil-lint`: per-rule violating and clean
//! samples, allowlist match/expiry semantics, `#[cfg(test)]`/string/comment
//! false-positive cases, and binary exit-code behavior.

use std::path::PathBuf;
use std::process::Command;

use reveil_lint::rules::check_file;
use reveil_lint::source::MaskedSource;
use reveil_lint::{scan, Allowlist, Diagnostic};

fn fixture_dir(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn check_str(source: &str, path: &str, is_crate_root: bool) -> Vec<Diagnostic> {
    check_file(&MaskedSource::new(source), path, is_crate_root)
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = diags.iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

fn read_fixture(rel: &str) -> String {
    let path = fixture_dir(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

// --- per-rule violating fixtures -----------------------------------------

#[test]
fn d1_flags_unordered_maps() {
    let diags = check_str(&read_fixture("violating/d1.rs"), "d1.rs", false);
    assert!(diags.iter().all(|d| d.rule == "D1"), "{diags:?}");
    assert_eq!(diags.len(), 3, "use + two constructor sites: {diags:?}");
    assert!(
        diags[0].render().contains("d1.rs:2"),
        "{}",
        diags[0].render()
    );
}

#[test]
fn d2_flags_wall_clock_reads() {
    let diags = check_str(&read_fixture("violating/d2.rs"), "d2.rs", false);
    assert_eq!(rules_of(&diags), ["D2"], "{diags:?}");
    assert_eq!(diags.len(), 2);
}

#[test]
fn p1_flags_panic_escape_hatches() {
    let diags = check_str(&read_fixture("violating/p1.rs"), "p1.rs", false);
    assert_eq!(rules_of(&diags), ["P1"], "{diags:?}");
    let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains("panic!")),
        "{messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains(".unwrap()")),
        "{messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains(".expect(")),
        "{messages:?}"
    );
}

#[test]
fn t1_flags_sync_primitives_and_spawns() {
    let diags = check_str(&read_fixture("violating/t1.rs"), "t1.rs", false);
    assert_eq!(rules_of(&diags), ["T1"], "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("thread spawn")),
        "{diags:?}"
    );
}

#[test]
fn t1_exempts_the_designated_parallel_module() {
    let source = "pub fn team() -> std::sync::Mutex<u8> { std::sync::Mutex::new(0) }\n";
    assert!(check_str(source, "crates/tensor/src/parallel.rs", false).is_empty());
    assert_eq!(
        check_str(source, "crates/other/src/parallel.rs", false).len(),
        2
    );
}

#[test]
fn h1_flags_missing_forbid_on_crate_roots_only() {
    let source = read_fixture("violating/h1/src/lib.rs");
    let diags = check_str(&source, "h1/src/lib.rs", true);
    assert_eq!(rules_of(&diags), ["H1"], "{diags:?}");
    // The same text as a non-root module is fine.
    assert!(check_str(&source, "h1/src/util.rs", false).is_empty());
}

#[test]
fn a1_flags_allocations_in_into_functions() {
    let diags = check_str(&read_fixture("violating/a1.rs"), "a1.rs", false);
    assert_eq!(rules_of(&diags), ["A1"], "{diags:?}");
    assert!(
        diags.iter().all(|d| d.message.contains("gather_into")),
        "{diags:?}"
    );
}

#[test]
fn a1_ignores_allocations_outside_into_functions() {
    let source = "pub fn gather(src: &[f32]) -> Vec<f32> { src.to_vec() }\n";
    assert!(check_str(source, "m.rs", false).is_empty());
}

#[test]
fn a1_respects_the_resize_idiom() {
    let source = "pub fn copy_into(s: &[usize], out: &mut Vec<usize>) {\n    \
                  resize_buffer(out, s.to_vec().len());\n}\n";
    assert!(check_str(source, "m.rs", false).is_empty());
}

// --- false-positive traps -------------------------------------------------

#[test]
fn clean_fixture_tree_is_clean() {
    let files = scan::tree_files(&fixture_dir("clean")).unwrap();
    assert!(!files.is_empty());
    let report = scan::run(&files, &Allowlist::default()).unwrap();
    assert!(report.clean(), "{:?}", report.violations);
    assert!(report.violations.is_empty());
}

#[test]
fn strings_and_comments_never_match() {
    let source = "#![forbid(unsafe_code)]\n\
                  // HashMap, Instant::now(), .unwrap(), panic!(\"no\")\n\
                  /* Mutex and thread::spawn in a block comment */\n\
                  pub fn f() -> &'static str {\n    \
                  \".unwrap() HashMap Instant Mutex panic!\"\n}\n";
    assert!(check_str(source, "src/lib.rs", true).is_empty());
}

#[test]
fn raw_strings_and_char_literals_never_match() {
    let source = "pub fn f<'a>() {\n    \
                  let _r = r#\"panic!(\"x\") .expect(\"y\") HashMap\"#;\n    \
                  let _q = '\"';\n    \
                  let _e = '\\'';\n    \
                  let _still_code: Option<u8> = None;\n}\n";
    assert!(check_str(source, "m.rs", false).is_empty());
}

#[test]
fn cfg_test_blocks_are_exempt() {
    let source = "pub fn lib_code() {}\n\
                  #[cfg(test)]\n\
                  mod tests {\n    \
                  use std::collections::HashMap;\n    \
                  #[test]\n    \
                  fn t() {\n        \
                  let mut m = HashMap::new();\n        \
                  m.insert(1, std::time::Instant::now());\n        \
                  m.get(&1).unwrap();\n        \
                  panic!(\"fine in tests\");\n    \
                  }\n}\n";
    assert!(check_str(source, "m.rs", false).is_empty());
}

#[test]
fn code_after_a_cfg_test_block_is_still_scanned() {
    let source = "#[cfg(test)]\n\
                  mod tests {\n    fn t() { Some(1).unwrap(); }\n}\n\
                  pub fn after() { Some(1).unwrap(); }\n";
    let diags = check_str(source, "m.rs", false);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 5);
}

#[test]
fn unwrap_or_variants_are_not_flagged() {
    let source = "pub fn f(x: Option<u8>) -> u8 {\n    \
                  x.unwrap_or(0).max(x.unwrap_or_default()).max(x.unwrap_or_else(|| 1))\n}\n";
    assert!(check_str(source, "m.rs", false).is_empty());
}

// --- allowlist match/expiry semantics ------------------------------------

fn one_violation() -> (Vec<scan::LintFile>, tempdir::TempTree) {
    let tree = tempdir::TempTree::new("reveil_lint_allow");
    tree.write(
        "src/util.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let files = scan::tree_files(tree.root()).unwrap();
    (files, tree)
}

#[test]
fn allowlist_suppresses_matching_diagnostics() {
    let (files, _tree) = one_violation();
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"P1\"\npath = \"src/util.rs\"\ncontains = \".unwrap()\"\n\
         justification = \"fixture: provably infallible\"\n",
    )
    .unwrap();
    let report = scan::run(&files, &allow).unwrap();
    assert!(report.clean(), "{:?}", report.violations);
    assert_eq!(report.allowlisted.len(), 1);
}

#[test]
fn allowlist_supports_directory_prefixes() {
    let (files, _tree) = one_violation();
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"P1\"\npath = \"src/\"\n\
         justification = \"fixture: whole-directory suppression\"\n",
    )
    .unwrap();
    let report = scan::run(&files, &allow).unwrap();
    assert!(report.clean());
}

#[test]
fn stale_allowlist_entries_fail_the_gate() {
    let (files, _tree) = one_violation();
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"P1\"\npath = \"src/util.rs\"\ncontains = \".unwrap()\"\n\
         justification = \"covers the real site\"\n\
         [[allow]]\nrule = \"D1\"\npath = \"src/util.rs\"\n\
         justification = \"expired: the HashMap is long gone\"\n",
    )
    .unwrap();
    let report = scan::run(&files, &allow).unwrap();
    assert!(!report.clean());
    assert_eq!(report.stale_entries.len(), 1, "{:?}", report.stale_entries);
    assert!(
        report.stale_entries[0].contains("stale"),
        "{:?}",
        report.stale_entries
    );
}

#[test]
fn exceeding_the_max_budget_fails_the_gate() {
    let tree = tempdir::TempTree::new("reveil_lint_budget");
    tree.write(
        "src/util.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
         pub fn g(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let files = scan::tree_files(tree.root()).unwrap();
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"P1\"\npath = \"src/util.rs\"\nmax = 1\n\
         justification = \"only one site is audited\"\n",
    )
    .unwrap();
    let report = scan::run(&files, &allow).unwrap();
    assert!(!report.clean());
    assert_eq!(report.over_budget.len(), 1, "{:?}", report.over_budget);
}

#[test]
fn allowlist_rejects_entries_without_justification() {
    let err = Allowlist::parse("[[allow]]\nrule = \"P1\"\npath = \"src/util.rs\"\n")
        .expect_err("missing justification must be a config error");
    assert!(err.message.contains("justification"), "{err}");
}

#[test]
fn allowlist_rejects_unknown_rules_and_keys() {
    assert!(
        Allowlist::parse("[[allow]]\nrule = \"Z9\"\npath = \"a.rs\"\njustification = \"x\"\n")
            .is_err()
    );
    assert!(Allowlist::parse(
        "[[allow]]\nrule = \"P1\"\npath = \"a.rs\"\nreason = \"wrong key\"\n"
    )
    .is_err());
}

#[test]
fn allowlist_parses_comments_and_escapes() {
    let allow = Allowlist::parse(
        "# header comment\n\
         [[allow]] # trailing\n\
         rule = \"P1\" # also trailing\n\
         path = \"src/util.rs\"\n\
         contains = \"expect(\\\"x # not a comment\\\")\"\n\
         justification = \"escaped \\\"quotes\\\" survive\"\n",
    )
    .unwrap();
    assert_eq!(allow.entries.len(), 1);
    assert_eq!(
        allow.entries[0].contains.as_deref(),
        Some("expect(\"x # not a comment\")")
    );
    assert_eq!(allow.entries[0].justification, "escaped \"quotes\" survive");
}

// --- binary exit codes ----------------------------------------------------

fn run_binary(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_reveil-lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn reveil-lint")
}

#[test]
fn binary_exits_zero_on_the_clean_tree() {
    let out = run_binary(&["--root", "fixtures/clean", "--allowlist", "none"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn binary_exits_one_on_planted_violations() {
    let out = run_binary(&["--root", "fixtures/violating", "--allowlist", "none"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["[D1]", "[D2]", "[P1]", "[T1]", "[H1]", "[A1]"] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn binary_exits_two_on_a_malformed_allowlist() {
    let tree = tempdir::TempTree::new("reveil_lint_badtoml");
    tree.write("lint.toml", "[[allow]]\nrule = \"P1\"\n");
    tree.write("src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n");
    let root = tree.root().to_string_lossy().into_owned();
    let out = run_binary(&["--root", &root]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn binary_exits_two_on_unknown_arguments() {
    let out = run_binary(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn workspace_member_parsing_reads_the_manifest() {
    let members = scan::parse_members(
        "[workspace]\nmembers = [\n    \"crates/a\", # inline comment\n    \"crates/b\",\n]\n",
    );
    assert_eq!(members, ["crates/a", "crates/b"]);
}

/// Minimal scoped temp-dir helper (std-only; no tempfile crate in-tree).
mod tempdir {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct TempTree {
        root: PathBuf,
    }

    impl TempTree {
        pub fn new(tag: &str) -> Self {
            let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
            let root = std::env::temp_dir().join(format!("{tag}_{}_{unique}", std::process::id()));
            std::fs::create_dir_all(&root).expect("create temp tree");
            TempTree { root }
        }

        pub fn root(&self) -> &Path {
            &self.root
        }

        pub fn write(&self, rel: &str, contents: &str) {
            let path = self.root.join(rel);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).expect("create parent");
            }
            std::fs::write(path, contents).expect("write fixture");
        }
    }

    impl Drop for TempTree {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.root).ok();
        }
    }
}
