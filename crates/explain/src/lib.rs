//! GradCAM attribution and heat-map rendering (paper Fig. 2).
//!
//! The paper motivates camouflage with GradCAM: a model trained on clean +
//! poison data focuses its class-evidence attention on the trigger patch,
//! while a model that also saw noisy poison samples (camouflage) disperses
//! that attention. [`grad_cam`] reproduces the attribution;
//! [`render`] writes heat maps as PPM/PGM images or ASCII art, and
//! [`CamMap::region_mass`] quantifies "attention on the trigger" so the
//! Fig. 2 comparison becomes a measurable number.
//!
//! # Example
//!
//! ```
//! use reveil_explain::grad_cam;
//! use reveil_nn::models;
//! use reveil_tensor::Tensor;
//!
//! let mut net = models::tiny_cnn(3, 8, 8, 4, 4, 1);
//! let image = Tensor::full(&[3, 8, 8], 0.5);
//! let cam = grad_cam(&mut net, &image, 0).expect("spatial backbone");
//! assert_eq!(cam.map().shape(), &[8, 8]);
//! // Attention is normalised into [0, 1].
//! assert!(cam.map().max() <= 1.0 && cam.map().min() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod render;

pub use error::ExplainError;

use reveil_nn::{Mode, Network};
use reveil_tensor::Tensor;

/// A GradCAM attention map.
#[derive(Debug, Clone, PartialEq)]
pub struct CamMap {
    /// Attention upsampled to the input resolution, normalised to `[0, 1]`.
    map: Tensor,
    /// Attention at the resolution of the attributed convolutional layer.
    raw: Tensor,
    /// The class the attribution explains.
    class: usize,
}

impl CamMap {
    /// Attention at input resolution (`[h, w]`, values in `[0, 1]`).
    pub fn map(&self) -> &Tensor {
        &self.map
    }

    /// Attention at the attributed layer's spatial resolution.
    pub fn raw(&self) -> &Tensor {
        &self.raw
    }

    /// The explained class.
    pub fn class(&self) -> usize {
        self.class
    }

    /// Fraction of total attention mass inside the rectangle starting at
    /// `(y0, x0)` with size `height × width` (input-resolution
    /// coordinates). This is the Fig. 2 "focus on the trigger" statistic.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle exceeds the map bounds.
    pub fn region_mass(&self, y0: usize, x0: usize, height: usize, width: usize) -> f32 {
        // The map is rank-2 by construction (built in `grad_cam`).
        let (h, w) = (self.map.shape()[0], self.map.shape()[1]);
        assert!(
            y0 + height <= h && x0 + width <= w,
            "region exceeds map bounds"
        );
        let total = self.map.sum();
        if total <= 0.0 {
            return 0.0;
        }
        let mut inside = 0.0;
        for y in y0..y0 + height {
            for x in x0..x0 + width {
                inside += self.map.at(&[y, x]);
            }
        }
        inside / total
    }
}

/// Bilinear resize of a map that is rank-2 by construction.
fn resize_bilinear(map: &Tensor, out_h: usize, out_w: usize) -> Tensor {
    let (h, w) = (map.shape()[0], map.shape()[1]);
    let mut out = Tensor::zeros(&[out_h, out_w]);
    for y in 0..out_h {
        let fy = if out_h > 1 {
            y as f32 * (h - 1) as f32 / (out_h - 1) as f32
        } else {
            0.0
        };
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(h - 1);
        let ty = fy - y0 as f32;
        for x in 0..out_w {
            let fx = if out_w > 1 {
                x as f32 * (w - 1) as f32 / (out_w - 1) as f32
            } else {
                0.0
            };
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(w - 1);
            let tx = fx - x0 as f32;
            let v = map.at(&[y0, x0]) * (1.0 - ty) * (1.0 - tx)
                + map.at(&[y0, x1]) * (1.0 - ty) * tx
                + map.at(&[y1, x0]) * ty * (1.0 - tx)
                + map.at(&[y1, x1]) * ty * tx;
            out.set(&[y, x], v);
        }
    }
    out
}

/// Computes the GradCAM attention of `network` for `image` towards
/// `class`.
///
/// The attribution layer is the last spatial (rank-4) activation of the
/// backbone; channel weights are the spatially averaged gradients of the
/// class logit, and the map is `relu(Σ_c w_c · A_c)` normalised to `[0, 1]`
/// and upsampled to the input resolution.
///
/// # Errors
///
/// Returns [`ExplainError`] if `image` is not `[c, h, w]`, `class` is out
/// of range, or the backbone has no spatial activation (e.g. an MLP probe).
pub fn grad_cam(
    network: &mut Network,
    image: &Tensor,
    class: usize,
) -> Result<CamMap, ExplainError> {
    let &[_, h, w] = image.shape() else {
        return Err(ExplainError::BadShape {
            expected: "a [c, h, w] image",
            got: image.shape().to_vec(),
        });
    };
    if class >= network.num_classes() {
        return Err(ExplainError::ClassOutOfRange {
            class,
            num_classes: network.num_classes(),
        });
    }

    network.set_recording(true);
    let batch = match Tensor::stack(std::slice::from_ref(image)) {
        Ok(batch) => batch,
        Err(e) => {
            network.set_recording(false);
            return Err(ExplainError::Tensor(e));
        }
    };
    let logits = network.forward(&batch, Mode::Eval);
    let mut grad_logits = Tensor::zeros(logits.shape());
    grad_logits.data_mut()[class] = 1.0;
    network.zero_grads();
    let _ = network.backward_to_input(&grad_logits);

    let Some(spatial_idx) = network
        .backbone_activations()
        .iter()
        .rposition(|a| a.ndim() == 4)
    else {
        network.set_recording(false);
        return Err(ExplainError::NoSpatialActivation);
    };
    let activation = network.backbone_activations()[spatial_idx].clone();
    let grads = network.backbone_boundary_grads()[spatial_idx].clone();
    network.set_recording(false);

    // The activation was selected for `ndim() == 4` above.
    let (c, ah, aw) = (
        activation.shape()[1],
        activation.shape()[2],
        activation.shape()[3],
    );
    let plane = ah * aw;
    let mut cam = Tensor::zeros(&[ah, aw]);
    for ch in 0..c {
        let g_mean: f32 = grads.data()[ch * plane..(ch + 1) * plane]
            .iter()
            .sum::<f32>()
            / plane as f32;
        for q in 0..plane {
            cam.data_mut()[q] += g_mean * activation.data()[ch * plane + q];
        }
    }
    cam.map_inplace(|v| v.max(0.0));
    let raw = cam.clone();

    let mut map = resize_bilinear(&cam, h, w);
    let max = map.max();
    if max > 0.0 {
        map.scale(1.0 / max);
    }
    Ok(CamMap { map, raw, class })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveil_nn::models;
    use reveil_nn::train::{TrainConfig, Trainer};
    use reveil_tensor::rng;

    #[test]
    fn cam_shape_and_normalisation() {
        let mut net = models::tiny_cnn(3, 8, 8, 4, 4, 7);
        let image = Tensor::from_fn(&[3, 8, 8], |i| (i % 9) as f32 / 9.0);
        let cam = grad_cam(&mut net, &image, 2).unwrap();
        assert_eq!(cam.map().shape(), &[8, 8]);
        assert_eq!(cam.class(), 2);
        assert!(cam.map().min() >= 0.0);
        assert!(cam.map().max() <= 1.0 + 1e-6);
    }

    #[test]
    fn attention_concentrates_on_a_learned_trigger() {
        // Train a model whose class 0 is *defined* by a bright corner patch;
        // GradCAM for class 0 on a patched image must put outsized mass on
        // the patch region.
        let mut r = rng::rng_from_seed(1);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let class = i % 2;
            let mut img = Tensor::zeros(&[1, 12, 12]);
            rng::fill_uniform(&mut img, 0.3, 0.7, &mut r);
            if class == 0 {
                for y in 0..3 {
                    for x in 0..3 {
                        img.set(&[0, y, x], 1.0);
                    }
                }
            }
            images.push(img);
            labels.push(class);
        }
        // GradCAM's ReLU can zero the whole map when a tiny net happens to
        // encode the class through negative activations, so check the best
        // CAM across two inits: whenever attention materialises at all it
        // must land on the patch.
        let patch_mass = [5u64, 7]
            .into_iter()
            .map(|net_seed| {
                let mut net = models::tiny_cnn(1, 12, 12, 2, 8, net_seed);
                Trainer::new(TrainConfig::new(10, 16, 5e-3).with_seed(4))
                    .fit(&mut net, &images, &labels);
                let cam = grad_cam(&mut net, &images[0], 0).unwrap();
                cam.region_mass(0, 0, 4, 4)
            })
            .fold(0.0f32, f32::max);
        // The patch is 16/144 ≈ 11% of the area; focused attention should
        // hold several times that.
        assert!(
            patch_mass > 0.3,
            "attention on trigger region only {patch_mass}"
        );
    }

    #[test]
    fn region_mass_sums_to_one_over_full_map() {
        let mut net = models::tiny_cnn(3, 8, 8, 3, 4, 9);
        let image = Tensor::from_fn(&[3, 8, 8], |i| (i % 5) as f32 / 5.0);
        let cam = grad_cam(&mut net, &image, 0).unwrap();
        let full = cam.region_mass(0, 0, 8, 8);
        assert!((full - 1.0).abs() < 1e-5 || cam.map().sum() == 0.0);
    }

    #[test]
    #[should_panic(expected = "region exceeds")]
    fn region_mass_bounds_checked() {
        let mut net = models::tiny_cnn(3, 8, 8, 3, 4, 9);
        let image = Tensor::zeros(&[3, 8, 8]);
        let cam = grad_cam(&mut net, &image, 0).unwrap();
        cam.region_mass(6, 6, 4, 4);
    }

    #[test]
    fn resize_bilinear_identity_and_upscale() {
        let map = Tensor::from_vec(vec![2, 2], vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let same = resize_bilinear(&map, 2, 2);
        assert_eq!(same, map);
        let up = resize_bilinear(&map, 4, 4);
        assert_eq!(up.shape(), &[4, 4]);
        // Center of an upscaled checkerboard interpolates towards 0.5.
        assert!((up.at(&[1, 1]) - 0.55).abs() < 0.25);
    }
}
