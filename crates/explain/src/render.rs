//! Heat-map rendering: ASCII art and PPM/PGM image writers.

use std::io::Write;
use std::path::Path;

use crate::ExplainError;
use reveil_tensor::Tensor;

/// Renders a rank-2 map (values in `[0, 1]`) as ASCII art using a
/// brightness ramp.
///
/// # Errors
///
/// Returns [`ExplainError::BadShape`] if `map` is not rank-2.
pub fn to_ascii(map: &Tensor) -> Result<String, ExplainError> {
    let &[h, w] = map.shape() else {
        return Err(ExplainError::BadShape {
            expected: "an [h, w] map",
            got: map.shape().to_vec(),
        });
    };
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::with_capacity(h * (w + 1));
    for y in 0..h {
        for x in 0..w {
            let v = map.at(&[y, x]).clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    Ok(out)
}

/// Writes a rank-2 map as a binary PGM (grey-scale) image.
///
/// # Errors
///
/// Returns [`ExplainError::BadShape`] if `map` is not rank-2, and
/// [`ExplainError::Io`] for any error creating or writing the file.
pub fn write_pgm(map: &Tensor, path: impl AsRef<Path>) -> Result<(), ExplainError> {
    let &[h, w] = map.shape() else {
        return Err(ExplainError::BadShape {
            expected: "an [h, w] map",
            got: map.shape().to_vec(),
        });
    };
    let mut file = std::fs::File::create(path)?;
    write!(file, "P5\n{w} {h}\n255\n")?;
    let bytes: Vec<u8> = map
        .data()
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect();
    file.write_all(&bytes)?;
    Ok(())
}

/// Maps `v ∈ [0, 1]` to an RGB heat colour (blue → cyan → yellow → red).
pub fn heat_color(v: f32) -> [u8; 3] {
    let v = v.clamp(0.0, 1.0);
    let (r, g, b) = if v < 0.25 {
        (0.0, v / 0.25, 1.0)
    } else if v < 0.5 {
        (0.0, 1.0, 1.0 - (v - 0.25) / 0.25)
    } else if v < 0.75 {
        ((v - 0.5) / 0.25, 1.0, 0.0)
    } else {
        (1.0, 1.0 - (v - 0.75) / 0.25, 0.0)
    };
    [(r * 255.0) as u8, (g * 255.0) as u8, (b * 255.0) as u8]
}

/// Writes a heat-map overlay as a binary PPM (colour) image: the base image
/// in grey, blended with the heat colours of `map`.
///
/// `image` is `[c, h, w]` in `[0, 1]` (1 or 3 channels); `map` is `[h, w]`.
///
/// # Errors
///
/// Returns [`ExplainError::BadShape`] on a shape mismatch between `image`
/// and `map`, and [`ExplainError::Io`] for any error creating or writing
/// the file.
pub fn write_overlay_ppm(
    image: &Tensor,
    map: &Tensor,
    alpha: f32,
    path: impl AsRef<Path>,
) -> Result<(), ExplainError> {
    let &[c, h, w] = image.shape() else {
        return Err(ExplainError::BadShape {
            expected: "a [c, h, w] image",
            got: image.shape().to_vec(),
        });
    };
    if map.shape() != [h, w] {
        return Err(ExplainError::BadShape {
            expected: "an [h, w] map matching the image",
            got: map.shape().to_vec(),
        });
    }
    let mut file = std::fs::File::create(path)?;
    write!(file, "P6\n{w} {h}\n255\n")?;
    let mut bytes = Vec::with_capacity(h * w * 3);
    for y in 0..h {
        for x in 0..w {
            let grey = if c >= 3 {
                0.299 * image.at(&[0, y, x])
                    + 0.587 * image.at(&[1, y, x])
                    + 0.114 * image.at(&[2, y, x])
            } else {
                image.at(&[0, y, x])
            };
            let heat = heat_color(map.at(&[y, x]));
            let base = grey * 255.0;
            for &h in &heat {
                let v = (1.0 - alpha) * base + alpha * h as f32;
                bytes.push(v.clamp(0.0, 255.0) as u8);
            }
        }
    }
    file.write_all(&bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_ramp_is_monotone() {
        let map = Tensor::from_vec(vec![1, 3], vec![0.0, 0.5, 1.0]).unwrap();
        let art = to_ascii(&map).unwrap();
        assert_eq!(art, " +@\n");
    }

    #[test]
    fn pgm_roundtrip_header() {
        let map = Tensor::from_fn(&[4, 6], |i| i as f32 / 23.0);
        let path = std::env::temp_dir().join("reveil_test_cam.pgm");
        write_pgm(&map, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n6 4\n255\n"));
        assert_eq!(bytes.len(), 11 + 24);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heat_color_endpoints() {
        assert_eq!(heat_color(0.0), [0, 0, 255]);
        assert_eq!(heat_color(1.0), [255, 0, 0]);
        let mid = heat_color(0.5);
        assert!(mid[1] > 200, "midpoint is green-ish: {mid:?}");
    }

    #[test]
    fn overlay_ppm_writes_rgb_grid() {
        let image = Tensor::full(&[3, 2, 2], 0.5);
        let map = Tensor::from_vec(vec![2, 2], vec![0.0, 0.3, 0.7, 1.0]).unwrap();
        let path = std::env::temp_dir().join("reveil_test_overlay.ppm");
        write_overlay_ppm(&image, &map, 0.5, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 12);
        std::fs::remove_file(&path).ok();
    }
}
