//! Structured errors for GradCAM attribution and heat-map rendering.

use std::error::Error;
use std::fmt;

use reveil_tensor::TensorError;

/// Error type for the attribution/rendering crate.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplainError {
    /// An input tensor had the wrong rank/shape for the operation.
    BadShape {
        /// The operation and the shape it expected.
        expected: &'static str,
        /// The shape that was provided.
        got: Vec<usize>,
    },
    /// The attributed class index exceeds the network's class count.
    ClassOutOfRange {
        /// The requested class.
        class: usize,
        /// The network's class count.
        num_classes: usize,
    },
    /// The backbone has no spatial (rank-4) activation to attribute
    /// (e.g. an MLP probe).
    NoSpatialActivation,
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Writing a rendered image failed.
    Io(String),
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::BadShape { expected, got } => {
                write!(f, "expected {expected}, got shape {got:?}")
            }
            ExplainError::ClassOutOfRange { class, num_classes } => {
                write!(f, "class {class} out of range for {num_classes} classes")
            }
            ExplainError::NoSpatialActivation => {
                write!(
                    f,
                    "grad_cam needs a spatial (rank-4) activation in the backbone"
                )
            }
            ExplainError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            ExplainError::Io(message) => write!(f, "image write failed: {message}"),
        }
    }
}

impl Error for ExplainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExplainError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ExplainError {
    fn from(e: TensorError) -> Self {
        ExplainError::Tensor(e)
    }
}

impl From<std::io::Error> for ExplainError {
    fn from(e: std::io::Error) -> Self {
        ExplainError::Io(e.to_string())
    }
}
