//! Property-based tests of the NN substrate: state round-trips, loss
//! gradient structure, and schedule monotonicity across random
//! configurations.

use proptest::prelude::*;

use reveil_nn::loss::softmax_cross_entropy;
use reveil_nn::models::ModelFamily;
use reveil_nn::optim::CosineAnnealing;
use reveil_nn::Mode;
use reveil_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn state_roundtrip_is_identity(
        family_idx in 0usize..3, classes in 2usize..6, seed in 0u64..100,
    ) {
        let family = [ModelFamily::MlpProbe, ModelFamily::TinyCnn, ModelFamily::MobileNetTiny]
            [family_idx];
        let mut net = family.build(3, 8, 8, classes, 4, seed);
        let state = net.state_vec();
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 9) as f32 * 0.1);
        let before = net.forward(&x, Mode::Eval);
        net.load_state(&state).expect("same architecture");
        let after = net.forward(&x, Mode::Eval);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn ce_gradient_rows_sum_to_zero(
        n in 1usize..6, k in 2usize..8, seed in 0u64..50,
    ) {
        let logits = Tensor::from_fn(&[n, k], |i| {
            (((i as u64).wrapping_mul(seed + 1) % 17) as f32 - 8.0) * 0.3
        });
        let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
        let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        prop_assert!(loss >= 0.0);
        for row in grad.data().chunks(k) {
            let sum: f32 = row.iter().sum();
            prop_assert!(sum.abs() < 1e-5, "row sums to {}", sum);
        }
    }

    #[test]
    fn cosine_schedule_is_monotone_decreasing(
        base_lr in 1e-5f32..1.0, t_max in 1usize..200,
    ) {
        let sched = CosineAnnealing::new(base_lr, t_max);
        prop_assert!((sched.lr_at(0) - base_lr).abs() < 1e-6);
        for t in 1..=t_max {
            prop_assert!(sched.lr_at(t) <= sched.lr_at(t - 1) + 1e-9);
        }
        prop_assert!(sched.lr_at(t_max) < base_lr * 1e-3 + 1e-9);
    }

    #[test]
    fn forward_is_deterministic_in_eval_mode(
        seed in 0u64..50, n in 1usize..4,
    ) {
        let mut net = ModelFamily::TinyCnn.build(3, 8, 8, 3, 4, seed);
        let x = Tensor::from_fn(&[n, 3, 8, 8], |i| (i % 7) as f32 * 0.1);
        let a = net.forward(&x, Mode::Eval);
        let b = net.forward(&x, Mode::Eval);
        prop_assert_eq!(a, b);
    }
}
