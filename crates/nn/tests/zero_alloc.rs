//! The zero-allocation training-step contract, enforced end to end.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! batch, one full training step (forward → loss → backward → optimizer
//! step) over a model using **every** layer type must perform zero heap
//! allocations on the serial path (`parallel::serialized`, where the
//! fork–join plumbing of the worker team is pinned off — thread spawns are
//! the one allocation source the parallel path legitimately keeps).
//!
//! Alongside the strict allocator count, this file pins:
//! * bit-identity of the pooled-buffer path (`TrainStep`) against the
//!   allocate-per-call wrappers (`Network::forward` /
//!   `softmax_cross_entropy` / `Network::backward_to_input`) over a full
//!   fixed-seed training run, and
//! * capacity stability: a second epoch grows no buffer (mirroring the
//!   scratch-reuse tests in `crates/tensor`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use reveil_nn::layers::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, InvertedResidual, Linear, MaxPool2d, Relu,
    ResidualBlock,
};
use reveil_nn::loss::softmax_cross_entropy;
use reveil_nn::optim::{Adam, Optimizer, Sgd};
use reveil_nn::train::{TrainConfig, TrainStep, Trainer};
use reveil_nn::{Mode, Network, Sequential};
use reveil_tensor::{parallel, rng, Tensor};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The allocation counter is process-global, so the tests in this binary
/// must not run concurrently (libtest defaults to one thread per core):
/// every test holds this lock for its whole body, keeping sibling
/// allocations out of the measured window.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A compact network that routes a batch through every layer type in the
/// crate: conv, batch-norm, ReLU, max-pool, residual block (projected
/// shortcut), MobileNet inverted residual (ReLU6 + depthwise conv),
/// EfficientNet MBConv (SiLU + squeeze-excite, i.e. GAP + linears +
/// sigmoid inside), global average pooling, flatten and linear.
fn all_layers_net() -> Network {
    let mut r = rng::rng_from_seed(23);
    let backbone = Sequential::new()
        .push(Conv2d::new(3, 6, 3, 1, 1, &mut r).unwrap())
        .push(BatchNorm2d::new(6).unwrap())
        .push(Relu::new())
        .push(MaxPool2d::new(2).unwrap())
        .push(ResidualBlock::new(6, 8, 2, &mut r).unwrap())
        .push(InvertedResidual::mobilenet(8, 8, 1, 2, &mut r).unwrap())
        .push(InvertedResidual::mbconv(8, 8, 1, 2, &mut r).unwrap())
        .push(GlobalAvgPool::new());
    let head = Sequential::new()
        .push(Flatten::new())
        .push(Linear::new(8, 4, &mut r).unwrap());
    Network::new(backbone, head, (3, 16, 16), 4, "all_layers_probe")
}

/// Smoke-batch-sized input (batch 32) with round-robin labels.
fn smoke_batch() -> (Tensor, Vec<usize>) {
    let mut batch = Tensor::zeros(&[32, 3, 16, 16]);
    let mut r = rng::rng_from_seed(31);
    rng::fill_gaussian(&mut batch, 0.4, 0.25, &mut r);
    let labels = (0..32).map(|i| i % 4).collect();
    (batch, labels)
}

fn assert_zero_alloc_steps(opt: &mut dyn Optimizer, opt_name: &str) {
    let mut net = all_layers_net();
    let (batch, labels) = smoke_batch();
    let mut step = TrainStep::new();
    parallel::serialized(|| {
        // Warm-up: buffers, optimizer state and GEMM pack scratch all
        // reach their steady-state capacity.
        for _ in 0..2 {
            step.run(&mut net, opt, &batch, &labels).expect("warm-up");
        }
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..3 {
            step.run(&mut net, opt, &batch, &labels).expect("step");
        }
        let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
        assert_eq!(
            allocs, 0,
            "{opt_name}: a warmed-up training step must perform zero heap \
             allocations, counted {allocs} across 3 steps"
        );
    });
}

#[test]
fn warmed_up_training_step_performs_zero_heap_allocations() {
    let _serial = serial();
    assert_zero_alloc_steps(&mut Adam::new(5e-3).with_weight_decay(1e-4), "Adam");
    assert_zero_alloc_steps(
        &mut Sgd::new(5e-3).with_momentum(0.9).with_weight_decay(1e-4),
        "SGD+momentum",
    );
}

#[test]
fn pooled_step_is_bit_identical_to_allocate_per_call_training() {
    let _serial = serial();
    // Deterministic toy set large enough for several batches per epoch.
    let mut images = Vec::new();
    let mut labels = Vec::new();
    let mut r = rng::rng_from_seed(77);
    for i in 0..48 {
        let mut img = Tensor::full(&[3, 16, 16], 0.1 * (i % 4) as f32 + 0.2);
        rng::fill_gaussian(&mut img, 0.0, 0.3, &mut r);
        images.push(img);
        labels.push(i % 4);
    }
    let cfg = TrainConfig::new(2, 16, 5e-3)
        .with_seed(13)
        .with_weight_decay(1e-4);

    // Pooled path: the Trainer drives TrainStep's reused buffers.
    let mut pooled_net = all_layers_net();
    let mut pooled_opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    Trainer::new(cfg.clone()).fit_with(&mut pooled_net, &mut pooled_opt, &images, &labels);

    // Allocate-per-call path: the same schedule hand-rolled through the
    // allocating wrappers (fresh logits/gradient tensors every batch).
    let mut alloc_net = all_layers_net();
    let mut alloc_opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    for epoch in 0..cfg.epochs {
        alloc_opt.set_lr(cfg.lr);
        let mut er = rng::rng_from_seed(rng::derive_seed(cfg.seed, 0xE90C_0000 | epoch as u64));
        let order = rng::permutation(images.len(), &mut er);
        for chunk in order.chunks(cfg.batch_size) {
            let samples: Vec<Tensor> = chunk.iter().map(|&i| images[i].clone()).collect();
            let batch = Tensor::stack(&samples).expect("stack");
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            let logits = alloc_net.forward(&batch, Mode::Train);
            let (_, grad) = softmax_cross_entropy(&logits, &batch_labels).expect("loss");
            alloc_net.zero_grads();
            alloc_net.backward_to_input(&grad);
            alloc_opt.step(&mut alloc_net);
        }
    }

    assert_eq!(
        pooled_net.state_vec(),
        alloc_net.state_vec(),
        "pooled-buffer training must be bit-identical to the allocate-per-call path"
    );
}

#[test]
fn release_buffers_frees_everything_and_training_recovers() {
    let _serial = serial();
    let mut net = all_layers_net();
    let (batch, labels) = smoke_batch();
    let mut opt = Adam::new(5e-3).with_weight_decay(1e-4);
    let mut step = TrainStep::new();
    step.run(&mut net, &mut opt, &batch, &labels).expect("warm");
    assert!(net.buffer_capacity() > 0);

    // Reference: the state after two steps on an untouched network.
    let mut reference = all_layers_net();
    let mut ref_opt = Adam::new(5e-3).with_weight_decay(1e-4);
    let mut ref_step = TrainStep::new();
    ref_step
        .run(&mut reference, &mut ref_opt, &batch, &labels)
        .expect("ref warm");
    ref_step
        .run(&mut reference, &mut ref_opt, &batch, &labels)
        .expect("ref step");

    // Releasing drops every pooled buffer without touching parameters or
    // persistent state, and training picks up bit-identically after.
    net.release_buffers();
    assert_eq!(
        net.buffer_capacity(),
        0,
        "release_buffers must drop every pooled buffer"
    );
    step.run(&mut net, &mut opt, &batch, &labels)
        .expect("resume");
    assert_eq!(
        net.state_vec(),
        reference.state_vec(),
        "training must continue bit-identically after release_buffers"
    );
}

#[test]
fn second_epoch_triggers_no_buffer_growth() {
    let _serial = serial();
    let mut net = all_layers_net();
    let (batch, labels) = smoke_batch();
    let mut opt = Adam::new(5e-3).with_weight_decay(1e-4);
    let mut step = TrainStep::new();

    // "Epoch" = a few batches; after the first one every buffer is warm.
    for _ in 0..4 {
        step.run(&mut net, &mut opt, &batch, &labels).expect("step");
    }
    let warmed = net.buffer_capacity() + step.buffer_capacity();
    assert!(warmed > 0, "the pooled substrate must report its buffers");
    for _ in 0..4 {
        step.run(&mut net, &mut opt, &batch, &labels).expect("step");
    }
    assert_eq!(
        net.buffer_capacity() + step.buffer_capacity(),
        warmed,
        "a second epoch must not grow any pooled buffer"
    );
}
