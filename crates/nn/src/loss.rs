//! Loss functions.

use reveil_tensor::Tensor;

use crate::NnError;

/// Mean softmax cross-entropy over a batch, returning the scalar loss and
/// the gradient with respect to the logits.
///
/// `logits` has shape `[n, classes]`; `labels` holds `n` class indices. The
/// returned gradient is `(softmax(logits) − onehot(labels)) / n`, ready to
/// feed into `Network::backward_to_input`.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if `logits` is not rank-2, if
/// `labels.len()` differs from the batch size, or if any label is out of
/// range — malformed inputs surface as structured errors instead of
/// aborting mid-training.
///
/// # Example
///
/// ```
/// use reveil_nn::loss::softmax_cross_entropy;
/// use reveil_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let logits = Tensor::from_vec(vec![1, 2], vec![2.0, 0.0])?;
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0])?;
/// assert!(loss < 0.2, "confident correct prediction has low loss");
/// assert_eq!(grad.shape(), &[1, 2]);
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor), NnError> {
    let mut grad = Tensor::default();
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad)?;
    Ok((loss, grad))
}

/// [`softmax_cross_entropy`] writing the gradient into a caller-provided
/// tensor, reusing its allocation — the zero-allocation training-step path
/// (`TrainStep` in [`crate::train`] holds the gradient buffer across
/// batches). Results are bit-identical to the allocating variant.
///
/// # Errors
///
/// Same conditions as [`softmax_cross_entropy`].
pub fn softmax_cross_entropy_into(
    logits: &Tensor,
    labels: &[usize],
    grad: &mut Tensor,
) -> Result<f32, NnError> {
    // Validate everything up front so no tensor op below can fail.
    let &[n, k] = logits.shape() else {
        return Err(NnError::InvalidConfig {
            what: "softmax_cross_entropy",
            message: format!(
                "expects [n, classes] logits, got shape {:?}",
                logits.shape()
            ),
        });
    };
    if labels.len() != n {
        return Err(NnError::InvalidConfig {
            what: "softmax_cross_entropy",
            message: format!("batch of {n} logit rows got {} labels", labels.len()),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(NnError::InvalidConfig {
            what: "softmax_cross_entropy",
            message: format!("label {bad} out of range for {k} classes"),
        });
    }
    // Row-wise softmax straight into the gradient buffer (same max-shifted
    // arithmetic as `ops::softmax_rows`, without its fresh output tensor).
    grad.resize_for_overwrite(logits.shape());
    grad.data_mut().copy_from_slice(logits.data());
    for row in grad.data_mut().chunks_mut(k) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    let mut loss = 0.0f32;
    let inv_n = 1.0 / n as f32;
    for (i, &label) in labels.iter().enumerate() {
        let p = grad.data()[i * k + label].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * k + label] -= 1.0;
    }
    grad.scale(inv_n);
    Ok(loss * inv_n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
        // Gradient sums to zero per row.
        for row in grad.data().chunks(10) {
            assert!(row.iter().sum::<f32>().abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for probe in 0..6 {
            let mut plus = logits.clone();
            plus.data_mut()[probe] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[probe] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &labels).unwrap();
            let (lm, _) = softmax_cross_entropy(&minus, &labels).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[probe]).abs() < 1e-3,
                "probe {probe}: {numeric} vs {}",
                grad.data()[probe]
            );
        }
    }

    #[test]
    fn confident_wrong_prediction_has_high_loss() {
        let logits = Tensor::from_vec(vec![1, 2], vec![10.0, -10.0]).unwrap();
        let (loss_correct, _) = softmax_cross_entropy(&logits, &[0]).unwrap();
        let (loss_wrong, _) = softmax_cross_entropy(&logits, &[1]).unwrap();
        assert!(loss_wrong > 10.0 * loss_correct);
    }

    #[test]
    fn rejects_out_of_range_label_with_structured_error() {
        let err = softmax_cross_entropy(&Tensor::zeros(&[1, 2]), &[5]).unwrap_err();
        assert!(
            matches!(err, NnError::InvalidConfig { .. }),
            "out-of-range label must be a structured error, got {err}"
        );
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn rejects_malformed_logits_without_panicking() {
        // Rank-1 logits: previously an abort via panic!, now a Result whose
        // message states the required shape.
        let err = softmax_cross_entropy(&Tensor::zeros(&[4]), &[0]).unwrap_err();
        assert!(matches!(err, NnError::InvalidConfig { .. }), "{err}");
        assert!(err.to_string().contains("[n, classes]"), "{err}");
        // Rank-3 logits.
        let err = softmax_cross_entropy(&Tensor::zeros(&[1, 2, 3]), &[0]).unwrap_err();
        assert!(err.to_string().contains("softmax_cross_entropy"), "{err}");
    }

    #[test]
    fn rejects_label_count_mismatch() {
        let err = softmax_cross_entropy(&Tensor::zeros(&[2, 3]), &[0]).unwrap_err();
        assert!(matches!(err, NnError::InvalidConfig { .. }), "{err}");
    }
}
