//! Ordered layer container with optional activation recording.

use reveil_tensor::Tensor;

use crate::layers::resize_buffer;
use crate::{Layer, Mode, Param};

/// A chain of layers applied in order.
///
/// `Sequential` itself implements [`Layer`], so chains nest (residual blocks
/// hold `Sequential` bodies).
///
/// Activations and gradients ping-pong through one persistent boundary
/// buffer per interior layer boundary: layer `i` writes its output into the
/// chain's `i`-th buffer and layer `i+1` reads it back, so a warmed-up
/// forward/backward pass allocates nothing — only the chain's final output
/// goes into the caller-provided tensor.
///
/// When recording is enabled via [`Sequential::set_recording`], `forward`
/// stores each layer's output and `backward` stores the gradient arriving at
/// each layer boundary. GradCAM uses these to pair the last spatial
/// activation with its gradient; Beatrix reads penultimate features from the
/// same mechanism. Recording clones every boundary tensor, so it is
/// deliberately outside the zero-allocation contract.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    record: bool,
    activations: Vec<Tensor>,
    boundary_grads: Vec<Tensor>,
    /// Per-boundary forward buffers: `fwd_bufs[i]` holds layer `i`'s output
    /// (the last layer writes into the caller's tensor instead).
    fwd_bufs: Vec<Tensor>,
    /// Per-boundary backward buffers: `bwd_bufs[i]` holds the gradient
    /// flowing into layer `i+1` (i.e. out of layer `i+1`'s backward).
    bwd_bufs: Vec<Tensor>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("record", &self.record)
            .finish()
    }
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain contains no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Enables or disables activation/gradient recording.
    ///
    /// Recording clones every intermediate activation; leave it off during
    /// training and enable it only for attribution or feature extraction.
    pub fn set_recording(&mut self, record: bool) {
        self.record = record;
        if !record {
            self.activations.clear();
            self.boundary_grads.clear();
        }
    }

    /// Outputs of each layer from the last recorded forward pass
    /// (`activations()[i]` is the output of layer `i`).
    pub fn activations(&self) -> &[Tensor] {
        &self.activations
    }

    /// Gradients with respect to each layer's output from the last recorded
    /// backward pass, indexed like [`Sequential::activations`].
    pub fn boundary_grads(&self) -> &[Tensor] {
        &self.boundary_grads
    }

    /// The pooled layer-boundary outputs of the last forward pass:
    /// `boundary_outputs()[i]` is layer `i`'s output for `i < len − 1` (the
    /// final layer writes the caller's `out` tensor instead). Unlike
    /// [`Sequential::activations`] this needs no recording mode and no
    /// per-boundary clone — it reads the ping-pong buffers the forward pass
    /// already fills — so eval-time consumers (Beatrix's spatial-activation
    /// probe) stay on the zero-allocation path.
    pub fn boundary_outputs(&self) -> &[Tensor] {
        &self.fwd_bufs
    }

    /// Layer names in order (diagnostics).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Grows a boundary-buffer vector to `len` entries (existing buffers
    /// keep their allocations).
    fn ensure_bufs(bufs: &mut Vec<Tensor>, len: usize) {
        if bufs.len() < len {
            bufs.resize_with(len, Tensor::default);
        }
    }
}

impl Layer for Sequential {
    fn forward_into(&mut self, input: &Tensor, mode: Mode, out: &mut Tensor) {
        if self.record {
            self.activations.clear();
        }
        let n = self.layers.len();
        if n == 0 {
            resize_buffer(out, input.shape());
            out.data_mut().copy_from_slice(input.data());
            return;
        }
        Self::ensure_bufs(&mut self.fwd_bufs, n.saturating_sub(1));
        for i in 0..n {
            let (prev, rest) = self.fwd_bufs.split_at_mut(i);
            let src: &Tensor = if i == 0 { input } else { &prev[i - 1] };
            let dst: &mut Tensor = if i == n - 1 { &mut *out } else { &mut rest[0] };
            self.layers[i].forward_into(src, mode, dst);
            if self.record {
                self.activations.push(dst.clone());
            }
        }
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if self.record {
            self.boundary_grads.clear();
            self.boundary_grads
                .resize(self.layers.len(), Tensor::default());
        }
        let n = self.layers.len();
        if n == 0 {
            resize_buffer(grad_input, grad_output.shape());
            grad_input.data_mut().copy_from_slice(grad_output.data());
            return;
        }
        Self::ensure_bufs(&mut self.bwd_bufs, n.saturating_sub(1));
        for i in (0..n).rev() {
            let (prev, rest) = self.bwd_bufs.split_at_mut(i);
            let src: &Tensor = if i == n - 1 { grad_output } else { &rest[0] };
            let dst: &mut Tensor = if i == 0 {
                &mut *grad_input
            } else {
                &mut prev[i - 1]
            };
            if self.record {
                self.boundary_grads[i] = src.clone();
            }
            self.layers[i].backward_into(src, dst);
        }
    }

    fn buffer_capacity(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.buffer_capacity())
            .chain(self.fwd_bufs.iter().map(Tensor::capacity))
            .chain(self.bwd_bufs.iter().map(Tensor::capacity))
            .sum()
    }

    fn release_buffers(&mut self) {
        for layer in &mut self.layers {
            layer.release_buffers();
        }
        self.fwd_bufs = Vec::new();
        self.bwd_bufs = Vec::new();
        self.activations.clear();
        self.boundary_grads.clear();
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_state(f);
        }
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use reveil_tensor::rng;

    fn two_layer() -> Sequential {
        let mut r = rng::rng_from_seed(3);
        Sequential::new()
            .push(Linear::new(4, 8, &mut r).unwrap())
            .push(Relu::new())
            .push(Linear::new(8, 2, &mut r).unwrap())
    }

    #[test]
    fn forward_chains_layers() {
        let mut net = two_layer();
        let x = Tensor::ones(&[3, 4]);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
    }

    #[test]
    fn recording_captures_all_activations_and_grads() {
        let mut net = two_layer();
        net.set_recording(true);
        let x = Tensor::ones(&[2, 4]);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(net.activations().len(), 3);
        assert_eq!(net.activations()[2], y);
        assert_eq!(net.activations()[0].shape(), &[2, 8]);

        let g = Tensor::ones(y.shape());
        net.backward(&g);
        assert_eq!(net.boundary_grads().len(), 3);
        assert_eq!(net.boundary_grads()[2], g);
        assert_eq!(net.boundary_grads()[0].shape(), &[2, 8]);

        net.set_recording(false);
        assert!(net.activations().is_empty());
    }

    #[test]
    fn backward_matches_composed_layers() {
        // Gradient through sequential == gradient through manual chain.
        let mut r = rng::rng_from_seed(5);
        let mut a = Linear::new(3, 3, &mut r).unwrap();
        let mut r2 = rng::rng_from_seed(5);
        let mut chain = Sequential::new().push(Linear::new(3, 3, &mut r2).unwrap());

        let x = Tensor::from_fn(&[2, 3], |i| i as f32 * 0.5);
        let g = Tensor::ones(&[2, 3]);
        let y1 = a.forward(&x, Mode::Train);
        let y2 = chain.forward(&x, Mode::Train);
        assert_eq!(y1, y2);
        assert_eq!(a.backward(&g), chain.backward(&g));
    }

    #[test]
    fn visit_params_counts_all_layers() {
        let mut net = two_layer();
        let mut count = 0;
        net.visit_params(&mut |_| count += 1);
        assert_eq!(count, 4, "two linear layers x (weight, bias)");
    }

    #[test]
    fn debug_lists_layer_names() {
        let net = two_layer();
        let dbg = format!("{net:?}");
        assert!(dbg.contains("linear"));
        assert!(dbg.contains("relu"));
    }

    #[test]
    fn empty_chain_is_identity() {
        let mut net = Sequential::new();
        let x = Tensor::from_fn(&[2, 3], |i| i as f32);
        assert_eq!(net.forward(&x, Mode::Eval), x);
        assert_eq!(net.backward(&x), x);
    }

    #[test]
    fn boundary_buffers_do_not_grow_once_warmed() {
        let mut net = two_layer();
        let x = Tensor::ones(&[3, 4]);
        let mut out = Tensor::default();
        let mut dx = Tensor::default();
        net.forward_into(&x, Mode::Train, &mut out);
        let g = Tensor::ones(out.shape());
        net.backward_into(&g, &mut dx);
        let warmed = net.buffer_capacity();
        for _ in 0..3 {
            net.forward_into(&x, Mode::Train, &mut out);
            net.backward_into(&g, &mut dx);
            assert_eq!(net.buffer_capacity(), warmed);
        }
    }
}
