//! Ordered layer container with optional activation recording.

use reveil_tensor::Tensor;

use crate::{Layer, Mode, Param};

/// A chain of layers applied in order.
///
/// `Sequential` itself implements [`Layer`], so chains nest (residual blocks
/// hold `Sequential` bodies).
///
/// When recording is enabled via [`Sequential::set_recording`], `forward`
/// stores each layer's output and `backward` stores the gradient arriving at
/// each layer boundary. GradCAM uses these to pair the last spatial
/// activation with its gradient; Beatrix reads penultimate features from the
/// same mechanism.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    record: bool,
    activations: Vec<Tensor>,
    boundary_grads: Vec<Tensor>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("record", &self.record)
            .finish()
    }
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain contains no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Enables or disables activation/gradient recording.
    ///
    /// Recording clones every intermediate activation; leave it off during
    /// training and enable it only for attribution or feature extraction.
    pub fn set_recording(&mut self, record: bool) {
        self.record = record;
        if !record {
            self.activations.clear();
            self.boundary_grads.clear();
        }
    }

    /// Outputs of each layer from the last recorded forward pass
    /// (`activations()[i]` is the output of layer `i`).
    pub fn activations(&self) -> &[Tensor] {
        &self.activations
    }

    /// Gradients with respect to each layer's output from the last recorded
    /// backward pass, indexed like [`Sequential::activations`].
    pub fn boundary_grads(&self) -> &[Tensor] {
        &self.boundary_grads
    }

    /// Layer names in order (diagnostics).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if self.record {
            self.activations.clear();
        }
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward(&current, mode);
            if self.record {
                self.activations.push(current.clone());
            }
        }
        current
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        if self.record {
            self.boundary_grads.clear();
            self.boundary_grads
                .resize(self.layers.len(), Tensor::default());
        }
        let mut grad = grad_output.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            if self.record {
                self.boundary_grads[i] = grad.clone();
            }
            grad = layer.backward(&grad);
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_state(f);
        }
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use reveil_tensor::rng;

    fn two_layer() -> Sequential {
        let mut r = rng::rng_from_seed(3);
        Sequential::new()
            .push(Linear::new(4, 8, &mut r).unwrap())
            .push(Relu::new())
            .push(Linear::new(8, 2, &mut r).unwrap())
    }

    #[test]
    fn forward_chains_layers() {
        let mut net = two_layer();
        let x = Tensor::ones(&[3, 4]);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
    }

    #[test]
    fn recording_captures_all_activations_and_grads() {
        let mut net = two_layer();
        net.set_recording(true);
        let x = Tensor::ones(&[2, 4]);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(net.activations().len(), 3);
        assert_eq!(net.activations()[2], y);
        assert_eq!(net.activations()[0].shape(), &[2, 8]);

        let g = Tensor::ones(y.shape());
        net.backward(&g);
        assert_eq!(net.boundary_grads().len(), 3);
        assert_eq!(net.boundary_grads()[2], g);
        assert_eq!(net.boundary_grads()[0].shape(), &[2, 8]);

        net.set_recording(false);
        assert!(net.activations().is_empty());
    }

    #[test]
    fn backward_matches_composed_layers() {
        // Gradient through sequential == gradient through manual chain.
        let mut r = rng::rng_from_seed(5);
        let mut a = Linear::new(3, 3, &mut r).unwrap();
        let mut r2 = rng::rng_from_seed(5);
        let mut chain = Sequential::new().push(Linear::new(3, 3, &mut r2).unwrap());

        let x = Tensor::from_fn(&[2, 3], |i| i as f32 * 0.5);
        let g = Tensor::ones(&[2, 3]);
        let y1 = a.forward(&x, Mode::Train);
        let y2 = chain.forward(&x, Mode::Train);
        assert_eq!(y1, y2);
        assert_eq!(a.backward(&g), chain.backward(&g));
    }

    #[test]
    fn visit_params_counts_all_layers() {
        let mut net = two_layer();
        let mut count = 0;
        net.visit_params(&mut |_| count += 1);
        assert_eq!(count, 4, "two linear layers x (weight, bias)");
    }

    #[test]
    fn debug_lists_layer_names() {
        let net = two_layer();
        let dbg = format!("{net:?}");
        assert!(dbg.contains("linear"));
        assert!(dbg.contains("relu"));
    }
}
