//! Backbone + head network container with state checkpointing.

use reveil_tensor::Tensor;

use crate::{Layer, Mode, NnError, Param, Sequential};

/// A classifier split into a feature-extracting `backbone` (ending in global
/// pooling, output `[n, d]`) and a classification `head` (output
/// `[n, classes]`).
///
/// The split exists because the paper's defenses consume different cuts of
/// the model: Beatrix needs penultimate features ([`Network::features`]),
/// GradCAM needs recorded spatial activations
/// ([`Network::set_recording`] + [`Network::backbone_activations`]), and
/// Neural Cleanse needs input gradients ([`Network::backward_to_input`]).
pub struct Network {
    backbone: Sequential,
    head: Sequential,
    num_classes: usize,
    input_shape: (usize, usize, usize),
    family: &'static str,
    /// Reusable backbone-output buffer (forward hot path).
    features_buf: Tensor,
    /// Reusable feature-gradient buffer (backward hot path).
    grad_features_buf: Tensor,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("family", &self.family)
            .field("input_shape", &self.input_shape)
            .field("num_classes", &self.num_classes)
            .finish()
    }
}

impl Network {
    /// Assembles a network from a backbone and a head.
    ///
    /// `input_shape` is `(channels, height, width)` of a single image.
    pub fn new(
        backbone: Sequential,
        head: Sequential,
        input_shape: (usize, usize, usize),
        num_classes: usize,
        family: &'static str,
    ) -> Self {
        Self {
            backbone,
            head,
            num_classes,
            input_shape,
            family,
            features_buf: Tensor::default(),
            grad_features_buf: Tensor::default(),
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Expected single-image input shape `(c, h, w)`.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        self.input_shape
    }

    /// Model family label (e.g. `"resnet_tiny"`).
    pub fn family(&self) -> &'static str {
        self.family
    }

    /// Full forward pass: `[n, c, h, w] → [n, classes]` logits.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut logits = Tensor::default();
        self.forward_into(input, mode, &mut logits);
        logits
    }

    /// Full forward pass into a caller-provided logits tensor, reusing its
    /// allocation and the network's internal feature buffer — together with
    /// [`Network::backward_to_input_into`] this is the zero-allocation
    /// training-step path (see the [`Layer`] buffer-reuse contract).
    pub fn forward_into(&mut self, input: &Tensor, mode: Mode, logits: &mut Tensor) {
        self.backbone
            .forward_into(input, mode, &mut self.features_buf);
        self.head.forward_into(&self.features_buf, mode, logits);
    }

    /// Eval-mode forward pass into a caller-provided logits tensor: the
    /// pooled inference path for defense audits. Identical to
    /// [`Network::forward_into`] with [`Mode::Eval`] — zero heap
    /// allocations once warmed up, bit-identical to the allocating
    /// [`Network::forward`] wrapper.
    pub fn infer_into(&mut self, input: &Tensor, logits: &mut Tensor) {
        self.forward_into(input, Mode::Eval, logits);
    }

    /// Backbone features only: `[n, c, h, w] → [n, d]`.
    pub fn features(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut out = Tensor::default();
        self.features_into(input, mode, &mut out);
        out
    }

    /// Backbone features into a caller-provided tensor, reusing its
    /// allocation (the zero-allocation counterpart of
    /// [`Network::features`]). After this call
    /// [`Network::backbone_boundary_outputs`] exposes the interior layer
    /// outputs of the same pass without recording clones.
    pub fn features_into(&mut self, input: &Tensor, mode: Mode, out: &mut Tensor) {
        self.backbone.forward_into(input, mode, out);
    }

    /// Head only, on precomputed features.
    pub fn head_forward(&mut self, features: &Tensor, mode: Mode) -> Tensor {
        self.head.forward(features, mode)
    }

    /// Backward pass from a logits gradient all the way to the input,
    /// accumulating parameter gradients along the way.
    pub fn backward_to_input(&mut self, grad_logits: &Tensor) -> Tensor {
        let mut grad_input = Tensor::default();
        self.backward_to_input_into(grad_logits, &mut grad_input);
        grad_input
    }

    /// Backward pass into a caller-provided input-gradient tensor, reusing
    /// its allocation and the network's internal feature-gradient buffer
    /// (the zero-allocation counterpart of [`Network::backward_to_input`]).
    pub fn backward_to_input_into(&mut self, grad_logits: &Tensor, grad_input: &mut Tensor) {
        self.head
            .backward_into(grad_logits, &mut self.grad_features_buf);
        self.backbone
            .backward_into(&self.grad_features_buf, grad_input);
    }

    /// Total capacity in scalars of every reusable buffer in the network
    /// (layer scratch plus the container ping-pong buffers); see
    /// [`Layer::buffer_capacity`]. Stable across warmed-up training steps.
    pub fn buffer_capacity(&self) -> usize {
        self.backbone.buffer_capacity()
            + self.head.buffer_capacity()
            + self.features_buf.capacity()
            + self.grad_features_buf.capacity()
    }

    /// Drops every reusable buffer in the network (they re-grow on the
    /// next forward pass); see [`Layer::release_buffers`]. Call before
    /// parking a trained model in a long-lived cache so it does not pin
    /// training-batch-sized activation memory.
    pub fn release_buffers(&mut self) {
        self.backbone.release_buffers();
        self.head.release_buffers();
        self.features_buf = Tensor::default();
        self.grad_features_buf = Tensor::default();
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Visits every trainable parameter of backbone and head.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.backbone.visit_params(f);
        self.head.visit_params(f);
    }

    /// Visits only the classification head's parameters (used by defenses
    /// that weight features by how the decision layer reads them).
    pub fn visit_head_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.head.visit_params(f);
    }

    /// Visits every persistent tensor (parameters + buffers).
    pub fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.backbone.visit_state(f);
        self.head.visit_state(f);
    }

    /// Total number of trainable scalars.
    pub fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.len());
        count
    }

    /// Serialises all persistent tensors into one flat vector — the
    /// checkpoint format used by SISA slice snapshots.
    pub fn state_vec(&mut self) -> Vec<f32> {
        let mut state = Vec::new();
        self.visit_state(&mut |t| state.extend_from_slice(t.data()));
        state
    }

    /// Restores a checkpoint produced by [`Network::state_vec`] on a network
    /// with identical architecture.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateMismatch`] if the vector length differs from
    /// this network's state size.
    pub fn load_state(&mut self, state: &[f32]) -> Result<(), NnError> {
        let mut expected = 0;
        self.visit_state(&mut |t| expected += t.len());
        if expected != state.len() {
            return Err(NnError::StateMismatch {
                expected,
                got: state.len(),
            });
        }
        let mut offset = 0;
        self.visit_state(&mut |t| {
            let len = t.len();
            t.data_mut().copy_from_slice(&state[offset..offset + len]);
            offset += len;
        });
        Ok(())
    }

    /// Enables or disables activation recording on the backbone (for
    /// GradCAM-style attribution).
    pub fn set_recording(&mut self, record: bool) {
        self.backbone.set_recording(record);
    }

    /// Recorded backbone activations (see [`Sequential::activations`]).
    pub fn backbone_activations(&self) -> &[Tensor] {
        self.backbone.activations()
    }

    /// Pooled backbone layer-boundary outputs of the last forward pass
    /// (see [`Sequential::boundary_outputs`]): recording-free access to
    /// interior activations for eval-time consumers.
    pub fn backbone_boundary_outputs(&self) -> &[Tensor] {
        self.backbone.boundary_outputs()
    }

    /// Recorded backbone boundary gradients (see
    /// [`Sequential::boundary_grads`]).
    pub fn backbone_boundary_grads(&self) -> &[Tensor] {
        self.backbone.boundary_grads()
    }

    /// Layer names of the backbone in order (diagnostics).
    pub fn backbone_layer_names(&self) -> Vec<&'static str> {
        self.backbone.layer_names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, Relu};
    use reveil_tensor::rng;

    fn probe_net() -> Network {
        let mut r = rng::rng_from_seed(4);
        let backbone = Sequential::new()
            .push(Flatten::new())
            .push(Linear::new(12, 6, &mut r).unwrap())
            .push(Relu::new());
        let head = Sequential::new().push(Linear::new(6, 3, &mut r).unwrap());
        Network::new(backbone, head, (3, 2, 2), 3, "probe")
    }

    #[test]
    fn forward_produces_logits() {
        let mut net = probe_net();
        let x = Tensor::ones(&[5, 3, 2, 2]);
        let logits = net.forward(&x, Mode::Train);
        assert_eq!(logits.shape(), &[5, 3]);
        assert_eq!(net.num_classes(), 3);
        assert_eq!(net.input_shape(), (3, 2, 2));
    }

    #[test]
    fn features_then_head_equals_forward() {
        let mut net = probe_net();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| (i % 5) as f32);
        let direct = net.forward(&x, Mode::Eval);
        let features = net.features(&x, Mode::Eval);
        assert_eq!(features.shape(), &[2, 6]);
        let via_head = net.head_forward(&features, Mode::Eval);
        assert_eq!(direct, via_head);
    }

    #[test]
    fn state_roundtrip_restores_outputs() {
        let mut net = probe_net();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| (i % 7) as f32 * 0.3);
        let before = net.forward(&x, Mode::Eval);
        let snapshot = net.state_vec();

        // Perturb all parameters.
        net.visit_state(&mut |t| t.map_inplace(|v| v + 1.0));
        let perturbed = net.forward(&x, Mode::Eval);
        assert_ne!(before, perturbed);

        net.load_state(&snapshot).unwrap();
        let after = net.forward(&x, Mode::Eval);
        assert_eq!(before, after);
    }

    #[test]
    fn load_state_rejects_wrong_length() {
        let mut net = probe_net();
        let err = net.load_state(&[0.0; 3]).unwrap_err();
        assert!(matches!(err, NnError::StateMismatch { .. }));
    }

    #[test]
    fn backward_to_input_has_input_shape() {
        let mut net = probe_net();
        let x = Tensor::ones(&[2, 3, 2, 2]);
        let logits = net.forward(&x, Mode::Train);
        net.zero_grads();
        let dx = net.backward_to_input(&Tensor::ones(logits.shape()));
        assert_eq!(dx.shape(), x.shape());
        // At least one parameter gradient must be non-zero.
        let mut any_nonzero = false;
        net.visit_params(&mut |p| any_nonzero |= p.grad().data().iter().any(|&g| g != 0.0));
        assert!(any_nonzero);
    }

    #[test]
    fn param_count_is_stable() {
        let mut net = probe_net();
        // 12*6 + 6 + 6*3 + 3
        assert_eq!(net.param_count(), 99);
    }
}
