//! Mini-batch training loop and batched inference helpers.
//!
//! The hot path is [`TrainStep`]: one forward → loss → backward →
//! optimizer step through the pooled-buffer substrate
//! ([`Network::forward_into`], [`crate::loss::softmax_cross_entropy_into`],
//! [`Network::backward_to_input_into`] and the fused optimizer sweeps), so
//! a warmed-up step performs **zero heap allocations**. [`Trainer`] drives
//! `TrainStep` over shuffled mini-batches with every per-epoch buffer
//! (batch gather, labels, shuffle order) reused across iterations.

use reveil_tensor::{ops, rng, Tensor};

use crate::loss::softmax_cross_entropy_into;
use crate::optim::{Adam, CosineAnnealing, Optimizer};
use crate::{Mode, Network, NnError};

/// Learning-rate schedule selection for [`TrainConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant,
    /// Cosine annealing from the base LR to 0 over `t_max` epochs (the
    /// paper's recipe uses `t_max` = number of epochs).
    Cosine {
        /// Annealing horizon in epochs.
        t_max: usize,
    },
}

/// Hyper-parameters for one training run.
///
/// Build with [`TrainConfig::new`] and refine with the `with_*` builder
/// methods; [`TrainConfig::paper_recipe`] reproduces the paper's published
/// settings (Adam, lr 1e-3, weight decay 1e-4, batch 64, cosine annealing).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base learning rate.
    pub lr: f32,
    /// L2 weight decay passed to the optimizer.
    pub weight_decay: f32,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Seed controlling shuffle order.
    pub seed: u64,
    /// Whether to reshuffle the training set every epoch.
    pub shuffle: bool,
}

impl TrainConfig {
    /// Creates a config with the given epochs, batch size and learning rate
    /// (no weight decay, constant LR, shuffling on, seed 0).
    pub fn new(epochs: usize, batch_size: usize, lr: f32) -> Self {
        Self {
            epochs,
            batch_size: batch_size.max(1),
            lr,
            weight_decay: 0.0,
            schedule: LrSchedule::Constant,
            seed: 0,
            shuffle: true,
        }
    }

    /// The paper's training recipe scaled to `epochs`: Adam defaults with
    /// lr 1e-3, weight decay 1e-4, batch 64 and cosine annealing with
    /// `T_max = epochs`.
    pub fn paper_recipe(epochs: usize) -> Self {
        Self {
            epochs,
            batch_size: 64,
            lr: 1e-3,
            weight_decay: 1e-4,
            schedule: LrSchedule::Cosine { t_max: epochs },
            seed: 0,
            shuffle: true,
        }
    }

    /// Sets the shuffle seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets L2 weight decay (builder style).
    #[must_use]
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Switches to cosine annealing over `t_max` epochs (builder style).
    #[must_use]
    pub fn with_cosine_schedule(mut self, t_max: usize) -> Self {
        self.schedule = LrSchedule::Cosine { t_max };
        self
    }

    /// Disables per-epoch shuffling (builder style; useful for
    /// deterministic unit tests).
    #[must_use]
    pub fn without_shuffle(mut self) -> Self {
        self.shuffle = false;
        self
    }
}

/// Reusable buffers for one full training step: forward → loss →
/// backward → optimizer step.
///
/// Holds the logits, loss-gradient and input-gradient tensors across
/// batches, so after the first (warm-up) batch at a given shape a step
/// allocates nothing — the per-layer buffers, the GEMM pack scratch and
/// the optimizer state are likewise reused (see the [`crate::Layer`]
/// buffer-reuse contract). Results are bit-identical to driving the
/// allocating wrappers ([`Network::forward`] /
/// [`crate::loss::softmax_cross_entropy`] / [`Network::backward_to_input`])
/// by hand.
///
/// # Example
///
/// ```
/// use reveil_nn::{models, optim::Adam, train::TrainStep, Mode};
/// use reveil_tensor::Tensor;
///
/// # fn main() -> Result<(), reveil_nn::NnError> {
/// let mut net = models::mlp_probe(1, 8, 8, 2, 42);
/// let mut opt = Adam::new(0.01);
/// let mut step = TrainStep::new();
/// let batch = Tensor::ones(&[4, 1, 8, 8]);
/// let labels = [0, 1, 0, 1];
/// let loss = step.run(&mut net, &mut opt, &batch, &labels)?;
/// assert!(loss.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct TrainStep {
    logits: Tensor,
    grad_logits: Tensor,
    grad_input: Tensor,
}

impl TrainStep {
    /// Creates a step executor with empty buffers (they warm up on the
    /// first batch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one training step on `batch` (`[n, c, h, w]`) with `labels`
    /// (`n` class indices): forward in [`Mode::Train`], softmax
    /// cross-entropy, gradient reset, backward, optimizer step. Returns
    /// the batch loss.
    ///
    /// # Errors
    ///
    /// Propagates loss-input validation errors
    /// (see [`crate::loss::softmax_cross_entropy_into`]).
    pub fn run(
        &mut self,
        network: &mut Network,
        optimizer: &mut dyn Optimizer,
        batch: &Tensor,
        labels: &[usize],
    ) -> Result<f32, NnError> {
        network.forward_into(batch, Mode::Train, &mut self.logits);
        let loss = softmax_cross_entropy_into(&self.logits, labels, &mut self.grad_logits)?;
        network.zero_grads();
        network.backward_to_input_into(&self.grad_logits, &mut self.grad_input);
        optimizer.step(network);
        Ok(loss)
    }

    /// Total capacity in scalars of the step's own reusable buffers
    /// (logits, loss gradient, input gradient) — stable once warmed up.
    pub fn buffer_capacity(&self) -> usize {
        self.logits.capacity() + self.grad_logits.capacity() + self.grad_input.capacity()
    }
}

/// Summary statistics returned by [`Trainer::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training set after the final epoch (eval mode).
    pub final_train_accuracy: f32,
}

/// Mini-batch trainer executing a [`TrainConfig`] against a [`Network`].
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer for the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains with a fresh Adam optimizer (the paper's choice).
    ///
    /// `images` are single-sample `[c, h, w]` tensors; `labels[i]` is the
    /// class of `images[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty, lengths mismatch, or any image shape
    /// disagrees with the network's input shape.
    pub fn fit(&self, network: &mut Network, images: &[Tensor], labels: &[usize]) -> TrainReport {
        let mut opt = Adam::new(self.config.lr).with_weight_decay(self.config.weight_decay);
        self.fit_with(network, &mut opt, images, labels)
    }

    /// Trains with a caller-supplied optimizer, allowing optimizer state to
    /// persist across calls (SISA slice training uses this).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Trainer::fit`].
    pub fn fit_with(
        &self,
        network: &mut Network,
        optimizer: &mut dyn Optimizer,
        images: &[Tensor],
        labels: &[usize],
    ) -> TrainReport {
        assert!(!images.is_empty(), "cannot train on an empty dataset");
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        let (c, h, w) = network.input_shape();
        assert_eq!(
            images[0].shape(),
            &[c, h, w],
            "image shape {:?} does not match network input {:?}",
            images[0].shape(),
            (c, h, w)
        );

        let cfg = &self.config;
        let n = images.len();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        // Every per-batch buffer lives outside the loops and is reused:
        // after the first batch of the first epoch, an epoch allocates
        // nothing (capacity-stability is regression-tested).
        let mut batch = Tensor::zeros(&[0]);
        let mut batch_labels: Vec<usize> = Vec::new();
        let mut order: Vec<usize> = Vec::new();
        let mut step = TrainStep::new();

        for epoch in 0..cfg.epochs {
            let lr = match cfg.schedule {
                LrSchedule::Constant => cfg.lr,
                LrSchedule::Cosine { t_max } => CosineAnnealing::new(cfg.lr, t_max).lr_at(epoch),
            };
            optimizer.set_lr(lr);

            if cfg.shuffle {
                let mut r =
                    rng::rng_from_seed(rng::derive_seed(cfg.seed, 0xE90C_0000 | epoch as u64));
                rng::permutation_into(n, &mut r, &mut order);
            } else {
                order.clear();
                order.extend(0..n);
            }

            let mut loss_sum = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                // Gather the batch into a buffer reused across iterations
                // instead of cloning and stacking per-sample tensors.
                batch.resize_for_overwrite(&[chunk.len(), c, h, w]);
                let sample_len = c * h * w;
                for (slot, &i) in chunk.iter().enumerate() {
                    assert_eq!(
                        images[i].shape(),
                        &[c, h, w],
                        "image {i} shape does not match network input"
                    );
                    batch.data_mut()[slot * sample_len..(slot + 1) * sample_len]
                        .copy_from_slice(images[i].data());
                }
                batch_labels.clear();
                batch_labels.extend(chunk.iter().map(|&i| labels[i]));

                let loss = step
                    .run(network, optimizer, &batch, &batch_labels)
                    .unwrap_or_else(|e| panic!("{e}"));

                loss_sum += loss;
                batches += 1;
            }
            epoch_losses.push(loss_sum / batches.max(1) as f32);
        }

        let preds = predict_labels(network, images, cfg.batch_size);
        let final_train_accuracy = crate::metrics::accuracy(&preds, labels);
        TrainReport {
            epoch_losses,
            final_train_accuracy,
        }
    }
}

/// Batched eval-mode class probabilities: `[n, classes]`.
///
/// # Panics
///
/// Panics if `images` is empty or shapes disagree with the network.
pub fn predict_probs(network: &mut Network, images: &[Tensor], batch_size: usize) -> Tensor {
    assert!(!images.is_empty(), "cannot predict on an empty set");
    let batch_size = batch_size.max(1);
    let k = network.num_classes();
    let mut out = Tensor::zeros(&[images.len(), k]);
    let mut row = 0;
    let mut batch = Tensor::zeros(&[0]);
    for chunk in images.chunks(batch_size) {
        // Reuse one batch buffer across chunks instead of stacking fresh
        // tensors per batch.
        let sample_shape = images[0].shape();
        let sample_len = images[0].len();
        let mut shape = Vec::with_capacity(sample_shape.len() + 1);
        shape.push(chunk.len());
        shape.extend_from_slice(sample_shape);
        batch.resize_for_overwrite(&shape);
        for (slot, img) in chunk.iter().enumerate() {
            assert_eq!(img.shape(), sample_shape, "predict image shapes must agree");
            batch.data_mut()[slot * sample_len..(slot + 1) * sample_len]
                .copy_from_slice(img.data());
        }
        let logits = network.forward(&batch, Mode::Eval);
        let probs = ops::softmax_rows(&logits).unwrap_or_else(|e| panic!("{e}"));
        out.data_mut()[row * k..(row + chunk.len()) * k].copy_from_slice(probs.data());
        row += chunk.len();
    }
    out
}

/// Batched eval-mode predicted labels.
///
/// # Panics
///
/// Panics under the same conditions as [`predict_probs`].
pub fn predict_labels(network: &mut Network, images: &[Tensor], batch_size: usize) -> Vec<usize> {
    let probs = predict_probs(network, images, batch_size);
    ops::argmax_rows(&probs).unwrap_or_else(|e| panic!("{e}"))
}

/// Eval-mode accuracy of the network on a labelled set.
///
/// # Panics
///
/// Panics under the same conditions as [`predict_probs`].
pub fn evaluate_accuracy(
    network: &mut Network,
    images: &[Tensor],
    labels: &[usize],
    batch_size: usize,
) -> f32 {
    let preds = predict_labels(network, images, batch_size);
    crate::metrics::accuracy(&preds, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    /// Two-blob toy problem: class 0 = low-intensity images, class 1 = high.
    fn toy_data(n: usize) -> (Vec<Tensor>, Vec<usize>) {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        let mut r = rng::rng_from_seed(1);
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { 0.2 } else { 0.8 };
            let mut img = Tensor::full(&[1, 8, 8], base);
            rng::fill_gaussian(&mut img, base, 0.05, &mut r);
            images.push(img);
            labels.push(class);
        }
        (images, labels)
    }

    #[test]
    fn trainer_learns_separable_toy_problem() {
        let (images, labels) = toy_data(40);
        let mut net = models::tiny_cnn(1, 8, 8, 2, 4, 5);
        let cfg = TrainConfig::new(6, 8, 0.01).with_seed(3);
        let report = Trainer::new(cfg).fit(&mut net, &images, &labels);
        assert!(
            report.final_train_accuracy > 0.9,
            "accuracy {}",
            report.final_train_accuracy
        );
        assert_eq!(report.epoch_losses.len(), 6);
        // Loss decreases overall.
        assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
    }

    #[test]
    fn paper_recipe_matches_published_hyperparameters() {
        let cfg = TrainConfig::paper_recipe(100);
        assert_eq!(cfg.epochs, 100);
        assert_eq!(cfg.batch_size, 64);
        assert!((cfg.lr - 1e-3).abs() < 1e-9);
        assert!((cfg.weight_decay - 1e-4).abs() < 1e-9);
        assert_eq!(cfg.schedule, LrSchedule::Cosine { t_max: 100 });
    }

    #[test]
    fn training_is_seed_deterministic() {
        let (images, labels) = toy_data(24);
        let run = |seed: u64| {
            let mut net = models::mlp_probe(1, 8, 8, 2, 9);
            let cfg = TrainConfig::new(3, 8, 0.02).with_seed(seed);
            Trainer::new(cfg).fit(&mut net, &images, &labels);
            net.state_vec()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn predict_functions_agree() {
        let (images, labels) = toy_data(16);
        let mut net = models::mlp_probe(1, 8, 8, 2, 2);
        Trainer::new(TrainConfig::new(10, 8, 0.05)).fit(&mut net, &images, &labels);
        let probs = predict_probs(&mut net, &images, 4);
        let labels_pred = predict_labels(&mut net, &images, 4);
        for (i, &p) in labels_pred.iter().enumerate() {
            let row = &probs.data()[i * 2..(i + 1) * 2];
            let argmax = if row[0] >= row[1] { 0 } else { 1 };
            assert_eq!(p, argmax);
        }
        let acc = evaluate_accuracy(&mut net, &images, &labels, 4);
        assert!(acc > 0.8);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn fit_rejects_empty_dataset() {
        let mut net = models::mlp_probe(1, 8, 8, 2, 2);
        Trainer::new(TrainConfig::new(1, 8, 0.1)).fit(&mut net, &[], &[]);
    }

    #[test]
    #[should_panic(expected = "does not match network input")]
    fn fit_rejects_wrong_image_shape() {
        let mut net = models::mlp_probe(1, 8, 8, 2, 2);
        let images = vec![Tensor::zeros(&[1, 4, 4])];
        Trainer::new(TrainConfig::new(1, 8, 0.1)).fit(&mut net, &images, &[0]);
    }
}
