//! Optimizers and learning-rate schedules.
//!
//! The paper trains every model with Adam (initial LR 1e-3, weight decay
//! 1e-4) under a cosine-annealing schedule with `T_max` equal to the epoch
//! count; [`Adam`] and [`CosineAnnealing`] reproduce that recipe. Weight
//! decay is applied PyTorch-Adam style: added to the gradient before the
//! moment updates (L2-coupled, not AdamW-decoupled).
//!
//! Both optimizers update every parameter with one fused in-place sweep
//! over its `(value, grad, state)` slices — no per-step gradient clones,
//! velocity clones or collected output vectors — so a warmed-up step
//! allocates nothing (optimizer state is created once, on the first step
//! that sees a parameter). Large parameters fan the sweep out across the
//! [`reveil_tensor::parallel`] worker team; element updates are
//! independent, so results are bit-identical for any worker count (and
//! the serial path inside `parallel::serialized` builds no task list).

use std::collections::BTreeMap;

use reveil_tensor::{parallel, Tensor};

use crate::{Network, Param};

/// Minimum parameter length before an optimizer sweep forks worker
/// threads; below this, threading costs more than it saves.
const PAR_MIN_LEN: usize = 16 * 1024;

/// Splits two aligned slices into one chunk group per worker and fans
/// `f` across the [`reveil_tensor::parallel`] team. Serial (single worker
/// or small parameter) calls run inline without building a task list.
fn sweep2(value: &mut [f32], grad: &[f32], f: impl Fn(&mut [f32], &[f32]) + Sync) {
    let workers = parallel::worker_count();
    if workers <= 1 || value.len() < PAR_MIN_LEN {
        f(value, grad);
        return;
    }
    let chunk = value.len().div_ceil(workers);
    let mut parts: Vec<(&mut [f32], &[f32])> =
        value.chunks_mut(chunk).zip(grad.chunks(chunk)).collect();
    parallel::for_each_chunk(&mut parts, 1, |_, group| {
        for (a, b) in group.iter_mut() {
            f(a, b);
        }
    });
}

/// Splits three aligned slices into one chunk group per worker and fans
/// `f` across the [`reveil_tensor::parallel`] team. Serial (single worker
/// or small parameter) calls run inline without building a task list.
fn sweep3(
    value: &mut [f32],
    grad: &[f32],
    state: &mut [f32],
    f: impl Fn(&mut [f32], &[f32], &mut [f32]) + Sync,
) {
    let workers = parallel::worker_count();
    if workers <= 1 || value.len() < PAR_MIN_LEN {
        f(value, grad, state);
        return;
    }
    let chunk = value.len().div_ceil(workers);
    let mut parts: Vec<(&mut [f32], &[f32], &mut [f32])> = value
        .chunks_mut(chunk)
        .zip(grad.chunks(chunk))
        .zip(state.chunks_mut(chunk))
        .map(|((a, b), c)| (a, b, c))
        .collect();
    parallel::for_each_chunk(&mut parts, 1, |_, group| {
        for (a, b, c) in group.iter_mut() {
            f(a, b, c);
        }
    });
}

/// One worker's aligned chunk group in a [`sweep4`] fan-out.
type Chunk4<'a> = (&'a mut [f32], &'a [f32], &'a mut [f32], &'a mut [f32]);

/// [`sweep3`] with a second mutable state slice (Adam's two moments).
fn sweep4(
    value: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    f: impl Fn(&mut [f32], &[f32], &mut [f32], &mut [f32]) + Sync,
) {
    let workers = parallel::worker_count();
    if workers <= 1 || value.len() < PAR_MIN_LEN {
        f(value, grad, m, v);
        return;
    }
    let chunk = value.len().div_ceil(workers);
    let mut parts: Vec<Chunk4<'_>> = value
        .chunks_mut(chunk)
        .zip(grad.chunks(chunk))
        .zip(m.chunks_mut(chunk))
        .zip(v.chunks_mut(chunk))
        .map(|(((a, b), c), d)| (a, b, c, d))
        .collect();
    parallel::for_each_chunk(&mut parts, 1, |_, group| {
        for (a, b, c, d) in group.iter_mut() {
            f(a, b, c, d);
        }
    });
}

/// A first-order optimizer stepping a [`Network`]'s parameters from their
/// accumulated gradients.
pub trait Optimizer {
    /// Applies one update step using the currently accumulated gradients.
    fn step(&mut self, network: &mut Network);

    /// Sets the learning rate (used by schedules between epochs).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: BTreeMap<u64, Tensor>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: BTreeMap::new(),
        }
    }

    /// Sets the momentum coefficient (builder style).
    #[must_use]
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the L2 weight-decay coefficient (builder style).
    #[must_use]
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    fn step_param(&mut self, p: &mut Param) {
        let lr = self.lr;
        let wd = self.weight_decay;
        let momentum = self.momentum;
        let id = p.id();
        if momentum != 0.0 {
            let vel = self
                .velocity
                .entry(id)
                .or_insert_with(|| Tensor::zeros(p.grad().shape()));
            let (value, grad) = p.value_and_grad_mut();
            // One fused sweep: u = g + wd·w, v = momentum·v + u,
            // w += -lr·v — the same per-element arithmetic as the old
            // clone-the-gradient path, with no temporaries.
            sweep3(
                value.data_mut(),
                grad.data(),
                vel.data_mut(),
                |value, grad, vel| {
                    for ((w, &g), v) in value.iter_mut().zip(grad).zip(vel.iter_mut()) {
                        let u = if wd != 0.0 { g + wd * *w } else { g };
                        *v = momentum * *v + u;
                        *w += -lr * *v;
                    }
                },
            );
        } else {
            let (value, grad) = p.value_and_grad_mut();
            sweep2(value.data_mut(), grad.data(), |value, grad| {
                for (w, &g) in value.iter_mut().zip(grad) {
                    let u = if wd != 0.0 { g + wd * *w } else { g };
                    *w += -lr * u;
                }
            });
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, network: &mut Network) {
        // `visit_params` borrows self mutably inside the closure, so collect
        // updates through a raw loop over an id-indexed dispatch.
        let mut this = std::mem::replace(
            self,
            Sgd {
                lr: 0.0,
                momentum: 0.0,
                weight_decay: 0.0,
                velocity: BTreeMap::new(),
            },
        );
        network.visit_params(&mut |p| this.step_param(p));
        *self = this;
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam optimizer with bias correction and L2-coupled weight decay.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    state: BTreeMap<u64, (Tensor, Tensor)>,
}

impl Adam {
    /// Creates Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            state: BTreeMap::new(),
        }
    }

    /// Sets the L2 weight-decay coefficient (builder style).
    #[must_use]
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    fn step_param(&mut self, p: &mut Param) {
        let id = p.id();
        let (m, v) = self.state.entry(id).or_insert_with(|| {
            (
                Tensor::zeros(p.value().shape()),
                Tensor::zeros(p.value().shape()),
            )
        });
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        let wd = self.weight_decay;

        // One fused in-place sweep over (value, grad, m, v): the same
        // per-element arithmetic as the old collect-to-Vec path (each
        // element reads its weight before writing it), no temporaries.
        let (value, grad) = p.value_and_grad_mut();
        sweep4(
            value.data_mut(),
            grad.data(),
            m.data_mut(),
            v.data_mut(),
            |value, grad, m, v| {
                for (((w, &g0), m_i), v_i) in value
                    .iter_mut()
                    .zip(grad)
                    .zip(m.iter_mut())
                    .zip(v.iter_mut())
                {
                    let g = g0 + wd * *w;
                    *m_i = b1 * *m_i + (1.0 - b1) * g;
                    *v_i = b2 * *v_i + (1.0 - b2) * g * g;
                    let m_hat = *m_i / bias1;
                    let v_hat = *v_i / bias2;
                    *w -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            },
        );
    }
}

impl Optimizer for Adam {
    fn step(&mut self, network: &mut Network) {
        self.t += 1;
        let mut this = std::mem::replace(self, Adam::new(0.0));
        network.visit_params(&mut |p| this.step_param(p));
        *self = this;
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Cosine-annealing learning-rate schedule:
/// `η_t = η_min + (η₀ − η_min)·(1 + cos(π·t/T_max))/2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineAnnealing {
    base_lr: f32,
    eta_min: f32,
    t_max: usize,
}

impl CosineAnnealing {
    /// Creates a schedule decaying from `base_lr` to 0 over `t_max` epochs
    /// (the paper uses `T_max = 100` over 100 epochs).
    pub fn new(base_lr: f32, t_max: usize) -> Self {
        Self {
            base_lr,
            eta_min: 0.0,
            t_max: t_max.max(1),
        }
    }

    /// Learning rate at the start of epoch `t` (0-based).
    pub fn lr_at(&self, t: usize) -> f32 {
        let progress = (t.min(self.t_max)) as f32 / self.t_max as f32;
        self.eta_min
            + (self.base_lr - self.eta_min) * (1.0 + (std::f32::consts::PI * progress).cos()) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear};
    use crate::loss::softmax_cross_entropy;
    use crate::{Mode, Sequential};
    use reveil_tensor::rng;

    fn tiny_net() -> Network {
        let mut r = rng::rng_from_seed(8);
        let backbone = Sequential::new().push(Flatten::new());
        let head = Sequential::new().push(Linear::new(4, 2, &mut r).unwrap());
        Network::new(backbone, head, (1, 2, 2), 2, "probe")
    }

    fn loss_of(net: &mut Network, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = net.forward(x, Mode::Train);
        softmax_cross_entropy(&logits, labels).unwrap().0
    }

    fn train_step(net: &mut Network, opt: &mut dyn Optimizer, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = net.forward(x, Mode::Train);
        let (loss, grad) = softmax_cross_entropy(&logits, labels).unwrap();
        net.zero_grads();
        net.backward_to_input(&grad);
        opt.step(net);
        loss
    }

    #[test]
    fn sgd_decreases_loss() {
        let mut net = tiny_net();
        let x = Tensor::from_fn(&[4, 1, 2, 2], |i| (i % 3) as f32);
        let labels = [0, 1, 0, 1];
        let initial = loss_of(&mut net, &x, &labels);
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        for _ in 0..20 {
            train_step(&mut net, &mut opt, &x, &labels);
        }
        let final_loss = loss_of(&mut net, &x, &labels);
        assert!(final_loss < initial, "{final_loss} !< {initial}");
    }

    #[test]
    fn adam_decreases_loss_faster_than_tiny_sgd() {
        let mut net = tiny_net();
        let x = Tensor::from_fn(&[4, 1, 2, 2], |i| ((i * 7) % 5) as f32);
        let labels = [1, 0, 1, 0];
        let mut opt = Adam::new(0.05);
        let initial = loss_of(&mut net, &x, &labels);
        for _ in 0..30 {
            train_step(&mut net, &mut opt, &x, &labels);
        }
        assert!(loss_of(&mut net, &x, &labels) < initial * 0.5);
        assert_eq!(opt.steps(), 30);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut net = tiny_net();
        // Zero gradients: with pure decay the weights must shrink.
        net.zero_grads();
        let before: f32 = {
            let mut norm = 0.0;
            net.visit_params(&mut |p| norm += p.value().sq_norm());
            norm
        };
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        for _ in 0..10 {
            opt.step(&mut net);
        }
        let mut after = 0.0;
        net.visit_params(&mut |p| after += p.value().sq_norm());
        assert!(after < before * 0.9, "{after} !< {before}");
    }

    #[test]
    fn cosine_schedule_endpoints_and_midpoint() {
        let sched = CosineAnnealing::new(1e-3, 100);
        assert!((sched.lr_at(0) - 1e-3).abs() < 1e-9);
        assert!((sched.lr_at(50) - 5e-4).abs() < 1e-6);
        assert!(sched.lr_at(100) < 1e-6);
        // Monotone decreasing.
        for t in 1..=100 {
            assert!(sched.lr_at(t) <= sched.lr_at(t - 1) + 1e-9);
        }
    }

    #[test]
    fn set_lr_roundtrip() {
        let mut adam = Adam::new(0.1);
        adam.set_lr(0.01);
        assert_eq!(adam.lr(), 0.01);
        let mut sgd = Sgd::new(0.2);
        sgd.set_lr(0.02);
        assert_eq!(sgd.lr(), 0.02);
    }
}
