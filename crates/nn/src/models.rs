//! Model zoo: scaled-down versions of the four architectures the paper
//! evaluates, plus two probe models for tests and smoke profiles.
//!
//! The paper pairs ResNet18↔CIFAR10, MobileNetV2↔GTSRB,
//! EfficientNetB0↔CIFAR100 and WideResNet50↔Tiny-ImageNet. Each builder
//! below keeps its family's defining block (residual basic block, inverted
//! residual with ReLU6, MBConv with SiLU + squeeze-excite, widened residual
//! stack) at a width/depth budget a 2-core CPU can train; see DESIGN.md §1
//! for the substitution rationale.
//!
//! All builders are deterministic in their `seed` argument.

use reveil_tensor::rng;

use crate::layers::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, InvertedResidual, Linear, MaxPool2d, Relu, Relu6,
    ResidualBlock, Silu,
};
use crate::{Network, Sequential};

/// The model families available in the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Flatten + 1 hidden layer: gradient-checkable probe.
    MlpProbe,
    /// Two conv stages: the smoke-profile workhorse.
    TinyCnn,
    /// Residual basic blocks (stands in for ResNet18).
    ResNetTiny,
    /// Inverted residuals with ReLU6 (stands in for MobileNetV2).
    MobileNetTiny,
    /// MBConv blocks with SiLU + squeeze-excite (stands in for
    /// EfficientNetB0).
    EffNetTiny,
    /// Widened residual stack (stands in for WideResNet50).
    WideResNetTiny,
}

impl ModelFamily {
    /// Builds a network of this family.
    ///
    /// `width` is the base channel count (8 is the Quick-profile default);
    /// `(c, h, w)` is the input image shape.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes` is zero or the architecture cannot be
    /// instantiated for the given shape (e.g. spatial dims too small) —
    /// model geometry is a configuration-time contract.
    pub fn build(
        self,
        c: usize,
        h: usize,
        w: usize,
        num_classes: usize,
        width: usize,
        seed: u64,
    ) -> Network {
        assert!(num_classes > 0, "num_classes must be positive");
        match self {
            ModelFamily::MlpProbe => mlp_probe(c, h, w, num_classes, seed),
            ModelFamily::TinyCnn => tiny_cnn(c, h, w, num_classes, width, seed),
            ModelFamily::ResNetTiny => resnet_tiny(c, h, w, num_classes, width, seed),
            ModelFamily::MobileNetTiny => mobilenet_tiny(c, h, w, num_classes, width, seed),
            ModelFamily::EffNetTiny => effnet_tiny(c, h, w, num_classes, width, seed),
            ModelFamily::WideResNetTiny => wide_resnet_tiny(c, h, w, num_classes, width, seed),
        }
    }

    /// Short display name.
    pub fn label(self) -> &'static str {
        match self {
            ModelFamily::MlpProbe => "mlp_probe",
            ModelFamily::TinyCnn => "tiny_cnn",
            ModelFamily::ResNetTiny => "resnet_tiny",
            ModelFamily::MobileNetTiny => "mobilenet_tiny",
            ModelFamily::EffNetTiny => "effnet_tiny",
            ModelFamily::WideResNetTiny => "wide_resnet_tiny",
        }
    }
}

fn die(e: impl std::fmt::Display) -> ! {
    panic!("model construction failed: {e}")
}

/// Flatten + one hidden ReLU layer. Used by doctests and gradient-check
/// style tests where convolution cost is unwanted.
///
/// # Panics
///
/// Panics on impossible geometry (zero-sized input).
pub fn mlp_probe(c: usize, h: usize, w: usize, num_classes: usize, seed: u64) -> Network {
    let mut r = rng::rng_from_seed(rng::derive_seed(seed, 0x11));
    let hidden = 32;
    let backbone = Sequential::new()
        .push(Flatten::new())
        .push(Linear::new(c * h * w, hidden, &mut r).unwrap_or_else(|e| die(e)))
        .push(Relu::new());
    let head =
        Sequential::new().push(Linear::new(hidden, num_classes, &mut r).unwrap_or_else(|e| die(e)));
    Network::new(backbone, head, (c, h, w), num_classes, "mlp_probe")
}

/// Two conv-bn-relu stages with max-pools and a position-preserving
/// flatten head. The smoke-profile model: trains in about a second on a few
/// hundred tiny images.
///
/// Unlike the four paper-family models (which end in global average
/// pooling, faithful to their architectures), this probe keeps spatial
/// positions in its penultimate features so localized patch triggers are
/// learnable at low poisoning ratios even at miniature scale.
///
/// # Panics
///
/// Panics if `h` or `w` is not divisible by 4 (two 2×2 max-pools).
pub fn tiny_cnn(
    c: usize,
    h: usize,
    w: usize,
    num_classes: usize,
    width: usize,
    seed: u64,
) -> Network {
    assert!(
        h % 4 == 0 && w % 4 == 0,
        "tiny_cnn needs dims divisible by 4, got {h}x{w}"
    );
    let mut r = rng::rng_from_seed(rng::derive_seed(seed, 0x22));
    let width = width.max(4);
    let backbone = Sequential::new()
        .push(Conv2d::new(c, width, 3, 1, 1, &mut r).unwrap_or_else(|e| die(e)))
        .push(BatchNorm2d::new(width).unwrap_or_else(|e| die(e)))
        .push(Relu::new())
        .push(MaxPool2d::new(2).unwrap_or_else(|e| die(e)))
        .push(Conv2d::new(width, width * 2, 3, 1, 1, &mut r).unwrap_or_else(|e| die(e)))
        .push(BatchNorm2d::new(width * 2).unwrap_or_else(|e| die(e)))
        .push(Relu::new())
        .push(MaxPool2d::new(2).unwrap_or_else(|e| die(e)))
        .push(Flatten::new());
    let feat = width * 2 * (h / 4) * (w / 4);
    let head =
        Sequential::new().push(Linear::new(feat, num_classes, &mut r).unwrap_or_else(|e| die(e)));
    Network::new(backbone, head, (c, h, w), num_classes, "tiny_cnn")
}

/// Residual network with three stages of basic blocks (ResNet18 family).
///
/// # Panics
///
/// Panics on impossible geometry.
pub fn resnet_tiny(
    c: usize,
    h: usize,
    w: usize,
    num_classes: usize,
    width: usize,
    seed: u64,
) -> Network {
    let mut r = rng::rng_from_seed(rng::derive_seed(seed, 0x33));
    let w1 = width.max(4);
    let backbone = Sequential::new()
        .push(Conv2d::new(c, w1, 3, 1, 1, &mut r).unwrap_or_else(|e| die(e)))
        .push(BatchNorm2d::new(w1).unwrap_or_else(|e| die(e)))
        .push(Relu::new())
        .push(ResidualBlock::new(w1, w1, 1, &mut r).unwrap_or_else(|e| die(e)))
        .push(ResidualBlock::new(w1, w1 * 2, 2, &mut r).unwrap_or_else(|e| die(e)))
        .push(ResidualBlock::new(w1 * 2, w1 * 4, 2, &mut r).unwrap_or_else(|e| die(e)))
        .push(GlobalAvgPool::new());
    let head =
        Sequential::new().push(Linear::new(w1 * 4, num_classes, &mut r).unwrap_or_else(|e| die(e)));
    Network::new(backbone, head, (c, h, w), num_classes, "resnet_tiny")
}

/// Inverted-residual network with ReLU6 (MobileNetV2 family).
///
/// # Panics
///
/// Panics on impossible geometry.
pub fn mobilenet_tiny(
    c: usize,
    h: usize,
    w: usize,
    num_classes: usize,
    width: usize,
    seed: u64,
) -> Network {
    let mut r = rng::rng_from_seed(rng::derive_seed(seed, 0x44));
    let w1 = width.max(4);
    let backbone = Sequential::new()
        .push(Conv2d::new(c, w1, 3, 1, 1, &mut r).unwrap_or_else(|e| die(e)))
        .push(BatchNorm2d::new(w1).unwrap_or_else(|e| die(e)))
        .push(Relu6::new())
        .push(InvertedResidual::mobilenet(w1, w1, 1, 2, &mut r).unwrap_or_else(|e| die(e)))
        .push(InvertedResidual::mobilenet(w1, w1 * 2, 2, 2, &mut r).unwrap_or_else(|e| die(e)))
        .push(InvertedResidual::mobilenet(w1 * 2, w1 * 2, 1, 2, &mut r).unwrap_or_else(|e| die(e)))
        .push(InvertedResidual::mobilenet(w1 * 2, w1 * 4, 2, 2, &mut r).unwrap_or_else(|e| die(e)))
        .push(GlobalAvgPool::new());
    let head =
        Sequential::new().push(Linear::new(w1 * 4, num_classes, &mut r).unwrap_or_else(|e| die(e)));
    Network::new(backbone, head, (c, h, w), num_classes, "mobilenet_tiny")
}

/// MBConv network with SiLU and squeeze-excite (EfficientNetB0 family).
///
/// # Panics
///
/// Panics on impossible geometry.
pub fn effnet_tiny(
    c: usize,
    h: usize,
    w: usize,
    num_classes: usize,
    width: usize,
    seed: u64,
) -> Network {
    let mut r = rng::rng_from_seed(rng::derive_seed(seed, 0x55));
    let w1 = width.max(4);
    let backbone = Sequential::new()
        .push(Conv2d::new(c, w1, 3, 1, 1, &mut r).unwrap_or_else(|e| die(e)))
        .push(BatchNorm2d::new(w1).unwrap_or_else(|e| die(e)))
        .push(Silu::new())
        .push(InvertedResidual::mbconv(w1, w1, 1, 1, &mut r).unwrap_or_else(|e| die(e)))
        .push(InvertedResidual::mbconv(w1, w1 * 2, 2, 2, &mut r).unwrap_or_else(|e| die(e)))
        .push(InvertedResidual::mbconv(w1 * 2, w1 * 4, 2, 2, &mut r).unwrap_or_else(|e| die(e)))
        .push(GlobalAvgPool::new());
    let head =
        Sequential::new().push(Linear::new(w1 * 4, num_classes, &mut r).unwrap_or_else(|e| die(e)));
    Network::new(backbone, head, (c, h, w), num_classes, "effnet_tiny")
}

/// Widened residual network: double width, two blocks per stage
/// (WideResNet50 family).
///
/// # Panics
///
/// Panics on impossible geometry.
pub fn wide_resnet_tiny(
    c: usize,
    h: usize,
    w: usize,
    num_classes: usize,
    width: usize,
    seed: u64,
) -> Network {
    let mut r = rng::rng_from_seed(rng::derive_seed(seed, 0x66));
    let w1 = width.max(4) * 2;
    let backbone = Sequential::new()
        .push(Conv2d::new(c, w1, 3, 1, 1, &mut r).unwrap_or_else(|e| die(e)))
        .push(BatchNorm2d::new(w1).unwrap_or_else(|e| die(e)))
        .push(Relu::new())
        .push(ResidualBlock::new(w1, w1, 1, &mut r).unwrap_or_else(|e| die(e)))
        .push(ResidualBlock::new(w1, w1 * 2, 2, &mut r).unwrap_or_else(|e| die(e)))
        .push(ResidualBlock::new(w1 * 2, w1 * 2, 1, &mut r).unwrap_or_else(|e| die(e)))
        .push(ResidualBlock::new(w1 * 2, w1 * 4, 2, &mut r).unwrap_or_else(|e| die(e)))
        .push(GlobalAvgPool::new());
    let head =
        Sequential::new().push(Linear::new(w1 * 4, num_classes, &mut r).unwrap_or_else(|e| die(e)));
    Network::new(backbone, head, (c, h, w), num_classes, "wide_resnet_tiny")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use reveil_tensor::Tensor;

    const FAMILIES: [ModelFamily; 6] = [
        ModelFamily::MlpProbe,
        ModelFamily::TinyCnn,
        ModelFamily::ResNetTiny,
        ModelFamily::MobileNetTiny,
        ModelFamily::EffNetTiny,
        ModelFamily::WideResNetTiny,
    ];

    #[test]
    fn every_family_produces_correct_logit_shape() {
        for family in FAMILIES {
            let mut net = family.build(3, 8, 8, 7, 4, 42);
            let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 11) as f32 * 0.05);
            let logits = net.forward(&x, Mode::Train);
            assert_eq!(logits.shape(), &[2, 7], "family {}", family.label());
        }
    }

    #[test]
    fn every_family_backward_reaches_input() {
        for family in FAMILIES {
            let mut net = family.build(3, 8, 8, 4, 4, 1);
            let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 7) as f32 * 0.1);
            let logits = net.forward(&x, Mode::Train);
            net.zero_grads();
            let dx = net.backward_to_input(&Tensor::ones(logits.shape()));
            assert_eq!(dx.shape(), x.shape(), "family {}", family.label());
            assert!(
                dx.data().iter().any(|&v| v != 0.0),
                "family {} produced an all-zero input gradient",
                family.label()
            );
        }
    }

    #[test]
    fn builders_are_seed_deterministic() {
        let mut a = resnet_tiny(3, 8, 8, 5, 4, 99);
        let mut b = resnet_tiny(3, 8, 8, 5, 4, 99);
        assert_eq!(a.state_vec(), b.state_vec());
        let mut c = resnet_tiny(3, 8, 8, 5, 4, 100);
        assert_ne!(a.state_vec(), c.state_vec());
    }

    #[test]
    fn family_labels_match_network_families() {
        for family in FAMILIES {
            let net = family.build(1, 8, 8, 2, 4, 0);
            assert_eq!(net.family(), family.label());
        }
    }

    #[test]
    fn features_are_pooled_vectors() {
        let mut net = effnet_tiny(3, 8, 8, 10, 4, 3);
        let x = Tensor::zeros(&[3, 3, 8, 8]);
        let f = net.features(&x, Mode::Eval);
        assert_eq!(f.ndim(), 2);
        assert_eq!(f.shape()[0], 3);
    }

    #[test]
    #[should_panic(expected = "num_classes")]
    fn zero_classes_rejected() {
        ModelFamily::TinyCnn.build(3, 8, 8, 0, 4, 0);
    }
}
