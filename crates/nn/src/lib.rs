//! From-scratch neural-network substrate for the ReVeil reproduction.
//!
//! The paper trains image classifiers with Adam + cosine-annealed learning
//! rates and then probes them with defenses that need *white-box* access:
//! Neural Cleanse differentiates the loss with respect to the **input**, and
//! GradCAM/Beatrix read intermediate activations. This crate therefore
//! implements layer-level reverse-mode differentiation where every layer can
//! return the gradient with respect to its input, and [`Sequential`] can
//! record per-layer activations and boundary gradients.
//!
//! Contents:
//!
//! * [`layers`] — Conv2d, DepthwiseConv2d, Linear, BatchNorm2d, ReLU family,
//!   SiLU, pooling, flatten, residual / inverted-residual / MBConv blocks
//!   and squeeze-excitation;
//! * [`Sequential`] and [`Network`] — containers with activation recording;
//! * [`loss`] — softmax cross-entropy with gradient;
//! * [`optim`] — Adam (L2-coupled weight decay, as in the paper's PyTorch
//!   recipe), SGD, and cosine-annealing LR schedule;
//! * [`models`] — the four scaled-down model families used by the paper
//!   (ResNet, MobileNetV2, EfficientNet, WideResNet);
//! * [`train`] — a mini-batch trainer and evaluation helpers.
//!
//! # Example
//!
//! ```
//! use reveil_nn::{models, train::{TrainConfig, Trainer}};
//! use reveil_tensor::Tensor;
//!
//! // Learn to classify two trivially separable synthetic classes.
//! let mut images = Vec::new();
//! let mut labels = Vec::new();
//! for i in 0..32 {
//!     let class = i % 2;
//!     images.push(Tensor::full(&[1, 8, 8], class as f32));
//!     labels.push(class);
//! }
//! let mut net = models::mlp_probe(1, 8, 8, 2, 42);
//! let cfg = TrainConfig::new(4, 8, 0.01).with_seed(7);
//! let report = Trainer::new(cfg).fit(&mut net, &images, &labels);
//! assert!(report.final_train_accuracy > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod network;
mod param;
mod sequential;

pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod train;

pub use error::NnError;
pub use network::Network;
pub use param::Param;
pub use sequential::Sequential;

/// Forward-pass mode: training (batch statistics, dropout active) or
/// evaluation (running statistics, deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Training mode.
    Train,
    /// Evaluation / inference mode.
    #[default]
    Eval,
}

/// A differentiable network layer.
///
/// Layers cache whatever they need during [`Layer::forward`] so that the
/// next [`Layer::backward`] call can produce the gradient with respect to
/// the layer input and accumulate parameter gradients.
///
/// The trait is object-safe: networks store `Box<dyn Layer>`.
pub trait Layer: Send {
    /// Computes the layer output for `input`.
    ///
    /// # Panics
    ///
    /// Implementations panic (with a descriptive message) if `input` has a
    /// shape incompatible with the layer configuration; shape agreement is a
    /// construction-time contract, not a runtime input.
    fn forward(&mut self, input: &reveil_tensor::Tensor, mode: Mode) -> reveil_tensor::Tensor;

    /// Propagates `grad_output` (gradient w.r.t. the last forward output)
    /// back to the layer input, accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a gradient whose shape does
    /// not match the last forward output.
    fn backward(&mut self, grad_output: &reveil_tensor::Tensor) -> reveil_tensor::Tensor;

    /// Visits every trainable parameter.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every persistent tensor: trainable parameters *and* buffers
    /// such as batch-norm running statistics. Used for checkpointing (SISA
    /// slice snapshots) and model cloning.
    fn visit_state(&mut self, f: &mut dyn FnMut(&mut reveil_tensor::Tensor)) {
        self.visit_params(&mut |p| f(p.value_mut()));
    }

    /// Short human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;
}
