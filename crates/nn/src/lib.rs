//! From-scratch neural-network substrate for the ReVeil reproduction.
//!
//! The paper trains image classifiers with Adam + cosine-annealed learning
//! rates and then probes them with defenses that need *white-box* access:
//! Neural Cleanse differentiates the loss with respect to the **input**, and
//! GradCAM/Beatrix read intermediate activations. This crate therefore
//! implements layer-level reverse-mode differentiation where every layer can
//! return the gradient with respect to its input, and [`Sequential`] can
//! record per-layer activations and boundary gradients.
//!
//! Contents:
//!
//! * [`layers`] — Conv2d, DepthwiseConv2d, Linear, BatchNorm2d, ReLU family,
//!   SiLU, pooling, flatten, residual / inverted-residual / MBConv blocks
//!   and squeeze-excitation;
//! * [`Sequential`] and [`Network`] — containers with activation recording;
//! * [`loss`] — softmax cross-entropy with gradient;
//! * [`optim`] — Adam (L2-coupled weight decay, as in the paper's PyTorch
//!   recipe), SGD, and cosine-annealing LR schedule;
//! * [`models`] — the four scaled-down model families used by the paper
//!   (ResNet, MobileNetV2, EfficientNet, WideResNet);
//! * [`train`] — a mini-batch trainer and evaluation helpers.
//!
//! # Example
//!
//! ```
//! use reveil_nn::{models, train::{TrainConfig, Trainer}};
//! use reveil_tensor::Tensor;
//!
//! // Learn to classify two trivially separable synthetic classes.
//! let mut images = Vec::new();
//! let mut labels = Vec::new();
//! for i in 0..32 {
//!     let class = i % 2;
//!     images.push(Tensor::full(&[1, 8, 8], class as f32));
//!     labels.push(class);
//! }
//! let mut net = models::mlp_probe(1, 8, 8, 2, 42);
//! let cfg = TrainConfig::new(4, 8, 0.01).with_seed(7);
//! let report = Trainer::new(cfg).fit(&mut net, &images, &labels);
//! assert!(report.final_train_accuracy > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod network;
mod param;
mod sequential;

pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod train;

pub use error::NnError;
pub use network::Network;
pub use param::Param;
pub use sequential::Sequential;

/// Forward-pass mode: training (batch statistics, dropout active) or
/// evaluation (running statistics, deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Training mode.
    Train,
    /// Evaluation / inference mode.
    #[default]
    Eval,
}

/// A differentiable network layer.
///
/// Layers cache whatever they need during [`Layer::forward_into`] so that
/// the next [`Layer::backward_into`] call can produce the gradient with
/// respect to the layer input and accumulate parameter gradients.
///
/// # Buffer-reuse contract
///
/// The `*_into` methods are the primary interface: they write their result
/// into a caller-provided tensor (resized in place via
/// [`reveil_tensor::Tensor::resize_for_overwrite`], so its allocation is
/// reused once warmed up) and keep whatever state the backward pass needs
/// in reusable internal buffers instead of cloning tensors per call. After
/// one warm-up pass at a given shape, a layer's `forward_into` /
/// `backward_into` perform **no heap allocations** — the property that
/// keeps the training loop allocation-free (see `TrainStep` in
/// [`train`]). The output tensor must be distinct from the input (the
/// `&`/`&mut` signature enforces this), and results are bit-identical to
/// the allocating wrappers.
///
/// [`Layer::forward`] / [`Layer::backward`] are convenience wrappers that
/// return a freshly allocated tensor; evaluation-time callers (defenses,
/// attribution) use them where allocation churn does not matter.
///
/// The trait is object-safe: networks store `Box<dyn Layer>`.
pub trait Layer: Send {
    /// Computes the layer output for `input` into `out`, reusing `out`'s
    /// allocation and caching what the next [`Layer::backward_into`] needs
    /// in internal buffers.
    ///
    /// # Panics
    ///
    /// Implementations panic (with a descriptive message) if `input` has a
    /// shape incompatible with the layer configuration; shape agreement is a
    /// construction-time contract, not a runtime input.
    fn forward_into(
        &mut self,
        input: &reveil_tensor::Tensor,
        mode: Mode,
        out: &mut reveil_tensor::Tensor,
    );

    /// Propagates `grad_output` (gradient w.r.t. the last forward output)
    /// back to the layer input into `grad_input` (reusing its allocation),
    /// accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before a forward pass or with a gradient whose
    /// shape does not match the last forward output.
    fn backward_into(
        &mut self,
        grad_output: &reveil_tensor::Tensor,
        grad_input: &mut reveil_tensor::Tensor,
    );

    /// Allocating wrapper over [`Layer::forward_into`]: returns the output
    /// as a fresh tensor.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Layer::forward_into`].
    fn forward(&mut self, input: &reveil_tensor::Tensor, mode: Mode) -> reveil_tensor::Tensor {
        let mut out = reveil_tensor::Tensor::default();
        self.forward_into(input, mode, &mut out);
        out
    }

    /// Allocating wrapper over [`Layer::backward_into`]: returns the input
    /// gradient as a fresh tensor.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Layer::backward_into`].
    fn backward(&mut self, grad_output: &reveil_tensor::Tensor) -> reveil_tensor::Tensor {
        let mut grad_input = reveil_tensor::Tensor::default();
        self.backward_into(grad_output, &mut grad_input);
        grad_input
    }

    /// Total capacity in scalars of the layer's reusable buffers (saved
    /// activations, masks, conv scratch, container ping-pong buffers).
    ///
    /// Capacity-stability regression tests assert this stops growing after
    /// the first epoch — the observable form of the zero-allocation
    /// contract.
    fn buffer_capacity(&self) -> usize {
        0
    }

    /// Drops the layer's reusable buffers (they re-grow on the next
    /// forward pass) and discards saved forward state, so a model parked
    /// in a long-lived cache does not pin training-batch-sized activation
    /// memory.
    ///
    /// Call only between passes: a `backward` after `release_buffers`
    /// without a fresh `forward` panics with the usual
    /// "backward before forward" diagnostic. Trainable parameters and
    /// persistent state (e.g. batch-norm running statistics) are
    /// untouched.
    fn release_buffers(&mut self) {}

    /// Visits every trainable parameter.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every persistent tensor: trainable parameters *and* buffers
    /// such as batch-norm running statistics. Used for checkpointing (SISA
    /// slice snapshots) and model cloning.
    fn visit_state(&mut self, f: &mut dyn FnMut(&mut reveil_tensor::Tensor)) {
        self.visit_params(&mut |p| f(p.value_mut()));
    }

    /// Short human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;
}
