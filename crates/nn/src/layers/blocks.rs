//! Composite blocks: ResNet basic blocks, MobileNet inverted residuals,
//! EfficientNet MBConv (inverted residual + squeeze-excitation).
//!
//! The dense and convolutional stages inside these blocks ([`Linear`] in
//! the squeeze-excite gate, [`Conv2d`] in every main path) accumulate
//! their weight gradients through the fused GEMM epilogue
//! (`reveil_tensor::ops::matmul_*_acc_into`), so a block's backward pass
//! writes each parameter gradient exactly once instead of
//! matmul-then-`axpy`. Every block-level intermediate (branch outputs,
//! ReLU masks, gate activations and their gradients) lives in a reusable
//! per-block buffer, so block forward/backward passes allocate nothing
//! once warmed up.

use rand::rngs::StdRng;

use reveil_tensor::Tensor;

use crate::layers::{
    backward_before_forward, check_backward_shape, expect_nchw, resize_buffer, BatchNorm2d, Conv2d,
    DepthwiseConv2d, GlobalAvgPool, Linear, Relu, Relu6, Sigmoid, Silu,
};
use crate::{Layer, Mode, NnError, Param, Sequential};

/// ResNet basic block: `y = relu(main(x) + shortcut(x))`.
///
/// The main path is conv–bn–relu–conv–bn; the shortcut is the identity when
/// shapes match and a strided 1×1 conv + bn projection otherwise.
pub struct ResidualBlock {
    main: Sequential,
    shortcut: Option<Sequential>,
    /// 1.0 where the post-add pre-activation was positive.
    relu_mask: Tensor,
    ready: bool,
    // Reusable forward/backward scratch.
    main_out: Tensor,
    shortcut_out: Tensor,
    gated: Tensor,
    dx_main: Tensor,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualBlock")
            .field("projected", &self.shortcut.is_some())
            .finish()
    }
}

impl ResidualBlock {
    /// Creates a basic block mapping `in_ch → out_ch` with the given stride.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the constituent layers.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        let main = Sequential::new()
            .push(Conv2d::new(in_ch, out_ch, 3, stride, 1, init_rng)?)
            .push(BatchNorm2d::new(out_ch)?)
            .push(Relu::new())
            .push(Conv2d::new(out_ch, out_ch, 3, 1, 1, init_rng)?)
            .push(BatchNorm2d::new(out_ch)?);
        let shortcut = if stride != 1 || in_ch != out_ch {
            Some(
                Sequential::new()
                    .push(Conv2d::new(in_ch, out_ch, 1, stride, 0, init_rng)?)
                    .push(BatchNorm2d::new(out_ch)?),
            )
        } else {
            None
        };
        Ok(Self {
            main,
            shortcut,
            relu_mask: Tensor::default(),
            ready: false,
            main_out: Tensor::default(),
            shortcut_out: Tensor::default(),
            gated: Tensor::default(),
            dx_main: Tensor::default(),
        })
    }
}

impl Layer for ResidualBlock {
    fn forward_into(&mut self, input: &Tensor, mode: Mode, out: &mut Tensor) {
        self.main.forward_into(input, mode, &mut self.main_out);
        let short: &Tensor = match &mut self.shortcut {
            Some(s) => {
                s.forward_into(input, mode, &mut self.shortcut_out);
                &self.shortcut_out
            }
            None => input,
        };
        debug_assert_eq!(self.main_out.shape(), short.shape());
        resize_buffer(&mut self.relu_mask, self.main_out.shape());
        resize_buffer(out, self.main_out.shape());
        let dst = out.data_mut();
        let mask = self.relu_mask.data_mut();
        for (((o, m), &a), &b) in dst
            .iter_mut()
            .zip(mask.iter_mut())
            .zip(self.main_out.data())
            .zip(short.data())
        {
            let pre = a + b;
            *m = if pre > 0.0 { 1.0 } else { 0.0 };
            *o = pre.max(0.0);
        }
        self.ready = true;
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("ResidualBlock");
        }
        check_backward_shape("ResidualBlock", self.relu_mask.shape(), grad_output.shape());
        resize_buffer(&mut self.gated, grad_output.shape());
        for ((d, &g), &m) in self
            .gated
            .data_mut()
            .iter_mut()
            .zip(grad_output.data())
            .zip(self.relu_mask.data())
        {
            *d = g * m;
        }
        self.main.backward_into(&self.gated, &mut self.dx_main);
        match &mut self.shortcut {
            Some(s) => {
                s.backward_into(&self.gated, grad_input);
                // f32 addition is commutative and exact either way, so
                // accumulating the main-path gradient onto the shortcut's
                // matches the old `dx_main + dx_shortcut` bit for bit.
                for (o, &a) in grad_input.data_mut().iter_mut().zip(self.dx_main.data()) {
                    *o += a;
                }
            }
            None => {
                resize_buffer(grad_input, self.dx_main.shape());
                for ((o, &a), &g) in grad_input
                    .data_mut()
                    .iter_mut()
                    .zip(self.dx_main.data())
                    .zip(self.gated.data())
                {
                    *o = a + g;
                }
            }
        }
    }

    fn buffer_capacity(&self) -> usize {
        self.main.buffer_capacity()
            + self.shortcut.as_ref().map_or(0, Layer::buffer_capacity)
            + self.relu_mask.capacity()
            + self.main_out.capacity()
            + self.shortcut_out.capacity()
            + self.gated.capacity()
            + self.dx_main.capacity()
    }

    fn release_buffers(&mut self) {
        self.main.release_buffers();
        if let Some(s) = &mut self.shortcut {
            s.release_buffers();
        }
        self.relu_mask = Tensor::default();
        self.main_out = Tensor::default();
        self.shortcut_out = Tensor::default();
        self.gated = Tensor::default();
        self.dx_main = Tensor::default();
        self.ready = false;
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.main.visit_state(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_state(f);
        }
    }

    fn name(&self) -> &'static str {
        "residual_block"
    }
}

/// Squeeze-and-excitation: rescales channels by a learned gate
/// `s = σ(W₂·silu(W₁·gap(x)))`, `y = x ⊙ s`.
pub struct SqueezeExcite {
    gap: GlobalAvgPool,
    fc1: Linear,
    act: Silu,
    fc2: Linear,
    sig: Sigmoid,
    /// Saved copy of the forward input (the gate gradient needs `x`).
    saved_input: Tensor,
    /// The per-(sample, channel) gate values from the last forward pass.
    scale: Tensor,
    ready: bool,
    // Reusable gate-chain scratch (forward activations / backward grads).
    pooled: Tensor,
    t1: Tensor,
    t2: Tensor,
    t3: Tensor,
    dscale: Tensor,
    ga: Tensor,
    gb: Tensor,
}

impl std::fmt::Debug for SqueezeExcite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SqueezeExcite")
            .field("channels", &self.fc2.out_features())
            .finish()
    }
}

impl SqueezeExcite {
    /// Creates a squeeze-excite gate over `channels` with the given
    /// bottleneck reduction factor (clamped so the bottleneck is ≥ 1 wide).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the internal linear layers.
    pub fn new(channels: usize, reduction: usize, init_rng: &mut StdRng) -> Result<Self, NnError> {
        let mid = (channels / reduction.max(1)).max(1);
        Ok(Self {
            gap: GlobalAvgPool::new(),
            fc1: Linear::new(channels, mid, init_rng)?,
            act: Silu::new(),
            fc2: Linear::new(mid, channels, init_rng)?,
            sig: Sigmoid::new(),
            saved_input: Tensor::default(),
            scale: Tensor::default(),
            ready: false,
            pooled: Tensor::default(),
            t1: Tensor::default(),
            t2: Tensor::default(),
            t3: Tensor::default(),
            dscale: Tensor::default(),
            ga: Tensor::default(),
            gb: Tensor::default(),
        })
    }
}

impl Layer for SqueezeExcite {
    fn forward_into(&mut self, input: &Tensor, mode: Mode, out: &mut Tensor) {
        let (n, c, h, w) = expect_nchw("SqueezeExcite", input);
        resize_buffer(&mut self.saved_input, input.shape());
        self.saved_input.data_mut().copy_from_slice(input.data());
        self.gap.forward_into(input, mode, &mut self.pooled);
        self.fc1.forward_into(&self.pooled, mode, &mut self.t1);
        self.act.forward_into(&self.t1, mode, &mut self.t2);
        self.fc2.forward_into(&self.t2, mode, &mut self.t3);
        self.sig.forward_into(&self.t3, mode, &mut self.scale);
        self.ready = true;

        resize_buffer(out, input.shape());
        let dst = out.data_mut();
        let scale = self.scale.data();
        let plane = h * w;
        for img in 0..n {
            for ch in 0..c {
                let s = scale[img * c + ch];
                let base = (img * c + ch) * plane;
                for (o, &x) in dst[base..base + plane]
                    .iter_mut()
                    .zip(&input.data()[base..base + plane])
                {
                    *o = x * s;
                }
            }
        }
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("SqueezeExcite");
        }
        check_backward_shape(
            "SqueezeExcite",
            self.saved_input.shape(),
            grad_output.shape(),
        );
        let &[n, c, h, w] = self.saved_input.shape() else {
            unreachable!("saved input is always [n, c, h, w]")
        };
        let plane = h * w;

        // Direct term: ∂(x ⊙ s)/∂x with s treated constant.
        // Gate term: ds[n, c] = Σ_hw g ⊙ x.
        resize_buffer(grad_input, self.saved_input.shape());
        resize_buffer(&mut self.dscale, &[n, c]);
        let gi = grad_input.data_mut();
        let ds = self.dscale.data_mut();
        let x = self.saved_input.data();
        let g = grad_output.data();
        let scale = self.scale.data();
        for img in 0..n {
            for ch in 0..c {
                let s = scale[img * c + ch];
                let base = (img * c + ch) * plane;
                let mut acc = 0.0;
                for i in base..base + plane {
                    acc += g[i] * x[i];
                    gi[i] = g[i] * s;
                }
                ds[img * c + ch] = acc;
            }
        }

        // Chain through sigmoid → fc2 → silu → fc1 → gap back to the input.
        self.sig.backward_into(&self.dscale, &mut self.ga);
        self.fc2.backward_into(&self.ga, &mut self.gb);
        self.act.backward_into(&self.gb, &mut self.ga);
        self.fc1.backward_into(&self.ga, &mut self.gb);
        self.gap.backward_into(&self.gb, &mut self.ga);
        for (o, &v) in grad_input.data_mut().iter_mut().zip(self.ga.data()) {
            *o += v;
        }
    }

    fn buffer_capacity(&self) -> usize {
        self.fc1.buffer_capacity()
            + self.fc2.buffer_capacity()
            + self.act.buffer_capacity()
            + self.sig.buffer_capacity()
            + self.saved_input.capacity()
            + self.scale.capacity()
            + self.pooled.capacity()
            + self.t1.capacity()
            + self.t2.capacity()
            + self.t3.capacity()
            + self.dscale.capacity()
            + self.ga.capacity()
            + self.gb.capacity()
    }

    fn release_buffers(&mut self) {
        self.gap.release_buffers();
        self.fc1.release_buffers();
        self.act.release_buffers();
        self.fc2.release_buffers();
        self.sig.release_buffers();
        self.saved_input = Tensor::default();
        self.scale = Tensor::default();
        self.pooled = Tensor::default();
        self.t1 = Tensor::default();
        self.t2 = Tensor::default();
        self.t3 = Tensor::default();
        self.dscale = Tensor::default();
        self.ga = Tensor::default();
        self.gb = Tensor::default();
        self.ready = false;
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }

    fn name(&self) -> &'static str {
        "squeeze_excite"
    }
}

/// Linear-bottleneck inverted residual with an optional skip connection
/// (no post-add activation).
///
/// [`InvertedResidual::mobilenet`] builds the MobileNetV2 variant
/// (expand → depthwise → project with ReLU6); [`InvertedResidual::mbconv`]
/// builds the EfficientNet variant (SiLU activations plus squeeze-excite).
pub struct InvertedResidual {
    body: Sequential,
    use_res: bool,
    kind: &'static str,
    /// Body output buffer (residual variant only).
    body_out: Tensor,
}

impl std::fmt::Debug for InvertedResidual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvertedResidual")
            .field("kind", &self.kind)
            .field("use_res", &self.use_res)
            .finish()
    }
}

impl InvertedResidual {
    /// MobileNetV2 inverted residual: 1×1 expand (+BN+ReLU6), 3×3 depthwise
    /// (+BN+ReLU6), 1×1 project (+BN), residual when `stride == 1` and
    /// channel counts match.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the constituent layers.
    pub fn mobilenet(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        expand: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        let mid = in_ch * expand.max(1);
        let mut body = Sequential::new();
        if expand > 1 {
            body = body
                .push(Conv2d::new(in_ch, mid, 1, 1, 0, init_rng)?)
                .push(BatchNorm2d::new(mid)?)
                .push(Relu6::new());
        }
        let mid = if expand > 1 { mid } else { in_ch };
        let body = body
            .push(DepthwiseConv2d::new(mid, 3, stride, 1, init_rng)?)
            .push(BatchNorm2d::new(mid)?)
            .push(Relu6::new())
            .push(Conv2d::new(mid, out_ch, 1, 1, 0, init_rng)?)
            .push(BatchNorm2d::new(out_ch)?);
        Ok(Self {
            body,
            use_res: stride == 1 && in_ch == out_ch,
            kind: "mobilenet",
            body_out: Tensor::default(),
        })
    }

    /// EfficientNet MBConv: like [`InvertedResidual::mobilenet`] but with
    /// SiLU activations and a squeeze-excite stage before projection.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the constituent layers.
    pub fn mbconv(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        expand: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        let mid = in_ch * expand.max(1);
        let mut body = Sequential::new();
        if expand > 1 {
            body = body
                .push(Conv2d::new(in_ch, mid, 1, 1, 0, init_rng)?)
                .push(BatchNorm2d::new(mid)?)
                .push(Silu::new());
        }
        let mid = if expand > 1 { mid } else { in_ch };
        let body = body
            .push(DepthwiseConv2d::new(mid, 3, stride, 1, init_rng)?)
            .push(BatchNorm2d::new(mid)?)
            .push(Silu::new())
            .push(SqueezeExcite::new(mid, 4, init_rng)?)
            .push(Conv2d::new(mid, out_ch, 1, 1, 0, init_rng)?)
            .push(BatchNorm2d::new(out_ch)?);
        Ok(Self {
            body,
            use_res: stride == 1 && in_ch == out_ch,
            kind: "mbconv",
            body_out: Tensor::default(),
        })
    }
}

impl Layer for InvertedResidual {
    fn forward_into(&mut self, input: &Tensor, mode: Mode, out: &mut Tensor) {
        if self.use_res {
            self.body.forward_into(input, mode, &mut self.body_out);
            debug_assert_eq!(self.body_out.shape(), input.shape());
            resize_buffer(out, self.body_out.shape());
            for ((o, &a), &b) in out
                .data_mut()
                .iter_mut()
                .zip(self.body_out.data())
                .zip(input.data())
            {
                *o = a + b;
            }
        } else {
            self.body.forward_into(input, mode, out);
        }
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        self.body.backward_into(grad_output, grad_input);
        if self.use_res {
            debug_assert_eq!(grad_input.shape(), grad_output.shape());
            for (o, &g) in grad_input.data_mut().iter_mut().zip(grad_output.data()) {
                *o += g;
            }
        }
    }

    fn buffer_capacity(&self) -> usize {
        self.body.buffer_capacity() + self.body_out.capacity()
    }

    fn release_buffers(&mut self) {
        self.body.release_buffers();
        self.body_out = Tensor::default();
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.body.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.body.visit_state(f);
    }

    fn name(&self) -> &'static str {
        match self.kind {
            "mbconv" => "mbconv",
            _ => "inverted_residual",
        }
    }
}

/// Alias constructor mirroring EfficientNet terminology.
///
/// # Errors
///
/// Propagates configuration errors from [`InvertedResidual::mbconv`].
pub fn mb_conv(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    expand: usize,
    init_rng: &mut StdRng,
) -> Result<InvertedResidual, NnError> {
    InvertedResidual::mbconv(in_ch, out_ch, stride, expand, init_rng)
}

/// Alias type for the EfficientNet-flavoured [`InvertedResidual`].
pub type MbConv = InvertedResidual;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use reveil_tensor::rng;

    fn seeded() -> StdRng {
        rng::rng_from_seed(17)
    }

    fn probe(n: usize, c: usize, hw: usize) -> Tensor {
        Tensor::from_fn(&[n, c, hw, hw], |i| ((i * 13 % 23) as f32 - 11.0) * 0.1)
    }

    #[test]
    fn residual_identity_shortcut_when_shapes_match() {
        let mut r = seeded();
        let block = ResidualBlock::new(4, 4, 1, &mut r).unwrap();
        assert!(block.shortcut.is_none());
        let block = ResidualBlock::new(4, 8, 2, &mut r).unwrap();
        assert!(block.shortcut.is_some());
    }

    #[test]
    fn residual_forward_shapes() {
        let mut r = seeded();
        let mut block = ResidualBlock::new(3, 6, 2, &mut r).unwrap();
        let y = block.forward(&probe(2, 3, 8), Mode::Train);
        assert_eq!(y.shape(), &[2, 6, 4, 4]);
        assert!(y.data().iter().all(|&v| v >= 0.0), "post-add relu output");
    }

    #[test]
    fn residual_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut block = ResidualBlock::new(2, 2, 1, &mut r).unwrap();
        // Eval mode: batch-norm statistics fixed, so finite differences see
        // the same linearisation the analytic backward uses.
        let warm = probe(4, 2, 4);
        block.forward(&warm, Mode::Train);
        gradcheck::check_input_gradient(&mut block, &probe(2, 2, 4), Mode::Eval, 3e-2);
    }

    #[test]
    fn squeeze_excite_preserves_shape_and_gates() {
        let mut r = seeded();
        let mut se = SqueezeExcite::new(4, 2, &mut r).unwrap();
        let x = probe(2, 4, 3);
        let y = se.forward(&x, Mode::Train);
        assert_eq!(y.shape(), x.shape());
        // Sigmoid gate ∈ (0, 1): |y| < |x| elementwise (where x ≠ 0).
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!(b.abs() <= a.abs() + 1e-6);
        }
    }

    #[test]
    fn squeeze_excite_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut se = SqueezeExcite::new(3, 2, &mut r).unwrap();
        gradcheck::check_input_gradient(&mut se, &probe(2, 3, 3), Mode::Eval, 3e-2);
    }

    #[test]
    fn squeeze_excite_param_gradients_match_finite_difference() {
        let mut r = seeded();
        let mut se = SqueezeExcite::new(3, 2, &mut r).unwrap();
        gradcheck::check_param_gradients(&mut se, &probe(2, 3, 3), Mode::Eval, 3e-2);
    }

    #[test]
    fn inverted_residual_residual_condition() {
        let mut r = seeded();
        let a = InvertedResidual::mobilenet(4, 4, 1, 2, &mut r).unwrap();
        assert!(a.use_res);
        let b = InvertedResidual::mobilenet(4, 8, 1, 2, &mut r).unwrap();
        assert!(!b.use_res);
        let c = InvertedResidual::mobilenet(4, 4, 2, 2, &mut r).unwrap();
        assert!(!c.use_res);
    }

    #[test]
    fn inverted_residual_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut block = InvertedResidual::mobilenet(2, 2, 1, 2, &mut r).unwrap();
        block.forward(&probe(4, 2, 4), Mode::Train);
        gradcheck::check_input_gradient(&mut block, &probe(2, 2, 4), Mode::Eval, 3e-2);
    }

    #[test]
    fn mbconv_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut block = InvertedResidual::mbconv(2, 2, 1, 2, &mut r).unwrap();
        block.forward(&probe(4, 2, 4), Mode::Train);
        gradcheck::check_input_gradient(&mut block, &probe(2, 2, 4), Mode::Eval, 3e-2);
    }

    #[test]
    fn mbconv_downsamples_with_stride() {
        let mut r = seeded();
        let mut block = mb_conv(3, 6, 2, 2, &mut r).unwrap();
        let y = block.forward(&probe(1, 3, 8), Mode::Train);
        assert_eq!(y.shape(), &[1, 6, 4, 4]);
        assert_eq!(block.name(), "mbconv");
    }

    #[test]
    #[should_panic(expected = "ResidualBlock::backward called before forward")]
    fn residual_backward_before_forward_panics() {
        let mut r = seeded();
        ResidualBlock::new(2, 2, 1, &mut r)
            .unwrap()
            .backward(&Tensor::ones(&[1, 2, 2, 2]));
    }

    #[test]
    fn block_buffer_reuse_is_bit_identical_and_allocation_free() {
        let mut r = seeded();
        let blocks: Vec<Box<dyn Layer>> = vec![
            Box::new(ResidualBlock::new(2, 4, 2, &mut r).unwrap()),
            Box::new(InvertedResidual::mobilenet(2, 2, 1, 2, &mut r).unwrap()),
            Box::new(InvertedResidual::mbconv(2, 2, 1, 2, &mut r).unwrap()),
            Box::new(SqueezeExcite::new(2, 2, &mut r).unwrap()),
        ];
        let x = probe(2, 2, 4);
        for mut block in blocks {
            // Warm in eval mode so batch-norm running stats stay frozen and
            // repeated passes are exactly reproducible.
            let mut out = Tensor::default();
            let mut dx = Tensor::default();
            block.forward_into(&x, Mode::Eval, &mut out);
            let g = Tensor::from_fn(out.shape(), |i| ((i * 7 % 5) as f32 - 2.0) * 0.1);
            block.backward_into(&g, &mut dx);
            let (first_out, first_dx) = (out.clone(), dx.clone());
            let warmed = block.buffer_capacity();
            assert!(warmed > 0, "{} must report its buffers", block.name());
            for _ in 0..3 {
                block.forward_into(&x, Mode::Eval, &mut out);
                block.backward_into(&g, &mut dx);
                assert_eq!(out, first_out, "{} forward drifted", block.name());
                assert_eq!(dx, first_dx, "{} backward drifted", block.name());
                assert_eq!(
                    block.buffer_capacity(),
                    warmed,
                    "{} buffers must not grow once warmed",
                    block.name()
                );
            }
        }
    }
}
