//! Composite blocks: ResNet basic blocks, MobileNet inverted residuals,
//! EfficientNet MBConv (inverted residual + squeeze-excitation).
//!
//! The dense and convolutional stages inside these blocks ([`Linear`] in
//! the squeeze-excite gate, [`Conv2d`] in every main path) accumulate
//! their weight gradients through the fused GEMM epilogue
//! (`reveil_tensor::ops::matmul_*_acc_into`), so a block's backward pass
//! writes each parameter gradient exactly once instead of
//! matmul-then-`axpy`.

use rand::rngs::StdRng;

use reveil_tensor::Tensor;

use crate::layers::{
    BatchNorm2d, Conv2d, DepthwiseConv2d, GlobalAvgPool, Linear, Relu, Relu6, Sigmoid, Silu,
};
use crate::{Layer, Mode, NnError, Param, Sequential};

/// ResNet basic block: `y = relu(main(x) + shortcut(x))`.
///
/// The main path is conv–bn–relu–conv–bn; the shortcut is the identity when
/// shapes match and a strided 1×1 conv + bn projection otherwise.
pub struct ResidualBlock {
    main: Sequential,
    shortcut: Option<Sequential>,
    relu_mask: Option<Tensor>,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualBlock")
            .field("projected", &self.shortcut.is_some())
            .finish()
    }
}

impl ResidualBlock {
    /// Creates a basic block mapping `in_ch → out_ch` with the given stride.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the constituent layers.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        let main = Sequential::new()
            .push(Conv2d::new(in_ch, out_ch, 3, stride, 1, init_rng)?)
            .push(BatchNorm2d::new(out_ch)?)
            .push(Relu::new())
            .push(Conv2d::new(out_ch, out_ch, 3, 1, 1, init_rng)?)
            .push(BatchNorm2d::new(out_ch)?);
        let shortcut = if stride != 1 || in_ch != out_ch {
            Some(
                Sequential::new()
                    .push(Conv2d::new(in_ch, out_ch, 1, stride, 0, init_rng)?)
                    .push(BatchNorm2d::new(out_ch)?),
            )
        } else {
            None
        };
        Ok(Self {
            main,
            shortcut,
            relu_mask: None,
        })
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let main_out = self.main.forward(input, mode);
        let shortcut_out = match &mut self.shortcut {
            Some(s) => s.forward(input, mode),
            None => input.clone(),
        };
        let pre = &main_out + &shortcut_out;
        self.relu_mask = Some(pre.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        pre.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .relu_mask
            .as_ref()
            .expect("ResidualBlock::backward before forward");
        let gated = grad_output
            .zip_map(mask, |g, m| g * m)
            .unwrap_or_else(|e| panic!("{e}"));
        let dx_main = self.main.backward(&gated);
        match &mut self.shortcut {
            Some(s) => &dx_main + &s.backward(&gated),
            None => &dx_main + &gated,
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.main.visit_state(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_state(f);
        }
    }

    fn name(&self) -> &'static str {
        "residual_block"
    }
}

/// Squeeze-and-excitation: rescales channels by a learned gate
/// `s = σ(W₂·silu(W₁·gap(x)))`, `y = x ⊙ s`.
pub struct SqueezeExcite {
    gap: GlobalAvgPool,
    fc1: Linear,
    act: Silu,
    fc2: Linear,
    sig: Sigmoid,
    input: Option<Tensor>,
    scale: Option<Tensor>,
}

impl std::fmt::Debug for SqueezeExcite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SqueezeExcite")
            .field("channels", &self.fc2.out_features())
            .finish()
    }
}

impl SqueezeExcite {
    /// Creates a squeeze-excite gate over `channels` with the given
    /// bottleneck reduction factor (clamped so the bottleneck is ≥ 1 wide).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the internal linear layers.
    pub fn new(channels: usize, reduction: usize, init_rng: &mut StdRng) -> Result<Self, NnError> {
        let mid = (channels / reduction.max(1)).max(1);
        Ok(Self {
            gap: GlobalAvgPool::new(),
            fc1: Linear::new(channels, mid, init_rng)?,
            act: Silu::new(),
            fc2: Linear::new(mid, channels, init_rng)?,
            sig: Sigmoid::new(),
            input: None,
            scale: None,
        })
    }
}

impl Layer for SqueezeExcite {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let &[n, c, h, w] = input.shape() else {
            panic!(
                "SqueezeExcite expects [n, c, h, w], got {:?}",
                input.shape()
            );
        };
        self.input = Some(input.clone());
        let pooled = self.gap.forward(input, mode);
        let a = self.fc1.forward(&pooled, mode);
        let a = self.act.forward(&a, mode);
        let a = self.fc2.forward(&a, mode);
        let scale = self.sig.forward(&a, mode);
        self.scale = Some(scale.clone());

        let mut out = input.clone();
        let plane = h * w;
        for img in 0..n {
            for ch in 0..c {
                let s = scale.data()[img * c + ch];
                let base = (img * c + ch) * plane;
                for v in &mut out.data_mut()[base..base + plane] {
                    *v *= s;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .input
            .as_ref()
            .expect("SqueezeExcite::backward before forward");
        let scale = self
            .scale
            .as_ref()
            .expect("SqueezeExcite cache missing scale");
        let &[n, c, h, w] = input.shape() else {
            unreachable!()
        };
        let plane = h * w;

        // Direct term: ∂(x ⊙ s)/∂x with s treated constant.
        let mut grad_input = grad_output.clone();
        // Gate term: ds[n, c] = Σ_hw g ⊙ x.
        let mut dscale = Tensor::zeros(&[n, c]);
        for img in 0..n {
            for ch in 0..c {
                let s = scale.data()[img * c + ch];
                let base = (img * c + ch) * plane;
                let mut acc = 0.0;
                for i in base..base + plane {
                    acc += grad_output.data()[i] * input.data()[i];
                    grad_input.data_mut()[i] *= s;
                }
                dscale.data_mut()[img * c + ch] = acc;
            }
        }

        // Chain through sigmoid → fc2 → silu → fc1 → gap back to the input.
        let g = self.sig.backward(&dscale);
        let g = self.fc2.backward(&g);
        let g = self.act.backward(&g);
        let g = self.fc1.backward(&g);
        let g = self.gap.backward(&g);
        grad_input += &g;
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }

    fn name(&self) -> &'static str {
        "squeeze_excite"
    }
}

/// Linear-bottleneck inverted residual with an optional skip connection
/// (no post-add activation).
///
/// [`InvertedResidual::mobilenet`] builds the MobileNetV2 variant
/// (expand → depthwise → project with ReLU6); [`InvertedResidual::mbconv`]
/// builds the EfficientNet variant (SiLU activations plus squeeze-excite).
pub struct InvertedResidual {
    body: Sequential,
    use_res: bool,
    kind: &'static str,
}

impl std::fmt::Debug for InvertedResidual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvertedResidual")
            .field("kind", &self.kind)
            .field("use_res", &self.use_res)
            .finish()
    }
}

impl InvertedResidual {
    /// MobileNetV2 inverted residual: 1×1 expand (+BN+ReLU6), 3×3 depthwise
    /// (+BN+ReLU6), 1×1 project (+BN), residual when `stride == 1` and
    /// channel counts match.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the constituent layers.
    pub fn mobilenet(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        expand: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        let mid = in_ch * expand.max(1);
        let mut body = Sequential::new();
        if expand > 1 {
            body = body
                .push(Conv2d::new(in_ch, mid, 1, 1, 0, init_rng)?)
                .push(BatchNorm2d::new(mid)?)
                .push(Relu6::new());
        }
        let mid = if expand > 1 { mid } else { in_ch };
        let body = body
            .push(DepthwiseConv2d::new(mid, 3, stride, 1, init_rng)?)
            .push(BatchNorm2d::new(mid)?)
            .push(Relu6::new())
            .push(Conv2d::new(mid, out_ch, 1, 1, 0, init_rng)?)
            .push(BatchNorm2d::new(out_ch)?);
        Ok(Self {
            body,
            use_res: stride == 1 && in_ch == out_ch,
            kind: "mobilenet",
        })
    }

    /// EfficientNet MBConv: like [`InvertedResidual::mobilenet`] but with
    /// SiLU activations and a squeeze-excite stage before projection.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the constituent layers.
    pub fn mbconv(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        expand: usize,
        init_rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        let mid = in_ch * expand.max(1);
        let mut body = Sequential::new();
        if expand > 1 {
            body = body
                .push(Conv2d::new(in_ch, mid, 1, 1, 0, init_rng)?)
                .push(BatchNorm2d::new(mid)?)
                .push(Silu::new());
        }
        let mid = if expand > 1 { mid } else { in_ch };
        let body = body
            .push(DepthwiseConv2d::new(mid, 3, stride, 1, init_rng)?)
            .push(BatchNorm2d::new(mid)?)
            .push(Silu::new())
            .push(SqueezeExcite::new(mid, 4, init_rng)?)
            .push(Conv2d::new(mid, out_ch, 1, 1, 0, init_rng)?)
            .push(BatchNorm2d::new(out_ch)?);
        Ok(Self {
            body,
            use_res: stride == 1 && in_ch == out_ch,
            kind: "mbconv",
        })
    }
}

impl Layer for InvertedResidual {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let out = self.body.forward(input, mode);
        if self.use_res {
            &out + input
        } else {
            out
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dx = self.body.backward(grad_output);
        if self.use_res {
            &dx + grad_output
        } else {
            dx
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.body.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.body.visit_state(f);
    }

    fn name(&self) -> &'static str {
        match self.kind {
            "mbconv" => "mbconv",
            _ => "inverted_residual",
        }
    }
}

/// Alias constructor mirroring EfficientNet terminology.
///
/// # Errors
///
/// Propagates configuration errors from [`InvertedResidual::mbconv`].
pub fn mb_conv(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    expand: usize,
    init_rng: &mut StdRng,
) -> Result<InvertedResidual, NnError> {
    InvertedResidual::mbconv(in_ch, out_ch, stride, expand, init_rng)
}

/// Alias type for the EfficientNet-flavoured [`InvertedResidual`].
pub type MbConv = InvertedResidual;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use reveil_tensor::rng;

    fn seeded() -> StdRng {
        rng::rng_from_seed(17)
    }

    fn probe(n: usize, c: usize, hw: usize) -> Tensor {
        Tensor::from_fn(&[n, c, hw, hw], |i| ((i * 13 % 23) as f32 - 11.0) * 0.1)
    }

    #[test]
    fn residual_identity_shortcut_when_shapes_match() {
        let mut r = seeded();
        let block = ResidualBlock::new(4, 4, 1, &mut r).unwrap();
        assert!(block.shortcut.is_none());
        let block = ResidualBlock::new(4, 8, 2, &mut r).unwrap();
        assert!(block.shortcut.is_some());
    }

    #[test]
    fn residual_forward_shapes() {
        let mut r = seeded();
        let mut block = ResidualBlock::new(3, 6, 2, &mut r).unwrap();
        let y = block.forward(&probe(2, 3, 8), Mode::Train);
        assert_eq!(y.shape(), &[2, 6, 4, 4]);
        assert!(y.data().iter().all(|&v| v >= 0.0), "post-add relu output");
    }

    #[test]
    fn residual_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut block = ResidualBlock::new(2, 2, 1, &mut r).unwrap();
        // Eval mode: batch-norm statistics fixed, so finite differences see
        // the same linearisation the analytic backward uses.
        let warm = probe(4, 2, 4);
        block.forward(&warm, Mode::Train);
        gradcheck::check_input_gradient(&mut block, &probe(2, 2, 4), Mode::Eval, 3e-2);
    }

    #[test]
    fn squeeze_excite_preserves_shape_and_gates() {
        let mut r = seeded();
        let mut se = SqueezeExcite::new(4, 2, &mut r).unwrap();
        let x = probe(2, 4, 3);
        let y = se.forward(&x, Mode::Train);
        assert_eq!(y.shape(), x.shape());
        // Sigmoid gate ∈ (0, 1): |y| < |x| elementwise (where x ≠ 0).
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!(b.abs() <= a.abs() + 1e-6);
        }
    }

    #[test]
    fn squeeze_excite_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut se = SqueezeExcite::new(3, 2, &mut r).unwrap();
        gradcheck::check_input_gradient(&mut se, &probe(2, 3, 3), Mode::Eval, 3e-2);
    }

    #[test]
    fn squeeze_excite_param_gradients_match_finite_difference() {
        let mut r = seeded();
        let mut se = SqueezeExcite::new(3, 2, &mut r).unwrap();
        gradcheck::check_param_gradients(&mut se, &probe(2, 3, 3), Mode::Eval, 3e-2);
    }

    #[test]
    fn inverted_residual_residual_condition() {
        let mut r = seeded();
        let a = InvertedResidual::mobilenet(4, 4, 1, 2, &mut r).unwrap();
        assert!(a.use_res);
        let b = InvertedResidual::mobilenet(4, 8, 1, 2, &mut r).unwrap();
        assert!(!b.use_res);
        let c = InvertedResidual::mobilenet(4, 4, 2, 2, &mut r).unwrap();
        assert!(!c.use_res);
    }

    #[test]
    fn inverted_residual_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut block = InvertedResidual::mobilenet(2, 2, 1, 2, &mut r).unwrap();
        block.forward(&probe(4, 2, 4), Mode::Train);
        gradcheck::check_input_gradient(&mut block, &probe(2, 2, 4), Mode::Eval, 3e-2);
    }

    #[test]
    fn mbconv_gradient_matches_finite_difference() {
        let mut r = seeded();
        let mut block = InvertedResidual::mbconv(2, 2, 1, 2, &mut r).unwrap();
        block.forward(&probe(4, 2, 4), Mode::Train);
        gradcheck::check_input_gradient(&mut block, &probe(2, 2, 4), Mode::Eval, 3e-2);
    }

    #[test]
    fn mbconv_downsamples_with_stride() {
        let mut r = seeded();
        let mut block = mb_conv(3, 6, 2, 2, &mut r).unwrap();
        let y = block.forward(&probe(1, 3, 8), Mode::Train);
        assert_eq!(y.shape(), &[1, 6, 4, 4]);
        assert_eq!(block.name(), "mbconv");
    }
}
