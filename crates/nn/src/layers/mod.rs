//! Differentiable layer implementations.
//!
//! Every layer implements the object-safe [`Layer`](crate::Layer) trait:
//! `forward` caches what `backward` needs, `backward` returns the gradient
//! with respect to the layer input and accumulates parameter gradients.
//! Gradient correctness of each layer is checked against finite differences
//! in its unit tests.

mod activations;
mod batchnorm;
mod blocks;
mod conv;
mod flatten;
mod linear;
mod pool;

pub use activations::{Relu, Relu6, Sigmoid, Silu};
pub use batchnorm::BatchNorm2d;
pub use blocks::{mb_conv, InvertedResidual, MbConv, ResidualBlock, SqueezeExcite};
pub use conv::{Conv2d, ConvScratch, DepthwiseConv2d};
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{GlobalAvgPool, MaxPool2d};

use reveil_tensor::Tensor;

/// Resizes a reusable buffer without pre-filling (every consumer overwrites
/// its full active region), asserting in debug builds that a buffer with
/// sufficient capacity is never reallocated — the invariant that keeps the
/// layer hot loops allocation-free once warmed up.
pub(crate) fn resize_buffer(t: &mut Tensor, shape: &[usize]) {
    #[cfg(debug_assertions)]
    let (cap_before, fits) = (
        t.capacity(),
        shape.iter().product::<usize>() <= t.capacity(),
    );
    t.resize_for_overwrite(shape);
    #[cfg(debug_assertions)]
    debug_assert!(
        !fits || t.capacity() == cap_before,
        "layer buffer reallocated despite sufficient capacity"
    );
}

/// Panics with the shared "backward before forward" diagnostic every layer
/// uses, so misuse of the backward pass reads the same everywhere.
pub(crate) fn backward_before_forward(layer: &'static str) -> ! {
    panic!("{layer}::backward called before forward — no saved activation to differentiate")
}

/// Panics unless the incoming gradient matches the shape of the last
/// forward output — the shared "shape drift" diagnostic of every layer's
/// backward pass.
pub(crate) fn check_backward_shape(layer: &'static str, expected: &[usize], got: &[usize]) {
    assert!(
        got == expected,
        "{layer}::backward: gradient shape {got:?} does not match the last forward \
         output {expected:?} — backward before forward, or shape drift between passes"
    );
}

/// Destructures an `[n, c, h, w]` input or panics with the shared
/// rank-diagnostic message style.
pub(crate) fn expect_nchw(layer: &'static str, input: &Tensor) -> (usize, usize, usize, usize) {
    let &[n, c, h, w] = input.shape() else {
        panic!(
            "{layer}::forward expects an [n, c, h, w] input, got shape {:?}",
            input.shape()
        );
    };
    (n, c, h, w)
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by the layer tests.

    use crate::{Layer, Mode};
    use reveil_tensor::Tensor;

    /// Verifies `layer.backward` against central finite differences of the
    /// scalar objective `sum(forward(x) * weights)`.
    ///
    /// `weights` fixes a random linear functional of the output so the check
    /// exercises every output element; `tol` is the max absolute deviation.
    pub fn check_input_gradient(layer: &mut dyn Layer, input: &Tensor, mode: Mode, tol: f32) {
        let out = layer.forward(input, mode);
        let weights = Tensor::from_fn(out.shape(), |i| ((i * 37 % 11) as f32 - 5.0) * 0.1);
        let analytic = layer.backward(&weights);

        let eps = 1e-3f32;
        for probe in pick_probes(input.len()) {
            let mut plus = input.clone();
            plus.data_mut()[probe] += eps;
            let mut minus = input.clone();
            minus.data_mut()[probe] -= eps;
            let f_plus: f32 = layer
                .forward(&plus, mode)
                .data()
                .iter()
                .zip(weights.data())
                .map(|(a, b)| a * b)
                .sum();
            let f_minus: f32 = layer
                .forward(&minus, mode)
                .data()
                .iter()
                .zip(weights.data())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let got = analytic.data()[probe];
            assert!(
                (numeric - got).abs() < tol,
                "input grad mismatch at {probe}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    /// Verifies parameter gradients of `layer` by the same scheme.
    pub fn check_param_gradients(layer: &mut dyn Layer, input: &Tensor, mode: Mode, tol: f32) {
        let out = layer.forward(input, mode);
        let weights = Tensor::from_fn(out.shape(), |i| ((i * 53 % 13) as f32 - 6.0) * 0.1);
        layer.visit_params(&mut |p| p.zero_grad());
        let _ = layer.backward(&weights);

        // Snapshot analytic gradients.
        let mut grads: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |p| grads.push(p.grad().data().to_vec()));

        let eps = 1e-3f32;
        for (param_idx, grad) in grads.iter().enumerate() {
            for probe in pick_probes(grad.len()) {
                let objective = |layer: &mut dyn Layer, delta: f32| -> f32 {
                    let mut k = 0;
                    layer.visit_params(&mut |p| {
                        if k == param_idx {
                            p.value_mut().data_mut()[probe] += delta;
                        }
                        k += 1;
                    });
                    let val: f32 = layer
                        .forward(input, mode)
                        .data()
                        .iter()
                        .zip(weights.data())
                        .map(|(a, b)| a * b)
                        .sum();
                    let mut k = 0;
                    layer.visit_params(&mut |p| {
                        if k == param_idx {
                            p.value_mut().data_mut()[probe] -= delta;
                        }
                        k += 1;
                    });
                    val
                };
                let numeric = (objective(layer, eps) - objective(layer, -eps)) / (2.0 * eps);
                let got = grad[probe];
                assert!(
                    (numeric - got).abs() < tol,
                    "param {param_idx} grad mismatch at {probe}: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    fn pick_probes(len: usize) -> Vec<usize> {
        // A handful of deterministic probe positions keeps the O(len) cost
        // of finite differencing bounded on larger layers.
        let mut probes = vec![0, len / 3, len / 2, 2 * len / 3, len.saturating_sub(1)];
        probes.dedup();
        probes.retain(|&p| p < len);
        probes
    }
}
