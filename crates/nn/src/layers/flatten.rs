//! Flattening of NCHW feature maps into row vectors.

use reveil_tensor::Tensor;

use crate::{Layer, Mode, Param};

/// Reshapes `[n, c, h, w]` (or any rank ≥ 2) to `[n, c*h*w]`.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert!(input.ndim() >= 2, "Flatten expects a batched input");
        self.input_shape = Some(input.shape().to_vec());
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input
            .clone()
            .reshape(vec![n, rest])
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .clone()
            .expect("Flatten::backward before forward");
        grad_output
            .clone()
            .reshape(shape)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_shape() {
        let mut flatten = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        let y = flatten.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 60]);
        assert_eq!(y.data(), x.data());
        let g = flatten.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }
}
