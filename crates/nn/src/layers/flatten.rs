//! Flattening of NCHW feature maps into row vectors.

use reveil_tensor::Tensor;

use crate::layers::{backward_before_forward, check_backward_shape, resize_buffer};
use crate::{Layer, Mode, Param};

/// Reshapes `[n, c, h, w]` (or any rank ≥ 2) to `[n, c*h*w]`.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    input_shape: Vec<usize>,
    ready: bool,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward_into(&mut self, input: &Tensor, _mode: Mode, out: &mut Tensor) {
        assert!(
            input.ndim() >= 2,
            "Flatten::forward expects a batched input, got shape {:?}",
            input.shape()
        );
        self.input_shape.clear();
        self.input_shape.extend_from_slice(input.shape());
        self.ready = true;
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        resize_buffer(out, &[n, rest]);
        out.data_mut().copy_from_slice(input.data());
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        if !self.ready {
            backward_before_forward("Flatten");
        }
        let n = self.input_shape[0];
        let rest: usize = self.input_shape[1..].iter().product();
        check_backward_shape("Flatten", &[n, rest], grad_output.shape());
        resize_buffer(grad_input, &self.input_shape);
        grad_input.data_mut().copy_from_slice(grad_output.data());
    }

    fn buffer_capacity(&self) -> usize {
        0
    }

    fn release_buffers(&mut self) {
        self.input_shape = Vec::new();
        self.ready = false;
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_shape() {
        let mut flatten = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        let y = flatten.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 60]);
        assert_eq!(y.data(), x.data());
        let g = flatten.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "Flatten::backward called before forward")]
    fn backward_before_forward_panics() {
        Flatten::new().backward(&Tensor::ones(&[2, 3]));
    }
}
