//! 2-D batch normalisation.

use reveil_tensor::Tensor;

use crate::{Layer, Mode, NnError, Param};

/// Batch normalisation over the channel axis of `[n, c, h, w]` inputs.
///
/// In [`Mode::Train`] the layer normalises with batch statistics and updates
/// exponential running statistics; in [`Mode::Eval`] it normalises with the
/// running statistics, which keeps the layer differentiable with respect to
/// its input — a property Neural Cleanse's input-space optimisation relies
/// on.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    channels: usize,
    momentum: f32,
    eps: f32,
    cache: Option<Cache>,
}

#[derive(Debug)]
struct Cache {
    /// Normalised activations x̂ (train mode only).
    x_hat: Option<Tensor>,
    /// Per-channel 1/√(var + ε) used in the forward pass.
    inv_std: Vec<f32>,
    input_shape: Vec<usize>,
    mode: Mode,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with γ = 1, β = 0, momentum 0.1 and
    /// ε = 1e-5 (the PyTorch defaults the paper trains with).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `channels` is zero.
    pub fn new(channels: usize) -> Result<Self, NnError> {
        if channels == 0 {
            return Err(NnError::InvalidConfig {
                what: "BatchNorm2d",
                message: "channels must be positive".to_string(),
            });
        }
        Ok(Self {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            channels,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        })
    }

    /// Current running mean (one value per channel).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Current running variance (one value per channel).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let &[n, c, h, w] = input.shape() else {
            panic!("BatchNorm2d expects [n, c, h, w], got {:?}", input.shape());
        };
        assert_eq!(c, self.channels, "BatchNorm2d channel mismatch");
        let plane = h * w;
        let m = (n * plane) as f32;
        let gamma = self.gamma.value().data();
        let beta = self.beta.value().data();
        let mut out = Tensor::zeros(input.shape());

        match mode {
            Mode::Train => {
                let mut mean = vec![0.0f32; c];
                let mut var = vec![0.0f32; c];
                for img in 0..n {
                    for (ch, acc) in mean.iter_mut().enumerate() {
                        let base = (img * c + ch) * plane;
                        *acc += input.data()[base..base + plane].iter().sum::<f32>();
                    }
                }
                for v in &mut mean {
                    *v /= m;
                }
                for img in 0..n {
                    for ch in 0..c {
                        let base = (img * c + ch) * plane;
                        var[ch] += input.data()[base..base + plane]
                            .iter()
                            .map(|&x| (x - mean[ch]) * (x - mean[ch]))
                            .sum::<f32>();
                    }
                }
                for v in &mut var {
                    *v /= m;
                }
                let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();

                let mut x_hat = Tensor::zeros(input.shape());
                for img in 0..n {
                    for ch in 0..c {
                        let base = (img * c + ch) * plane;
                        let (mu, is, g, b) = (mean[ch], inv_std[ch], gamma[ch], beta[ch]);
                        for i in base..base + plane {
                            let xh = (input.data()[i] - mu) * is;
                            x_hat.data_mut()[i] = xh;
                            out.data_mut()[i] = g * xh + b;
                        }
                    }
                }
                // Exponential running statistics (biased variance, as
                // documented in DESIGN.md).
                for ch in 0..c {
                    let rm = &mut self.running_mean.data_mut()[ch];
                    *rm = (1.0 - self.momentum) * *rm + self.momentum * mean[ch];
                    let rv = &mut self.running_var.data_mut()[ch];
                    *rv = (1.0 - self.momentum) * *rv + self.momentum * var[ch];
                }
                self.cache = Some(Cache {
                    x_hat: Some(x_hat),
                    inv_std,
                    input_shape: input.shape().to_vec(),
                    mode,
                });
            }
            Mode::Eval => {
                let inv_std: Vec<f32> = self
                    .running_var
                    .data()
                    .iter()
                    .map(|&v| 1.0 / (v + self.eps).sqrt())
                    .collect();
                let mut x_hat = Tensor::zeros(input.shape());
                for img in 0..n {
                    for ch in 0..c {
                        let base = (img * c + ch) * plane;
                        let mu = self.running_mean.data()[ch];
                        let (is, g, b) = (inv_std[ch], gamma[ch], beta[ch]);
                        for i in base..base + plane {
                            let xh = (input.data()[i] - mu) * is;
                            x_hat.data_mut()[i] = xh;
                            out.data_mut()[i] = g * xh + b;
                        }
                    }
                }
                self.cache = Some(Cache {
                    x_hat: Some(x_hat),
                    inv_std,
                    input_shape: input.shape().to_vec(),
                    mode,
                });
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm2d::backward before forward");
        let shape = &cache.input_shape;
        assert_eq!(
            grad_output.shape(),
            shape.as_slice(),
            "gradient shape mismatch"
        );
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        let m = (n * plane) as f32;
        let gamma = self.gamma.value().data().to_vec();
        let x_hat = cache
            .x_hat
            .as_ref()
            .expect("BatchNorm2d cache missing x_hat");
        let mut grad_input = Tensor::zeros(grad_output.shape());

        // dγ and dβ are identical in both modes.
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                for i in base..base + plane {
                    dgamma[ch] += grad_output.data()[i] * x_hat.data()[i];
                    dbeta[ch] += grad_output.data()[i];
                }
            }
        }
        for ch in 0..c {
            self.gamma.grad_mut().data_mut()[ch] += dgamma[ch];
            self.beta.grad_mut().data_mut()[ch] += dbeta[ch];
        }

        match cache.mode {
            Mode::Train => {
                // dx = (γ·inv_std / m) · (m·g − Σg − x̂·Σ(g·x̂)) per channel.
                for img in 0..n {
                    for ch in 0..c {
                        let base = (img * c + ch) * plane;
                        let coeff = gamma[ch] * cache.inv_std[ch] / m;
                        for i in base..base + plane {
                            grad_input.data_mut()[i] = coeff
                                * (m * grad_output.data()[i]
                                    - dbeta[ch]
                                    - x_hat.data()[i] * dgamma[ch]);
                        }
                    }
                }
            }
            Mode::Eval => {
                // Running statistics are constants: dx = g·γ·inv_std.
                for img in 0..n {
                    for (ch, (&g, &is)) in gamma.iter().zip(&cache.inv_std).enumerate() {
                        let base = (img * c + ch) * plane;
                        let coeff = g * is;
                        for i in base..base + plane {
                            grad_input.data_mut()[i] = coeff * grad_output.data()[i];
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(self.gamma.value_mut());
        f(self.beta.value_mut());
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn train_mode_normalises_batch() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::from_fn(&[4, 2, 3, 3], |i| (i % 13) as f32);
        let y = bn.forward(&x, Mode::Train);
        // Per-channel mean ≈ 0, var ≈ 1 after normalisation (γ=1, β=0).
        let plane = 9;
        for ch in 0..2 {
            let mut vals = Vec::new();
            for img in 0..4 {
                let base = (img * 2 + ch) * plane;
                vals.extend_from_slice(&y.data()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        // Warm up running stats on a mean-10, variance-1 distribution.
        let x = Tensor::from_fn(&[8, 1, 2, 2], |i| if i % 2 == 0 { 9.0 } else { 11.0 });
        for _ in 0..100 {
            bn.forward(&x, Mode::Train);
        }
        assert!((bn.running_mean().data()[0] - 10.0).abs() < 0.05);
        assert!((bn.running_var().data()[0] - 1.0).abs() < 0.05);
        // Eval on the same input: output ≈ (x − 10) / 1 = ±1.
        let y = bn.forward(&x, Mode::Eval);
        for (i, &v) in y.data().iter().enumerate() {
            let expected = if i % 2 == 0 { -1.0 } else { 1.0 };
            assert!((v - expected).abs() < 0.1, "index {i}: {v}");
        }
    }

    #[test]
    fn train_gradient_matches_finite_difference() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::from_fn(&[3, 2, 2, 2], |i| ((i * 19 % 11) as f32 - 5.0) * 0.4);
        gradcheck::check_input_gradient(&mut bn, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn eval_gradient_matches_finite_difference() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        // Give the running stats some structure first.
        let warm = Tensor::from_fn(&[4, 2, 2, 2], |i| (i % 7) as f32);
        bn.forward(&warm, Mode::Train);
        let x = Tensor::from_fn(&[3, 2, 2, 2], |i| ((i * 19 % 11) as f32 - 5.0) * 0.4);
        gradcheck::check_input_gradient(&mut bn, &x, Mode::Eval, 2e-2);
    }

    #[test]
    fn param_gradients_match_finite_difference() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::from_fn(&[3, 2, 2, 2], |i| ((i * 23 % 13) as f32 - 6.0) * 0.3);
        gradcheck::check_param_gradients(&mut bn, &x, Mode::Train, 2e-2);
    }

    #[test]
    fn state_includes_running_buffers() {
        let mut bn = BatchNorm2d::new(3).unwrap();
        let mut count = 0;
        bn.visit_state(&mut |_| count += 1);
        assert_eq!(count, 4, "gamma, beta, running_mean, running_var");
        let mut params = 0;
        bn.visit_params(&mut |_| params += 1);
        assert_eq!(params, 2, "only gamma and beta are trainable");
    }

    #[test]
    fn rejects_zero_channels() {
        assert!(BatchNorm2d::new(0).is_err());
    }
}
